"""File-scoped lint rules: P1, P2, D1, F1.

Each rule is a class with a ``code``, a one-line ``title``, a longer
``rationale`` (both surfaced by ``lint --list-rules`` and mirrored in
``docs/LINT.md``), and a ``check(module, project)`` generator yielding
:class:`~repro.analysis.diagnostics.Diagnostic` records.  The
project-scoped C1 rule lives in :mod:`repro.analysis.parity`.

All analysis is pure AST + source text -- nothing is imported or
executed, so the linter can safely chew on known-bad fixtures.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.config import LintConfig
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.purity import mutation_sites
from repro.analysis.suppress import SuppressionIndex

__all__ = [
    "ALL_RULE_CODES",
    "ModuleUnderLint",
    "ProjectIndex",
    "RULES",
    "Rule",
    "rule_catalog",
]


@dataclass
class ModuleUnderLint:
    """One parsed module plus everything rules need to know about it."""

    relpath: str
    source: str
    tree: ast.Module
    suppressions: SuppressionIndex
    is_core: bool


@dataclass
class ProjectIndex:
    """Cross-module facts collected in one pre-pass over every module.

    Attributes:
        float_returns: Names of functions/methods annotated ``-> float``
            (or ``Optional[float]``) anywhere in the project; a call to
            one is treated as float-valued by F1.
        float_attrs: Attribute names annotated float-ish in any class
            body or ``self.x: float`` assignment -- minus names also
            annotated as something else elsewhere, and minus
            :data:`AMBIGUOUS_ATTRS`.
    """

    float_returns: Set[str] = field(default_factory=set)
    float_attrs: Set[str] = field(default_factory=set)

    @classmethod
    def build(cls, modules: List[ModuleUnderLint]) -> "ProjectIndex":
        returns: Set[str] = set()
        float_attrs: Set[str] = set()
        other_attrs: Set[str] = set()
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node.returns is not None and _is_float_annotation(node.returns):
                        returns.add(node.name)
                elif isinstance(node, ast.AnnAssign):
                    name = _annassign_attr_name(node)
                    if name is None:
                        continue
                    if _is_float_annotation(node.annotation):
                        float_attrs.add(name)
                    else:
                        other_attrs.add(name)
        return cls(
            float_returns=returns,
            float_attrs=(float_attrs - other_attrs) - AMBIGUOUS_ATTRS,
        )


#: Attribute names too polysemous to infer a float type from: every
#: ``enum.Enum`` member is read through ``.value`` with no annotation
#: anywhere, so one ``value: Optional[float]`` dataclass field must not
#: turn every enum access into a float comparison.
AMBIGUOUS_ATTRS = frozenset({"value"})


def _annassign_attr_name(node: ast.AnnAssign) -> Optional[str]:
    """Attribute name declared by ``x: T`` in a class or ``self.x: T``."""
    target = node.target
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
        if target.value.id in ("self", "cls"):
            return target.attr
    return None


def _is_float_annotation(node: ast.AST) -> bool:
    """Does this annotation denote ``float`` / ``Optional[float]``?"""
    if isinstance(node, ast.Name):
        return node.id == "float"
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.replace(" ", "")
        return text in ("float", "Optional[float]", "float|None", "None|float")
    if isinstance(node, ast.Subscript):
        base = node.value
        if isinstance(base, ast.Name) and base.id == "Optional":
            return _is_float_annotation(node.slice)
        if isinstance(base, ast.Attribute) and base.attr == "Optional":
            return _is_float_annotation(node.slice)
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left_none = isinstance(node.left, ast.Constant) and node.left.value is None
        right_none = isinstance(node.right, ast.Constant) and node.right.value is None
        if left_none:
            return _is_float_annotation(node.right)
        if right_none:
            return _is_float_annotation(node.left)
    return False


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def scope_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Every node in ``root``'s scope, not descending into nested scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(node))


def iter_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    """Every function/method in the module, however nested."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted origin for every import in the module."""
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                mapping[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return mapping


def resolve_call_name(node: ast.Call, imports: Dict[str, str]) -> Optional[str]:
    """The dotted call target with its first segment import-resolved."""
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    origin = imports.get(head)
    if origin is not None:
        dotted = f"{origin}.{rest}" if rest else origin
    return dotted


# ----------------------------------------------------------------------
# Rule base
# ----------------------------------------------------------------------


class Rule:
    """One lint rule; subclasses set the class attributes and ``check``."""

    code: str = ""
    title: str = ""
    rationale: str = ""
    severity: Severity = Severity.ERROR

    def check(
        self, module: ModuleUnderLint, config: LintConfig, project: ProjectIndex
    ) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diagnostic(
        self, module: ModuleUnderLint, node: ast.AST, message: str
    ) -> Diagnostic:
        return Diagnostic(
            code=self.code,
            message=message,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            severity=self.severity,
        )


# ----------------------------------------------------------------------
# P1: argument mutation in per-entity units / stage functions
# ----------------------------------------------------------------------


class ArgMutationRule(Rule):
    code = "P1"
    title = "per-entity unit mutates a value derived from its arguments"
    rationale = (
        "The incremental engine reuses a unit's previous output whenever its "
        "inputs did not change; that is only sound if units never mutate "
        "their arguments (collected state, snapshots, hardened state) or "
        "anything reachable from them."
    )

    def check(self, module, config, project):
        for func in iter_functions(module.tree):
            if not config.is_entity_function(func.name):
                continue
            for node, _root, description in mutation_sites(func):
                yield self.diagnostic(
                    module,
                    node,
                    f"{func.name}() must be pure: {description}",
                )


# ----------------------------------------------------------------------
# P2: module-level mutable state touched from core stages
# ----------------------------------------------------------------------

_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "OrderedDict", "Counter"}
)


class ModuleStateRule(Rule):
    code = "P2"
    title = "core stage reads or writes module-level mutable state"
    rationale = (
        "Hidden module state makes a stage's output depend on call history, "
        "which breaks per-entity reuse and report-for-report parity between "
        "the full and incremental paths.  State must flow through explicit "
        "arguments or per-instance fields."
    )

    def check(self, module, config, project):
        if not module.is_core:
            return
        mutable = self._module_level_mutables(module.tree)
        for func in iter_functions(module.tree):
            for node in scope_nodes(func):
                if isinstance(node, ast.Global):
                    names = ", ".join(node.names)
                    yield self.diagnostic(
                        module,
                        node,
                        f"{func.name}() declares 'global {names}'; stage state "
                        "must flow through arguments or instance fields",
                    )
                elif isinstance(node, ast.Name) and node.id in mutable:
                    action = "writes" if isinstance(node.ctx, ast.Store) else "reads"
                    yield self.diagnostic(
                        module,
                        node,
                        f"{func.name}() {action} module-level mutable "
                        f"{node.id!r}; pass it explicitly or make it immutable",
                    )

    @staticmethod
    def _module_level_mutables(tree: ast.Module) -> Set[str]:
        """Names bound at module level to a mutable container."""
        mutable: Set[str] = set()
        for node in tree.body:
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not _is_mutable_container(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    mutable.add(target.id)
        return mutable


def _is_mutable_container(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted is not None and dotted.split(".")[-1] in _MUTABLE_CONSTRUCTORS:
            return True
    return False


# ----------------------------------------------------------------------
# D1: nondeterminism hazards
# ----------------------------------------------------------------------

#: ``random``-module functions driving the shared global RNG.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "shuffle", "triangular", "uniform", "vonmisesvariate",
        "weibullvariate",
    }
)

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Factories that return an asyncio event loop.  ``.time()`` on one is
#: a host-clock read -- the asyncio flavour of ``time.monotonic()``,
#: but fetched ambiently rather than injected, so streamed-pipeline
#: latencies become untestable and replay-hostile.  The sanctioned
#: wrapper is ``obs.clock.event_loop_time`` inside the clock seam.
_EVENT_LOOP_FACTORIES = frozenset(
    {
        "asyncio.get_running_loop",
        "asyncio.get_event_loop",
        "asyncio.new_event_loop",
        "asyncio.events.get_running_loop",
        "asyncio.events.get_event_loop",
        "asyncio.events.new_event_loop",
    }
)

#: Wrappers that make iteration order irrelevant (or impose one).
_ORDER_SAFE_WRAPPERS = frozenset(
    {"all", "any", "frozenset", "len", "max", "min", "set", "sorted", "sum"}
)

#: Consumers that freeze the iteration order into ordered output.
_ORDERING_CONSUMERS = frozenset({"list", "tuple", "enumerate"})


class NondeterminismRule(Rule):
    code = "D1"
    title = "nondeterminism hazard in a core stage"
    rationale = (
        "Validation must be replayable: the same snapshot and inputs must "
        "yield the identical report in full and incremental mode, across "
        "processes and PYTHONHASHSEED values.  Global RNG calls, wall-clock "
        "and event-loop clock reads, set iteration feeding ordered output, "
        "and id()-keyed maps all break that."
    )

    def check(self, module, config, project):
        if not module.is_core:
            return
        imports = import_map(module.tree)
        yield from self._calls(module, config, imports)
        yield from self._event_loop_clock(module, config, imports)
        yield from self._id_keyed(module)
        scopes: List[ast.AST] = [module.tree]
        scopes.extend(iter_functions(module.tree))
        for scope in scopes:
            yield from self._set_iteration(module, scope)

    # -- global RNG and wall clock ------------------------------------

    def _calls(self, module, config, imports):
        # The clock-injection seam (obs/clock.py) is the one module
        # allowed to read the wall clock; the exemption is per-file,
        # never per-directory, so a time.time() smuggled into a span
        # body elsewhere in obs/ still trips D1.
        clock_seam = module.relpath in config.clock_seam_paths
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_call_name(node, imports)
            if dotted is None:
                continue
            if dotted in config.wall_clock_allowed:
                continue
            if clock_seam and dotted in _WALL_CLOCK:
                continue
            if dotted in _WALL_CLOCK:
                yield self.diagnostic(
                    module,
                    node,
                    f"wall-clock read {dotted}() in a core stage; epoch time "
                    "must come from the snapshot, not the host clock",
                )
            elif dotted.startswith("random.") and dotted.split(".", 1)[1] in _GLOBAL_RANDOM_FNS:
                yield self.diagnostic(
                    module,
                    node,
                    f"{dotted}() drives the shared global RNG; use a seeded "
                    "random.Random instance passed in explicitly",
                )

    # -- asyncio event-loop clock reads -------------------------------

    def _event_loop_clock(self, module, config, imports):
        # Same per-file seam as the wall clock: obs/clock.py wraps the
        # one sanctioned loop.time() read (event_loop_time); everywhere
        # else in core the event-loop clock must arrive injected.
        if module.relpath in config.clock_seam_paths:
            return
        scopes: List[ast.AST] = [module.tree]
        scopes.extend(iter_functions(module.tree))
        for scope in scopes:
            loop_names = _loop_bound_names(scope, imports)
            for node in scope_nodes(scope):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "time"
                    and not node.args
                    and not node.keywords
                ):
                    continue
                receiver = node.func.value
                if isinstance(receiver, ast.Call):
                    dotted = resolve_call_name(receiver, imports)
                    if dotted not in _EVENT_LOOP_FACTORIES:
                        continue
                elif not (isinstance(receiver, ast.Name) and receiver.id in loop_names):
                    continue
                yield self.diagnostic(
                    module,
                    node,
                    "event-loop clock read (loop.time()) in a core stage; "
                    "take latency stamps through the injected seam "
                    "(obs.clock.event_loop_time) so tests can pin the clock",
                )

    # -- id()-keyed maps ----------------------------------------------

    def _id_keyed(self, module):
        for node in ast.walk(module.tree):
            key_exprs: List[ast.AST] = []
            if isinstance(node, ast.Subscript):
                key_exprs.append(node.slice)
            elif isinstance(node, ast.Dict):
                key_exprs.extend(k for k in node.keys if k is not None)
            elif isinstance(node, ast.DictComp):
                key_exprs.append(node.key)
            for key in key_exprs:
                if (
                    isinstance(key, ast.Call)
                    and isinstance(key.func, ast.Name)
                    and key.func.id == "id"
                ):
                    yield self.diagnostic(
                        module,
                        key,
                        "id()-keyed map: object identities vary run to run; "
                        "key by a stable name or structural key instead",
                    )

    # -- set iteration into ordered output ----------------------------

    def _set_iteration(self, module, scope):
        known_sets = _known_set_names(scope)
        exempt: Set[int] = set()
        for node in scope_nodes(scope):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in _ORDER_SAFE_WRAPPERS:
                    for arg in node.args:
                        exempt.add(id(arg))

        for node in scope_nodes(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if id(node.iter) in exempt:
                    continue
                if _is_set_expr(node.iter, known_sets) and _body_is_order_sensitive(node):
                    yield self.diagnostic(
                        module,
                        node,
                        "for-loop iterates a set while accumulating ordered "
                        "output; wrap the iterable in sorted(...)",
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                if id(node) in exempt:
                    continue
                for generator in node.generators:
                    if _is_set_expr(generator.iter, known_sets):
                        yield self.diagnostic(
                            module,
                            node,
                            "comprehension iterates a set into ordered output; "
                            "wrap the iterable in sorted(...)",
                        )
                        break
            elif isinstance(node, ast.Call):
                func_name = node.func.id if isinstance(node.func, ast.Name) else None
                if func_name in _ORDERING_CONSUMERS:
                    for arg in node.args:
                        if _is_set_expr(arg, known_sets):
                            yield self.diagnostic(
                                module,
                                node,
                                f"{func_name}() freezes set iteration order into "
                                "a sequence; use sorted(...) instead",
                            )
                            break


def _loop_bound_names(scope: ast.AST, imports: Dict[str, str]) -> Set[str]:
    """Names in this scope bound to an asyncio event-loop factory call.

    Conservative by design: only plain-name assignments are tracked
    (``loop = asyncio.get_running_loop()``), which is how every real
    sighting reads.  A loop smuggled through an attribute still gets
    caught at the direct ``asyncio.get_*_loop().time()`` chain.
    """
    names: Set[str] = set()
    for node in scope_nodes(scope):
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        else:
            continue
        if not isinstance(value, ast.Call):
            continue
        if resolve_call_name(value, imports) not in _EVENT_LOOP_FACTORIES:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _known_set_names(scope: ast.AST) -> Set[str]:
    """Names in this scope whose every binding is a set expression.

    ``None`` initialisations are neutral (a common init-then-fill
    pattern); a single non-set binding disqualifies the name.
    """
    candidates: Dict[str, bool] = {}
    known: Set[str] = set()
    for _pass in range(2):  # two passes reach a fixpoint for chained assigns
        candidates.clear()
        for node in scope_nodes(scope):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            if value is None or (isinstance(value, ast.Constant) and value.value is None):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                is_set = _is_set_expr(value, known)
                previous = candidates.get(target.id)
                candidates[target.id] = is_set if previous is None else (previous and is_set)
        known = {name for name, is_set in candidates.items() if is_set}
    return known


def _is_keys_view(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
    )


def _is_set_expr(node: ast.AST, known_sets: Set[str]) -> bool:
    """Conservatively: does this expression definitely produce a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in known_sets
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in (
            "union", "intersection", "difference", "symmetric_difference"
        ):
            return _is_set_expr(func.value, known_sets)
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        sides = (node.left, node.right)
        if any(_is_set_expr(side, known_sets) for side in sides):
            return True
        # dict .keys() views combine into plain sets under |, &, ^, -.
        return any(_is_keys_view(side) for side in sides)
    return False


def _body_is_order_sensitive(loop: ast.For) -> bool:
    """Does the loop body freeze iteration order into ordered output?"""
    for stmt in loop.body + loop.orelse:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in ("append", "extend", "insert", "appendleft"):
                    return True
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                if any(isinstance(t, ast.Subscript) for t in targets):
                    return True
    return False


# ----------------------------------------------------------------------
# F1: bare float equality
# ----------------------------------------------------------------------


class FloatEqualityRule(Rule):
    code = "F1"
    title = "bare float ==/!= in a core stage"
    rationale = (
        "Measured rates pass through arithmetic that is not bit-stable "
        "across code paths; exact equality silently becomes never-equal.  "
        "Use the tolerance helpers (math.isclose, Invariant.evaluate, "
        "_relative_gap).  Where exact identity IS the contract -- e.g. the "
        "incremental engine's reuse guards, where a spurious difference "
        "only costs a recompute -- suppress with a rationale."
    )

    def check(self, module, config, project):
        if not module.is_core:
            return
        for func in iter_functions(module.tree):
            float_names = _float_locals(func, project)
            for node in scope_nodes(func):
                if not isinstance(node, ast.Compare):
                    continue
                operands = [node.left] + list(node.comparators)
                for i, op in enumerate(node.ops):
                    if not isinstance(op, (ast.Eq, ast.NotEq)):
                        continue
                    left, right = operands[i], operands[i + 1]
                    if _is_none(left) or _is_none(right):
                        continue
                    if _is_floatish(left, float_names, project) or _is_floatish(
                        right, float_names, project
                    ):
                        yield self.diagnostic(
                            module,
                            node,
                            "bare float equality; compare through a tolerance "
                            "helper, or suppress where exact identity is the "
                            "contract",
                        )
                        break


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _float_locals(func: ast.FunctionDef, project: ProjectIndex) -> Set[str]:
    """Local names inferred float-typed inside ``func``."""
    names: Set[str] = set()
    args = list(func.args.posonlyargs) + list(func.args.args) + list(func.args.kwonlyargs)
    for arg in args:
        if arg.annotation is not None and _is_float_annotation(arg.annotation):
            names.add(arg.arg)
    for _pass in range(2):
        for node in scope_nodes(func):
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if _is_float_annotation(node.annotation):
                    names.add(node.target.id)
            elif isinstance(node, ast.Assign) and _is_floatish(node.value, names, project):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


_ARITHMETIC_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow)


def _is_floatish(node: ast.AST, float_names: Set[str], project: ProjectIndex) -> bool:
    """Heuristically: is this expression float-valued?"""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Name):
        return node.id in float_names
    if isinstance(node, ast.Attribute):
        return node.attr in project.float_attrs
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted is None:
            return False
        tail = dotted.split(".")[-1]
        return tail == "float" or tail in project.float_returns
    if isinstance(node, ast.BinOp) and isinstance(node.op, _ARITHMETIC_OPS):
        if isinstance(node.op, ast.Div):
            return True
        return _is_floatish(node.left, float_names, project) or _is_floatish(
            node.right, float_names, project
        )
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_floatish(node.operand, float_names, project)
    if isinstance(node, ast.IfExp):
        return _is_floatish(node.body, float_names, project) or _is_floatish(
            node.orelse, float_names, project
        )
    return False


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

#: File-scoped rules, in reporting order.
RULES: Tuple[Rule, ...] = (
    ArgMutationRule(),
    ModuleStateRule(),
    NondeterminismRule(),
    FloatEqualityRule(),
)

#: Every rule code the linter can emit (incl. project rule C1 and the
#: L1 unused-suppression meta check).
ALL_RULE_CODES: Tuple[str, ...] = ("P1", "P2", "D1", "F1", "C1", "L1")


def rule_catalog() -> List[Dict[str, str]]:
    """Code/title/rationale for every rule (``lint --list-rules``)."""
    from repro.analysis.parity import RegistryParityRule
    from repro.analysis.suppress import UNUSED_SUPPRESSION_CODE

    catalog = [
        {"code": rule.code, "title": rule.title, "rationale": rule.rationale}
        for rule in RULES
    ]
    parity = RegistryParityRule()
    catalog.append(
        {"code": parity.code, "title": parity.title, "rationale": parity.rationale}
    )
    catalog.append(
        {
            "code": UNUSED_SUPPRESSION_CODE,
            "title": "unused '# lint: ignore' suppression",
            "rationale": (
                "Suppressions document intentional contract exceptions; one "
                "that no longer silences anything is stale and must be removed "
                "so the exception inventory stays accurate."
            ),
        }
    )
    return catalog
