"""File-scoped lint rules: P1, P2, D1, F1, A1, A2, X1.

Each rule is a class with a ``code``, a one-line ``title``, a longer
``rationale`` (both surfaced by ``lint --list-rules`` and mirrored in
``docs/LINT.md``), and a ``check(module, project)`` generator yielding
:class:`~repro.analysis.diagnostics.Diagnostic` records.  The
project-scoped C1 rule lives in :mod:`repro.analysis.parity`.

All analysis is pure AST + source text -- nothing is imported or
executed, so the linter can safely chew on known-bad fixtures.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.config import LintConfig
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.purity import ALIAS_METHODS, MUTATING_METHODS, mutation_sites
from repro.analysis.suppress import SuppressionIndex

__all__ = [
    "ALL_RULE_CODES",
    "ModuleUnderLint",
    "ProjectIndex",
    "RULES",
    "Rule",
    "rule_catalog",
]


@dataclass
class ModuleUnderLint:
    """One parsed module plus everything rules need to know about it."""

    relpath: str
    source: str
    tree: ast.Module
    suppressions: SuppressionIndex
    is_core: bool


@dataclass
class ProjectIndex:
    """Cross-module facts collected in one pre-pass over every module.

    Attributes:
        float_returns: Names of functions/methods annotated ``-> float``
            (or ``Optional[float]``) anywhere in the project; a call to
            one is treated as float-valued by F1.
        float_attrs: Attribute names annotated float-ish in any class
            body or ``self.x: float`` assignment -- minus names also
            annotated as something else elsewhere, and minus
            :data:`AMBIGUOUS_ATTRS`.
    """

    float_returns: Set[str] = field(default_factory=set)
    float_attrs: Set[str] = field(default_factory=set)

    @classmethod
    def build(cls, modules: List[ModuleUnderLint]) -> "ProjectIndex":
        returns: Set[str] = set()
        float_attrs: Set[str] = set()
        other_attrs: Set[str] = set()
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node.returns is not None and _is_float_annotation(node.returns):
                        returns.add(node.name)
                elif isinstance(node, ast.AnnAssign):
                    name = _annassign_attr_name(node)
                    if name is None:
                        continue
                    if _is_float_annotation(node.annotation):
                        float_attrs.add(name)
                    else:
                        other_attrs.add(name)
        return cls(
            float_returns=returns,
            float_attrs=(float_attrs - other_attrs) - AMBIGUOUS_ATTRS,
        )

    @classmethod
    def from_facts(cls, facts_list) -> "ProjectIndex":
        """Rebuild the index from cached per-file facts (no trees).

        Each item needs ``float_returns`` / ``float_attrs`` /
        ``other_attrs`` attributes; see
        :class:`repro.analysis.facts.ModuleFacts`.
        """
        returns: Set[str] = set()
        float_attrs: Set[str] = set()
        other_attrs: Set[str] = set()
        for facts in facts_list:
            returns.update(facts.float_returns)
            float_attrs.update(facts.float_attrs)
            other_attrs.update(facts.other_attrs)
        return cls(
            float_returns=returns,
            float_attrs=(float_attrs - other_attrs) - AMBIGUOUS_ATTRS,
        )

    def fingerprint(self) -> str:
        """Hash of the cross-file inputs F1 consumes (cache gate)."""
        import hashlib
        import json

        payload = json.dumps(
            {
                "float_returns": sorted(self.float_returns),
                "float_attrs": sorted(self.float_attrs),
            },
            sort_keys=True,
        ).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()


#: Attribute names too polysemous to infer a float type from: every
#: ``enum.Enum`` member is read through ``.value`` with no annotation
#: anywhere, so one ``value: Optional[float]`` dataclass field must not
#: turn every enum access into a float comparison.
AMBIGUOUS_ATTRS = frozenset({"value"})


def _annassign_attr_name(node: ast.AnnAssign) -> Optional[str]:
    """Attribute name declared by ``x: T`` in a class or ``self.x: T``."""
    target = node.target
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
        if target.value.id in ("self", "cls"):
            return target.attr
    return None


def _is_float_annotation(node: ast.AST) -> bool:
    """Does this annotation denote ``float`` / ``Optional[float]``?"""
    if isinstance(node, ast.Name):
        return node.id == "float"
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.replace(" ", "")
        return text in ("float", "Optional[float]", "float|None", "None|float")
    if isinstance(node, ast.Subscript):
        base = node.value
        if isinstance(base, ast.Name) and base.id == "Optional":
            return _is_float_annotation(node.slice)
        if isinstance(base, ast.Attribute) and base.attr == "Optional":
            return _is_float_annotation(node.slice)
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left_none = isinstance(node.left, ast.Constant) and node.left.value is None
        right_none = isinstance(node.right, ast.Constant) and node.right.value is None
        if left_none:
            return _is_float_annotation(node.right)
        if right_none:
            return _is_float_annotation(node.left)
    return False


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def scope_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Every node in ``root``'s scope, not descending into nested scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(node))


def iter_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    """Every function/method in the module, however nested."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted origin for every import in the module."""
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                mapping[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return mapping


def resolve_call_name(node: ast.Call, imports: Dict[str, str]) -> Optional[str]:
    """The dotted call target with its first segment import-resolved."""
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    origin = imports.get(head)
    if origin is not None:
        dotted = f"{origin}.{rest}" if rest else origin
    return dotted


# ----------------------------------------------------------------------
# Rule base
# ----------------------------------------------------------------------


class Rule:
    """One lint rule; subclasses set the class attributes and ``check``."""

    code: str = ""
    title: str = ""
    rationale: str = ""
    severity: Severity = Severity.ERROR

    def check(
        self, module: ModuleUnderLint, config: LintConfig, project: ProjectIndex
    ) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diagnostic(
        self, module: ModuleUnderLint, node: ast.AST, message: str
    ) -> Diagnostic:
        return Diagnostic(
            code=self.code,
            message=message,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            severity=self.severity,
        )


# ----------------------------------------------------------------------
# P1: argument mutation in per-entity units / stage functions
# ----------------------------------------------------------------------


class ArgMutationRule(Rule):
    code = "P1"
    title = "per-entity unit mutates a value derived from its arguments"
    rationale = (
        "The incremental engine reuses a unit's previous output whenever its "
        "inputs did not change; that is only sound if units never mutate "
        "their arguments (collected state, snapshots, hardened state) or "
        "anything reachable from them."
    )

    def check(self, module, config, project):
        for func in iter_functions(module.tree):
            if not config.is_entity_function(func.name):
                continue
            for node, _root, description in mutation_sites(func):
                yield self.diagnostic(
                    module,
                    node,
                    f"{func.name}() must be pure: {description}",
                )


# ----------------------------------------------------------------------
# P2: module-level mutable state touched from core stages
# ----------------------------------------------------------------------

_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "OrderedDict", "Counter"}
)


class ModuleStateRule(Rule):
    code = "P2"
    title = "core stage reads or writes module-level mutable state"
    rationale = (
        "Hidden module state makes a stage's output depend on call history, "
        "which breaks per-entity reuse and report-for-report parity between "
        "the full and incremental paths.  State must flow through explicit "
        "arguments or per-instance fields."
    )

    def check(self, module, config, project):
        if not module.is_core:
            return
        mutable = self._module_level_mutables(module.tree)
        for func in iter_functions(module.tree):
            for node in scope_nodes(func):
                if isinstance(node, ast.Global):
                    names = ", ".join(node.names)
                    yield self.diagnostic(
                        module,
                        node,
                        f"{func.name}() declares 'global {names}'; stage state "
                        "must flow through arguments or instance fields",
                    )
                elif isinstance(node, ast.Name) and node.id in mutable:
                    action = "writes" if isinstance(node.ctx, ast.Store) else "reads"
                    yield self.diagnostic(
                        module,
                        node,
                        f"{func.name}() {action} module-level mutable "
                        f"{node.id!r}; pass it explicitly or make it immutable",
                    )

    @staticmethod
    def _module_level_mutables(tree: ast.Module) -> Set[str]:
        """Names bound at module level to a mutable container."""
        mutable: Set[str] = set()
        for node in tree.body:
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not _is_mutable_container(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    mutable.add(target.id)
        return mutable


def _is_mutable_container(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted is not None and dotted.split(".")[-1] in _MUTABLE_CONSTRUCTORS:
            return True
    return False


# ----------------------------------------------------------------------
# D1: nondeterminism hazards
# ----------------------------------------------------------------------

#: ``random``-module functions driving the shared global RNG.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "shuffle", "triangular", "uniform", "vonmisesvariate",
        "weibullvariate",
    }
)

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Factories that return an asyncio event loop.  ``.time()`` on one is
#: a host-clock read -- the asyncio flavour of ``time.monotonic()``,
#: but fetched ambiently rather than injected, so streamed-pipeline
#: latencies become untestable and replay-hostile.  The sanctioned
#: wrapper is ``obs.clock.event_loop_time`` inside the clock seam.
_EVENT_LOOP_FACTORIES = frozenset(
    {
        "asyncio.get_running_loop",
        "asyncio.get_event_loop",
        "asyncio.new_event_loop",
        "asyncio.events.get_running_loop",
        "asyncio.events.get_event_loop",
        "asyncio.events.new_event_loop",
    }
)

#: Wrappers that make iteration order irrelevant (or impose one).
_ORDER_SAFE_WRAPPERS = frozenset(
    {"all", "any", "frozenset", "len", "max", "min", "set", "sorted", "sum"}
)

#: Consumers that freeze the iteration order into ordered output.
_ORDERING_CONSUMERS = frozenset({"list", "tuple", "enumerate"})


class NondeterminismRule(Rule):
    code = "D1"
    title = "nondeterminism hazard in a core stage"
    rationale = (
        "Validation must be replayable: the same snapshot and inputs must "
        "yield the identical report in full and incremental mode, across "
        "processes and PYTHONHASHSEED values.  Global RNG calls, wall-clock "
        "and event-loop clock reads, set iteration feeding ordered output, "
        "and id()-keyed maps all break that."
    )

    def check(self, module, config, project):
        if not module.is_core:
            return
        imports = import_map(module.tree)
        yield from self._calls(module, config, imports)
        yield from self._event_loop_clock(module, config, imports)
        yield from self._id_keyed(module)
        scopes: List[ast.AST] = [module.tree]
        scopes.extend(iter_functions(module.tree))
        for scope in scopes:
            yield from self._set_iteration(module, scope)

    # -- global RNG and wall clock ------------------------------------

    def _calls(self, module, config, imports):
        # The clock-injection seam (obs/clock.py) is the one module
        # allowed to read the wall clock; the exemption is per-file,
        # never per-directory, so a time.time() smuggled into a span
        # body elsewhere in obs/ still trips D1.
        clock_seam = module.relpath in config.clock_seam_paths
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_call_name(node, imports)
            if dotted is None:
                continue
            if dotted in config.wall_clock_allowed:
                continue
            if clock_seam and dotted in _WALL_CLOCK:
                continue
            if dotted in _WALL_CLOCK:
                yield self.diagnostic(
                    module,
                    node,
                    f"wall-clock read {dotted}() in a core stage; epoch time "
                    "must come from the snapshot, not the host clock",
                )
            elif dotted.startswith("random.") and dotted.split(".", 1)[1] in _GLOBAL_RANDOM_FNS:
                yield self.diagnostic(
                    module,
                    node,
                    f"{dotted}() drives the shared global RNG; use a seeded "
                    "random.Random instance passed in explicitly",
                )

    # -- asyncio event-loop clock reads -------------------------------

    def _event_loop_clock(self, module, config, imports):
        # Same per-file seam as the wall clock: obs/clock.py wraps the
        # one sanctioned loop.time() read (event_loop_time); everywhere
        # else in core the event-loop clock must arrive injected.
        if module.relpath in config.clock_seam_paths:
            return
        scopes: List[ast.AST] = [module.tree]
        scopes.extend(iter_functions(module.tree))
        for scope in scopes:
            loop_names = _loop_bound_names(scope, imports)
            for node in scope_nodes(scope):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "time"
                    and not node.args
                    and not node.keywords
                ):
                    continue
                receiver = node.func.value
                if isinstance(receiver, ast.Call):
                    dotted = resolve_call_name(receiver, imports)
                    if dotted not in _EVENT_LOOP_FACTORIES:
                        continue
                elif not (isinstance(receiver, ast.Name) and receiver.id in loop_names):
                    continue
                yield self.diagnostic(
                    module,
                    node,
                    "event-loop clock read (loop.time()) in a core stage; "
                    "take latency stamps through the injected seam "
                    "(obs.clock.event_loop_time) so tests can pin the clock",
                )

    # -- id()-keyed maps ----------------------------------------------

    def _id_keyed(self, module):
        for node in ast.walk(module.tree):
            key_exprs: List[ast.AST] = []
            if isinstance(node, ast.Subscript):
                key_exprs.append(node.slice)
            elif isinstance(node, ast.Dict):
                key_exprs.extend(k for k in node.keys if k is not None)
            elif isinstance(node, ast.DictComp):
                key_exprs.append(node.key)
            for key in key_exprs:
                if (
                    isinstance(key, ast.Call)
                    and isinstance(key.func, ast.Name)
                    and key.func.id == "id"
                ):
                    yield self.diagnostic(
                        module,
                        key,
                        "id()-keyed map: object identities vary run to run; "
                        "key by a stable name or structural key instead",
                    )

    # -- set iteration into ordered output ----------------------------

    def _set_iteration(self, module, scope):
        known_sets = _known_set_names(scope)
        exempt: Set[int] = set()
        for node in scope_nodes(scope):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in _ORDER_SAFE_WRAPPERS:
                    for arg in node.args:
                        exempt.add(id(arg))

        for node in scope_nodes(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if id(node.iter) in exempt:
                    continue
                if _is_set_expr(node.iter, known_sets) and _body_is_order_sensitive(node):
                    yield self.diagnostic(
                        module,
                        node,
                        "for-loop iterates a set while accumulating ordered "
                        "output; wrap the iterable in sorted(...)",
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                if id(node) in exempt:
                    continue
                for generator in node.generators:
                    if _is_set_expr(generator.iter, known_sets):
                        yield self.diagnostic(
                            module,
                            node,
                            "comprehension iterates a set into ordered output; "
                            "wrap the iterable in sorted(...)",
                        )
                        break
            elif isinstance(node, ast.Call):
                func_name = node.func.id if isinstance(node.func, ast.Name) else None
                if func_name in _ORDERING_CONSUMERS:
                    for arg in node.args:
                        if _is_set_expr(arg, known_sets):
                            yield self.diagnostic(
                                module,
                                node,
                                f"{func_name}() freezes set iteration order into "
                                "a sequence; use sorted(...) instead",
                            )
                            break


def _loop_bound_names(scope: ast.AST, imports: Dict[str, str]) -> Set[str]:
    """Names in this scope bound to an asyncio event-loop factory call.

    Conservative by design: only plain-name assignments are tracked
    (``loop = asyncio.get_running_loop()``), which is how every real
    sighting reads.  A loop smuggled through an attribute still gets
    caught at the direct ``asyncio.get_*_loop().time()`` chain.
    """
    names: Set[str] = set()
    for node in scope_nodes(scope):
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        else:
            continue
        if not isinstance(value, ast.Call):
            continue
        if resolve_call_name(value, imports) not in _EVENT_LOOP_FACTORIES:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _known_set_names(scope: ast.AST) -> Set[str]:
    """Names in this scope whose every binding is a set expression.

    ``None`` initialisations are neutral (a common init-then-fill
    pattern); a single non-set binding disqualifies the name.
    """
    candidates: Dict[str, bool] = {}
    known: Set[str] = set()
    for _pass in range(2):  # two passes reach a fixpoint for chained assigns
        candidates.clear()
        for node in scope_nodes(scope):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            if value is None or (isinstance(value, ast.Constant) and value.value is None):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                is_set = _is_set_expr(value, known)
                previous = candidates.get(target.id)
                candidates[target.id] = is_set if previous is None else (previous and is_set)
        known = {name for name, is_set in candidates.items() if is_set}
    return known


def _is_keys_view(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
    )


def _is_set_expr(node: ast.AST, known_sets: Set[str]) -> bool:
    """Conservatively: does this expression definitely produce a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in known_sets
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in (
            "union", "intersection", "difference", "symmetric_difference"
        ):
            return _is_set_expr(func.value, known_sets)
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        sides = (node.left, node.right)
        if any(_is_set_expr(side, known_sets) for side in sides):
            return True
        # dict .keys() views combine into plain sets under |, &, ^, -.
        return any(_is_keys_view(side) for side in sides)
    return False


def _body_is_order_sensitive(loop: ast.For) -> bool:
    """Does the loop body freeze iteration order into ordered output?"""
    for stmt in loop.body + loop.orelse:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in ("append", "extend", "insert", "appendleft"):
                    return True
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                if any(isinstance(t, ast.Subscript) for t in targets):
                    return True
    return False


# ----------------------------------------------------------------------
# F1: bare float equality
# ----------------------------------------------------------------------


class FloatEqualityRule(Rule):
    code = "F1"
    title = "bare float ==/!= in a core stage"
    rationale = (
        "Measured rates pass through arithmetic that is not bit-stable "
        "across code paths; exact equality silently becomes never-equal.  "
        "Use the tolerance helpers (math.isclose, Invariant.evaluate, "
        "_relative_gap).  Where exact identity IS the contract -- e.g. the "
        "incremental engine's reuse guards, where a spurious difference "
        "only costs a recompute -- suppress with a rationale."
    )

    def check(self, module, config, project):
        if not module.is_core:
            return
        for func in iter_functions(module.tree):
            float_names = _float_locals(func, project)
            for node in scope_nodes(func):
                if not isinstance(node, ast.Compare):
                    continue
                operands = [node.left] + list(node.comparators)
                for i, op in enumerate(node.ops):
                    if not isinstance(op, (ast.Eq, ast.NotEq)):
                        continue
                    left, right = operands[i], operands[i + 1]
                    if _is_none(left) or _is_none(right):
                        continue
                    if _is_floatish(left, float_names, project) or _is_floatish(
                        right, float_names, project
                    ):
                        yield self.diagnostic(
                            module,
                            node,
                            "bare float equality; compare through a tolerance "
                            "helper, or suppress where exact identity is the "
                            "contract",
                        )
                        break


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _float_locals(func: ast.FunctionDef, project: ProjectIndex) -> Set[str]:
    """Local names inferred float-typed inside ``func``."""
    names: Set[str] = set()
    args = list(func.args.posonlyargs) + list(func.args.args) + list(func.args.kwonlyargs)
    for arg in args:
        if arg.annotation is not None and _is_float_annotation(arg.annotation):
            names.add(arg.arg)
    for _pass in range(2):
        for node in scope_nodes(func):
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if _is_float_annotation(node.annotation):
                    names.add(node.target.id)
            elif isinstance(node, ast.Assign) and _is_floatish(node.value, names, project):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


_ARITHMETIC_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow)


def _is_floatish(node: ast.AST, float_names: Set[str], project: ProjectIndex) -> bool:
    """Heuristically: is this expression float-valued?"""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Name):
        return node.id in float_names
    if isinstance(node, ast.Attribute):
        return node.attr in project.float_attrs
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted is None:
            return False
        tail = dotted.split(".")[-1]
        return tail == "float" or tail in project.float_returns
    if isinstance(node, ast.BinOp) and isinstance(node.op, _ARITHMETIC_OPS):
        if isinstance(node.op, ast.Div):
            return True
        return _is_floatish(node.left, float_names, project) or _is_floatish(
            node.right, float_names, project
        )
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_floatish(node.operand, float_names, project)
    if isinstance(node, ast.IfExp):
        return _is_floatish(node.body, float_names, project) or _is_floatish(
            node.orelse, float_names, project
        )
    return False


# ----------------------------------------------------------------------
# A1: blocking calls inside async defs
# ----------------------------------------------------------------------


def _is_executor_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "run_in_executor"
    )


class BlockingAsyncRule(Rule):
    code = "A1"
    title = "blocking call inside an async def"
    rationale = (
        "One synchronous sleep, file read, or socket call inside a "
        "coroutine stalls every feed, the assembler, and the consumer "
        "sharing the event loop -- in fleet mode, every tenant.  Use the "
        "async equivalent (asyncio.sleep, loop.run_in_executor) and "
        "always await executor futures so failures surface."
    )

    def check(self, module, config, project):
        if not module.is_core:
            return
        imports = import_map(module.tree)
        for func in iter_functions(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            executor_futures: Dict[str, ast.AST] = {}
            awaited: Set[str] = set()
            for node in scope_nodes(func):
                if isinstance(node, ast.Call):
                    dotted = resolve_call_name(node, imports)
                    if dotted in config.blocking_calls:
                        yield self.diagnostic(
                            module,
                            node,
                            f"{dotted}() blocks the event loop inside async "
                            f"{func.name}(); use the async equivalent or "
                            "run_in_executor",
                        )
                elif isinstance(node, ast.Expr) and _is_executor_call(node.value):
                    yield self.diagnostic(
                        module,
                        node.value,
                        f"run_in_executor() future discarded in async "
                        f"{func.name}(); await it (directly or via gather) so "
                        "executor failures propagate",
                    )
                elif isinstance(node, ast.Assign) and _is_executor_call(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            executor_futures.setdefault(target.id, node.value)
                elif isinstance(node, ast.Await):
                    for sub in ast.walk(node):
                        if isinstance(sub, ast.Name):
                            awaited.add(sub.id)
            for name in sorted(set(executor_futures) - awaited):
                yield self.diagnostic(
                    module,
                    executor_futures[name],
                    f"executor future {name!r} is never awaited in async "
                    f"{func.name}(); its result and exceptions are lost",
                )


# ----------------------------------------------------------------------
# A2: state mutated across an await without a lock/queue discipline
# ----------------------------------------------------------------------

#: Method calls that ARE the coordination discipline: invoking one on
#: an attribute does not count as touching shared state (the queue /
#: event / metric object is the safe channel itself).
_CHANNEL_METHODS = frozenset(
    {
        "put", "put_nowait", "get_nowait", "task_done", "join",
        "acquire", "release", "wait", "notify", "notify_all",
        "inc", "dec", "observe", "set_to", "labels",
    }
)


@dataclass
class _Access:
    """One touch of a shared key inside an async function."""

    key: str
    write: bool
    pos: int  # number of awaits executed before this access
    node: ast.AST
    loop_hazard: bool  # a write inside a loop whose body awaits


class _AsyncScan:
    """Linearizes one async function into (key, read/write, await-count).

    Within a single statement the model is reads -> awaits -> writes
    (matching ``self.x = await f(self.y)`` evaluation order), so two
    accesses with different ``pos`` have an await strictly between
    them.  Statements under an ``async with <lock>`` guard are atomic:
    skipped entirely, counted as one await.
    """

    def __init__(
        self,
        config: LintConfig,
        func: ast.AST,
        track_self: bool,
        tracked_names: Set[str],
    ) -> None:
        self.config = config
        self.track_self = track_self
        self.tracked_names = tracked_names
        self.accesses: List[_Access] = []
        self._pos = 0
        self._stmts(func.body, loop_await=False)

    # -- statement walk ------------------------------------------------

    def _stmts(self, stmts: List[ast.stmt], loop_await: bool) -> None:
        for stmt in stmts:
            self._stmt(stmt, loop_await)

    def _stmt(self, stmt: ast.stmt, loop_await: bool) -> None:
        if isinstance(stmt, _SCOPE_NODES):
            return
        if isinstance(stmt, ast.If):
            self._simple(stmt.test, loop_await)
            self._stmts(stmt.body, loop_await)
            self._stmts(stmt.orelse, loop_await)
        elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            has_await = isinstance(stmt, ast.AsyncFor) or any(
                isinstance(node, (ast.Await, ast.AsyncFor, ast.AsyncWith))
                for node in scope_nodes(stmt)
            )
            inner = loop_await or has_await
            if isinstance(stmt, ast.While):
                self._simple(stmt.test, inner)
            else:
                self._simple(stmt.iter, loop_await)
            if has_await:
                self._pos += 1
            self._stmts(stmt.body, inner)
            self._stmts(stmt.orelse, loop_await)
        elif isinstance(stmt, ast.Try):
            self._stmts(stmt.body, loop_await)
            for handler in stmt.handlers:
                self._stmts(handler.body, loop_await)
            self._stmts(stmt.orelse, loop_await)
            self._stmts(stmt.finalbody, loop_await)
        elif isinstance(stmt, ast.AsyncWith) and self._is_guarded(stmt):
            self._pos += 1  # __aenter__/__aexit__ yield, contents are atomic
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            if isinstance(stmt, ast.AsyncWith):
                self._pos += 1
            for item in stmt.items:
                self._simple(item.context_expr, loop_await)
            self._stmts(stmt.body, loop_await)
            if isinstance(stmt, ast.AsyncWith):
                self._pos += 1
        else:
            self._simple(stmt, loop_await)

    def _is_guarded(self, stmt: ast.AsyncWith) -> bool:
        for item in stmt.items:
            dotted = dotted_name(item.context_expr)
            if dotted is None and isinstance(item.context_expr, ast.Call):
                dotted = dotted_name(item.context_expr.func)
            if dotted is not None and self.config.is_async_guard(dotted):
                return True
        return False

    # -- simple statements / expressions -------------------------------

    def _simple(self, node: ast.AST, loop_await: bool) -> None:
        nodes = [node] + [n for n in scope_nodes(node)]
        awaits = sum(1 for n in nodes if isinstance(n, ast.Await))
        for key, write, access_node in self._accesses_in(nodes):
            pos = self._pos + (awaits if write else 0)
            self.accesses.append(
                _Access(key, write, pos, access_node, loop_await and write)
            )
        self._pos += awaits

    def _accesses_in(self, nodes: List[ast.AST]):
        handled: Set[int] = set()
        out: List[Tuple[str, bool, ast.AST]] = []
        for node in nodes:
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                keyed = self._key_of(node.func.value)
                if keyed is None:
                    continue
                key, anchor = keyed
                handled.add(id(anchor))
                if node.func.attr in _CHANNEL_METHODS:
                    continue
                write = node.func.attr in MUTATING_METHODS
                out.append((key, write, node))
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    keyed = self._key_of(target)
                    if keyed is None:
                        continue
                    key, anchor = keyed
                    handled.add(id(anchor))
                    out.append((key, True, target))
                    if isinstance(node, ast.AugAssign):
                        out.append((key, False, target))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    keyed = self._key_of(target)
                    if keyed is None:
                        continue
                    key, anchor = keyed
                    handled.add(id(anchor))
                    out.append((key, True, target))
        for node in nodes:
            if id(node) in handled:
                continue
            if (
                self.track_self
                and isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                write = not isinstance(node.ctx, ast.Load)
                out.append((f"self.{node.attr}", write, node))
            elif isinstance(node, ast.Name) and node.id in self.tracked_names:
                write = not isinstance(node.ctx, ast.Load)
                out.append((node.id, write, node))
        return out

    def _key_of(self, expr: ast.AST) -> Optional[Tuple[str, ast.AST]]:
        """(key, anchor access node) for a target/receiver expression."""
        node = expr
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            inner = node.value
            if (
                self.track_self
                and isinstance(inner, ast.Name)
                and inner.id == "self"
                and isinstance(node, ast.Attribute)
            ):
                return f"self.{node.attr}", node
            node = inner
        if isinstance(node, ast.Name) and node.id in self.tracked_names:
            return node.id, node
        return None


class AwaitStateRule(Rule):
    code = "A2"
    title = "state mutated across an await without a queue/lock discipline"
    rationale = (
        "Every await is a scheduling point: another task runs and "
        "observes the instance mid-update.  A field written on one side "
        "of an await and touched on the other -- in the same coroutine or "
        "a sibling coroutine of the class -- is exactly the hazard that "
        "loses stream terminations under load.  Route the value through "
        "the queue item itself, keep it local to one coroutine, or guard "
        "both sides with an async lock."
    )

    def check(self, module, config, project):
        if not module.is_core:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, config, node)
        for func in iter_functions(module.tree):
            if isinstance(func, ast.AsyncFunctionDef):
                yield from self._check_closures(module, config, func)

    # -- instance state across a class's coroutines --------------------

    def _check_class(self, module, config, cls):
        scans: Dict[str, _AsyncScan] = {}
        for node in cls.body:
            if isinstance(node, ast.AsyncFunctionDef):
                scans[node.name] = _AsyncScan(config, node, True, set())
        if not scans:
            return
        flagged: Dict[int, Tuple[ast.AST, str]] = {}
        for name in sorted(scans):
            self._h1(scans[name], name, flagged)
        # H2: write in one coroutine, any touch in a sibling coroutine.
        touched: Dict[str, Set[str]] = {}
        for name, scan in scans.items():
            for access in scan.accesses:
                touched.setdefault(access.key, set()).add(name)
        for name in sorted(scans):
            for access in scans[name].accesses:
                if not access.write or id(access.node) in flagged:
                    continue
                others = sorted(touched.get(access.key, set()) - {name})
                if others:
                    flagged[id(access.node)] = (
                        access.node,
                        f"{access.key} is written in async {name}() and "
                        f"touched in async {others[0]}(); coroutines "
                        "interleave at every await -- pass the value through "
                        "the queue item or guard both sides with an async "
                        "lock",
                    )
        for node, message in sorted(
            flagged.values(),
            key=lambda item: (item[0].lineno, item[0].col_offset, item[1]),
        ):
            yield self.diagnostic(module, node, message)

    def _h1(self, scan, where, flagged):
        by_key: Dict[str, List[_Access]] = {}
        for access in scan.accesses:
            by_key.setdefault(access.key, []).append(access)
        for key in sorted(by_key):
            accesses = by_key[key]
            for access in accesses:
                if not access.write or id(access.node) in flagged:
                    continue
                if access.loop_hazard:
                    flagged[id(access.node)] = (
                        access.node,
                        f"{key} is mutated inside a loop that awaits in async "
                        f"{where}(); the next iteration resumes after other "
                        "tasks ran -- keep the accumulator local or guard the "
                        "loop body with an async lock",
                    )
                elif any(
                    other.node is not access.node and other.pos != access.pos
                    for other in accesses
                ):
                    flagged[id(access.node)] = (
                        access.node,
                        f"{key} is accessed on both sides of an await in "
                        f"async {where}(); another task can observe or clobber "
                        "the intermediate state -- recompute after the await "
                        "or guard with an async lock",
                    )

    # -- closure/global names inside one coroutine ----------------------

    def _check_closures(self, module, config, func):
        tracked: Set[str] = set()
        for node in scope_nodes(func):
            if isinstance(node, (ast.Nonlocal, ast.Global)):
                tracked.update(node.names)
        if not tracked:
            return
        flagged: Dict[int, Tuple[ast.AST, str]] = {}
        self._h1(_AsyncScan(config, func, False, tracked), func.name, flagged)
        for node, message in sorted(
            flagged.values(),
            key=lambda item: (item[0].lineno, item[0].col_offset, item[1]),
        ):
            yield self.diagnostic(module, node, message)


# ----------------------------------------------------------------------
# X1: cache mutation without exception-safety discipline
# ----------------------------------------------------------------------

#: Calls that cannot raise in a way that leaves a half-mutated cache
#: observable (pure builtins and converters).
_SAFE_CALL_NAMES = frozenset(
    {
        "len", "isinstance", "issubclass", "repr", "str", "int", "float",
        "bool", "id", "print", "tuple", "min", "max", "sorted", "list",
        "dict", "set", "frozenset", "getattr", "hasattr", "format", "range",
        "enumerate", "zip", "abs", "round", "sum",
    }
)

#: Attribute calls on a plain-name receiver that are data-structure or
#: formatting operations, not arbitrary user code.
_SAFE_CALL_ATTRS = (
    MUTATING_METHODS
    | ALIAS_METHODS
    | frozenset(
        {
            "copy", "join", "split", "startswith", "endswith", "lower",
            "upper", "strip", "format", "isnan", "isclose", "isfinite",
            "info", "debug", "warning",
        }
    )
)

_FRESH_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "OrderedDict", "defaultdict", "deque", "Counter"}
)


class CacheMutationRule(Rule):
    code = "X1"
    title = "cache store mutated without exception-safety discipline"
    rationale = (
        "Long-lived stores (TopologyCacheStore, VectorModelStore, "
        "_EpochMemo) outlive any one epoch; an exception after an "
        "in-place mutation leaves entries the next epoch will trust.  "
        "Mutations followed by fallible work must sit in a try whose "
        "handler resets the store, or build a fresh structure and "
        "assign it once at the end (build-then-swap)."
    )

    def check(self, module, config, project):
        if not module.is_core:
            return
        for func, in_store_class in _functions_with_store_class(
            module.tree, config.cache_store_classes
        ):
            yield from self._check_function(module, config, func, in_store_class)

    # ------------------------------------------------------------------

    def _check_function(self, module, config, func, in_store_class):
        tracked = self._tracked_names(func, config, in_store_class)
        if not tracked and not in_store_class:
            return
        mutations = self._mutations(func, tracked, in_store_class, config)
        if not mutations:
            return
        parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(func):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        for node, description in mutations:
            ancestors = self._ancestors(node, func, parents)
            if self._protected(ancestors, tracked, config):
                continue
            if not self._hazardous(func, node, ancestors, parents):
                continue
            yield self.diagnostic(
                module,
                node,
                f"{description} in {func.name}() is not exception-safe: a "
                "later failure leaves the store half-updated for the next "
                "epoch; wrap in try/except calling reset()/clear(), or build "
                "locally and assign once at the end",
            )

    # -- what is tracked ------------------------------------------------

    def _tracked_names(self, func, config, in_store_class) -> Set[str]:
        tracked: Set[str] = set()
        args = func.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            if config.is_cache_param(arg.arg):
                tracked.add(arg.arg)
        changed = True
        while changed:
            changed = False
            for node in scope_nodes(func):
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                else:
                    continue
                if not self._derives(value, tracked, in_store_class):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name) and target.id not in tracked:
                        tracked.add(target.id)
                        changed = True
        return tracked

    def _derives(self, value, tracked, in_store_class) -> bool:
        """Does this expression alias state already in a tracked store?"""
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Attribute) and func.attr in ALIAS_METHODS:
                return self._derives(func.value, tracked, in_store_class)
            dotted = dotted_name(func)
            if dotted is not None and dotted.split(".")[-1] in _FRESH_CONSTRUCTORS:
                return False
            return False
        node = value
        while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
            node = node.value
        if isinstance(node, ast.Name):
            if node.id in tracked:
                return True
            if in_store_class and node.id == "self" and value is not node:
                return True
        return False

    # -- what counts as a mutation --------------------------------------

    def _mutations(self, func, tracked, in_store_class, config):
        out: List[Tuple[ast.AST, str]] = []
        for node in scope_nodes(func):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    described = self._mutating_target(
                        target, tracked, in_store_class
                    )
                    if described is not None:
                        out.append((target, described))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        described = self._mutating_target(
                            target, tracked, in_store_class
                        )
                        if described is not None:
                            out.append(
                                (target, described.replace("item write", "item delete"))
                            )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr not in MUTATING_METHODS:
                    continue
                if node.func.attr in config.cache_reset_names:
                    # reset()/clear()/invalidate() IS the sanctioned
                    # recovery action -- emptying a store is exception-
                    # safe by definition (no half-applied state).
                    continue
                receiver = node.func.value
                if self._derives(receiver, tracked, in_store_class) or (
                    isinstance(receiver, ast.Name) and receiver.id in tracked
                ):
                    label = dotted_name(node.func) or node.func.attr
                    out.append((node, f"in-place {label}()"))
        return out

    def _mutating_target(self, target, tracked, in_store_class) -> Optional[str]:
        """Description if this store target is an in-place mutation.

        Plain rebinds (``cache = ...``, ``self.entries = ...``) are
        atomic and exempt -- they ARE the build-then-swap endgame.
        """
        if isinstance(target, ast.Subscript):
            if self._derives(target.value, tracked, in_store_class) or (
                isinstance(target.value, ast.Name) and target.value.id in tracked
            ):
                base = dotted_name(target.value) or "store"
                return f"item write {base}[...]"
            return None
        if isinstance(target, ast.Attribute):
            inner = target.value
            if isinstance(inner, ast.Name) and inner.id == "self":
                return None  # depth-1 self.x rebind: atomic
            if isinstance(inner, ast.Name) and inner.id in tracked:
                return f"field write {inner.id}.{target.attr}"
            if self._derives(inner, tracked, in_store_class):
                base = dotted_name(inner) or "store"
                return f"field write {base}.{target.attr}"
        return None

    # -- protection and hazard ------------------------------------------

    def _ancestors(self, node, func, parents) -> List[ast.AST]:
        chain: List[ast.AST] = []
        current = node
        while current is not func:
            current = parents.get(current)
            if current is None:
                break
            chain.append(current)
        return chain

    def _protected(self, ancestors, tracked, config) -> bool:
        previous: Optional[ast.AST] = None
        for ancestor in ancestors:
            if isinstance(ancestor, ast.Try) and previous is not None:
                in_body = any(
                    previous is stmt or previous in ast.walk(stmt)
                    for stmt in ancestor.body
                )
                if in_body and any(
                    self._handler_resets(handler, tracked, config)
                    for handler in ancestor.handlers
                ):
                    return True
            previous = ancestor
        return False

    def _handler_resets(self, handler, tracked, config) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is not None and dotted.split(".")[-1] in config.cache_reset_names:
                    return True
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in tracked:
                        return True
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        return True
        return False

    def _hazardous(self, func, node, ancestors, parents) -> bool:
        for ancestor in ancestors:
            if isinstance(ancestor, (ast.For, ast.AsyncFor, ast.While)):
                if self._contains_fallible(ancestor):
                    return True
                break  # nearest loop only
        return self._forward_hazard(func, node, ancestors, parents)

    def _forward_hazard(self, func, node, ancestors, parents) -> bool:
        """Can a fallible call or raise run after the mutation commits?"""
        chain = [node] + ancestors  # innermost first, func last
        for index, ancestor in enumerate(chain[:-1]):
            parent = chain[index + 1]
            for field_name in ("body", "orelse", "finalbody"):
                block = getattr(parent, field_name, None)
                if not isinstance(block, list) or ancestor not in block:
                    continue
                for stmt in block[block.index(ancestor) + 1:]:
                    if isinstance(stmt, ast.Return):
                        if stmt.value is not None and self._contains_fallible(
                            stmt.value
                        ):
                            return True
                        return False  # clean exit
                    if isinstance(stmt, (ast.Break, ast.Continue)):
                        break
                    if self._contains_fallible(stmt):
                        return True
        return False

    def _contains_fallible(self, node) -> bool:
        if isinstance(node, ast.Try) and node.handlers:
            return any(
                self._contains_fallible(stmt)
                for stmt in list(node.orelse) + list(node.finalbody)
            )
        if isinstance(node, _SCOPE_NODES):
            return False
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call) and self._fallible(node):
            return True
        return any(
            self._contains_fallible(child) for child in ast.iter_child_nodes(node)
        )

    @staticmethod
    def _fallible(node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id not in _SAFE_CALL_NAMES
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, (ast.Attribute, ast.Subscript)):
                return False  # data-structure op on a field, not user code
            return func.attr not in _SAFE_CALL_ATTRS and func.attr not in _SAFE_CALL_NAMES
        return True


def _functions_with_store_class(tree: ast.Module, store_classes: FrozenSet[str]):
    """(function, defined-inside-a-store-class) pairs, module-wide."""

    def visit(node: ast.AST, in_store: bool):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from visit(child, child.name in store_classes)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, in_store
                yield from visit(child, in_store)
            else:
                yield from visit(child, in_store)

    yield from visit(tree, False)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

#: File-scoped rules, in reporting order.
RULES: Tuple[Rule, ...] = (
    ArgMutationRule(),
    ModuleStateRule(),
    NondeterminismRule(),
    FloatEqualityRule(),
    BlockingAsyncRule(),
    AwaitStateRule(),
    CacheMutationRule(),
)

#: Every rule code the linter can emit (incl. the project-scoped C1
#: registry-parity and T1 taint rules and the L1 unused-suppression
#: meta check).
ALL_RULE_CODES: Tuple[str, ...] = (
    "P1", "P2", "D1", "F1", "A1", "A2", "X1", "T1", "C1", "L1",
)


def rule_catalog() -> List[Dict[str, str]]:
    """Code/title/rationale for every rule (``lint --list-rules``)."""
    from repro.analysis.parity import RegistryParityRule
    from repro.analysis.suppress import UNUSED_SUPPRESSION_CODE
    from repro.analysis.taint import TaintSolver

    catalog = [
        {"code": rule.code, "title": rule.title, "rationale": rule.rationale}
        for rule in RULES
    ]
    catalog.append(
        {
            "code": TaintSolver.rule_code,
            "title": TaintSolver.title,
            "rationale": TaintSolver.rationale,
        }
    )
    parity = RegistryParityRule()
    catalog.append(
        {"code": parity.code, "title": parity.title, "rationale": parity.rationale}
    )
    catalog.append(
        {
            "code": UNUSED_SUPPRESSION_CODE,
            "title": "unused '# lint: ignore' suppression",
            "rationale": (
                "Suppressions document intentional contract exceptions; one "
                "that no longer silences anything is stale and must be removed "
                "so the exception inventory stays accurate."
            ),
        }
    )
    return catalog
