"""hodor-lint: static purity/determinism analysis of the pipeline.

The incremental engine's correctness argument (see
:mod:`repro.engine.incremental`) rests on code-level invariants nothing
at runtime can check: per-entity units must be pure functions of their
declared inputs, stages must not read or write hidden module state,
iteration feeding ordered reports must be deterministically ordered,
and every serial stage must have a per-entity counterpart wired into
the incremental path.  This package verifies those invariants
mechanically, over the AST, on every commit -- the same move the paper
makes for controller inputs, applied to our own pipeline.

Rule catalog (see ``docs/LINT.md`` for rationale):

- **P1** argument mutation inside per-entity units / stage functions;
- **P2** module-level mutable state touched from core stages;
- **D1** nondeterminism hazards (global ``random``, wall-clock reads,
  set iteration into ordered output, ``id()``-keyed maps);
- **F1** bare float ``==``/``!=`` in ``core/``/``engine/``;
- **A1** blocking calls inside ``async def`` in core (sync sleeps,
  file/socket I/O, discarded executor futures);
- **A2** state mutated across an ``await`` without a queue/lock
  discipline (the coroutine-interleaving hazard class);
- **X1** cache-store mutation without try/except-reset or
  build-then-swap exception safety;
- **T1** interprocedural validated-before-use taint: raw
  snapshot/update/epoch values must pass a declared sanitizer before
  reaching a verdict/report/apply sink (``--explain T1`` shows the
  call-graph taint path);
- **C1** full/incremental/vector registry parity (every per-entity
  unit wired into the serial pipeline, ``engine/incremental.py``, and
  the vector backend);
- **L1** unused ``# lint: ignore[...]`` suppression.

Entry points: ``python -m repro lint`` (CLI) or :func:`run_lint`
(importable API).  Pass ``cache_path`` (CLI ``--cache``) for
incremental runs keyed on content hashes.
"""

from repro.analysis.config import LintConfig
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.report import render_text, to_json_text
from repro.analysis.rules import ALL_RULE_CODES, RULES, rule_catalog
from repro.analysis.runner import LintResult, run_lint

__all__ = [
    "ALL_RULE_CODES",
    "Diagnostic",
    "LintConfig",
    "LintResult",
    "RULES",
    "Severity",
    "render_text",
    "rule_catalog",
    "run_lint",
    "to_json_text",
]
