"""Configuration for the lint run.

Everything the rules key off -- which directories count as pipeline
"core", which function names are per-entity units, where the
incremental registry lives -- is data here, not constants buried in
rule code.  The self-tests point a :class:`LintConfig` at fixture
trees to exercise every rule against known-good and known-bad code
without touching the live tree.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import FrozenSet, Pattern, Tuple

__all__ = [
    "LintConfig",
    "DEFAULT_ENTITY_PATTERNS",
    "DEFAULT_TAINT_SOURCE_TYPES",
    "DEFAULT_TAINT_SANITIZERS",
    "DEFAULT_TAINT_SINKS",
    "DEFAULT_TAINT_BENIGN_FIELDS",
    "DEFAULT_BLOCKING_CALLS",
    "DEFAULT_CACHE_STORE_CLASSES",
    "DEFAULT_CACHE_PARAM_PATTERNS",
    "DEFAULT_CACHE_RESET_NAMES",
    "DEFAULT_ASYNC_GUARD_PATTERNS",
]

#: Function-name patterns that mark a per-entity unit or in-place
#: stage function subject to the P1 purity contract.
DEFAULT_ENTITY_PATTERNS: Tuple[str, ...] = (
    r"^collect_\w+_entity$",
    r"^harden_\w+_entity$",
    r"^check_\w+_entity$",
    r"^repair_flows$",
)

#: Class names whose instances are *raw input* for the T1 taint rule:
#: snapshots straight off the wire, update deliveries, and assembled
#: epochs -- everything upstream of hardening.
DEFAULT_TAINT_SOURCE_TYPES: FrozenSet[str] = frozenset(
    {"NetworkSnapshot", "RouterSnapshot", "UpdateEvent", "AssembledEpoch"}
)

#: Call-name patterns (matched on the final dotted segment) that
#: *sanitize*: a value returned by one of these is validated.  Covers
#: the per-entity hardening units, the flow repairer, and the vector
#: backend's hardening dispatch methods (``_harden``,
#: ``_harden_link_status``, ...).
DEFAULT_TAINT_SANITIZERS: Tuple[str, ...] = (
    r"^_?harden(_\w+)?$",
    r"^repair_flows$",
)

#: Call-name patterns (final dotted segment) that are verdict /
#: report / apply *sinks*: a tainted value reaching one is a T1 error.
DEFAULT_TAINT_SINKS: Tuple[str, ...] = (
    r"^check_\w+_entity$",
    r"^ValidationReport$",
    r"^apply_\w+$",
)

#: Source-object fields that carry provenance, not signal: reading one
#: off a raw source does not taint.  ``timestamp`` is epoch *identity*
#: -- it keys reports and memos and is compared bit-exact by the
#: differential harness; it never influences a verdict.
DEFAULT_TAINT_BENIGN_FIELDS: FrozenSet[str] = frozenset({"timestamp"})

#: Dotted call names (import-resolved) that block the event loop: A1
#: flags any of these inside an ``async def`` in core.
DEFAULT_BLOCKING_CALLS: FrozenSet[str] = frozenset(
    {
        "time.sleep",
        "socket.socket",
        "socket.create_connection",
        "socket.getaddrinfo",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "urllib.request.urlopen",
        "os.system",
        "os.popen",
        "requests.get",
        "requests.post",
        "requests.request",
        "open",
        "input",
    }
)

#: Classes whose instances are long-lived cache stores: X1 holds every
#: in-place mutation of their state to the try/except-reset or
#: build-then-swap discipline.
DEFAULT_CACHE_STORE_CLASSES: FrozenSet[str] = frozenset(
    {"TopologyCacheStore", "VectorModelStore", "_EpochMemo", "HistoryStore"}
)

#: Parameter-name patterns that mark a passed-in cache/memo/store (X1
#: tracks mutations through them and through local aliases).
DEFAULT_CACHE_PARAM_PATTERNS: Tuple[str, ...] = (
    r"(^|_)cache$",
    r"^memo$",
    r"^store$",
)

#: Method names an except-handler may call to count as the "reset"
#: side of the try/except-reset discipline.  ``rollback`` is the
#: sqlite-backed history store's reset: every mutation there runs
#: inside try/except sqlite3.Error -> conn.rollback().
DEFAULT_CACHE_RESET_NAMES: FrozenSet[str] = frozenset(
    {"reset", "clear", "invalidate", "rollback"}
)

#: Substrings (case-insensitive) of an ``async with`` context
#: expression that mark a lock/semaphore guard: state touched inside
#: such a block is exempt from A2.
DEFAULT_ASYNC_GUARD_PATTERNS: Tuple[str, ...] = ("lock", "sem", "cond", "mutex")


@dataclass(frozen=True)
class LintConfig:
    """Tunables for one lint run.

    Attributes:
        entity_patterns: Regexes naming the functions P1 holds to the
            no-argument-mutation contract (and C1 treats as registry
            members).
        core_dirs: Directory names whose modules count as pipeline
            core for P2/D1/F1 (any path component match).  The
            observability layer (``obs``) is included: spans and
            metrics run inside every stage, so hidden state or
            wall-clock reads there corrupt replay just as surely.
            The streaming ingestion layer (``stream``) is included for
            the same reason: feeds, the epoch assembler and the ingest
            pipeline sit upstream of every validation verdict.  The
            scenario fuzzer (``fuzz``) is included because its whole
            value rests on a case seed regenerating the exact case:
            global RNG, wall-clock reads or unordered iteration there
            would make reproducers unreplayable.  The verdict history
            service (``history``) is included because its stores are
            byte-reproducible artifacts and its alert replay is part
            of the determinism contract.  The multi-tenant fleet
            supervisor (``fleet``) is included because its whole
            recovery story -- crash reschedules asserted
            fingerprint-identical, readmissions byte-identical to
            untroubled runs -- collapses if digests, admission
            decisions, or dispatch order pick up wall time or global
            RNG.
        incremental_path: POSIX-relative path (from the lint root) of
            the module that must wire every per-entity unit (C1).
        vector_path: POSIX-relative path (from the lint root) of the
            array-compiled backend module.  C1 extends to three-way
            parity: every per-entity unit must also be accounted for
            there -- dispatched on the exceptional path, or named in
            the module's replacement manifest (its docstring) where
            the unit is replicated as array math.  Missing module ==
            vacuously satisfied, so fixture trees without a vector
            backend stay clean.
        enabled_codes: Rule codes to run; empty means all.
        wall_clock_allowed: Dotted call names exempt from the D1
            wall-clock check.  ``perf_counter``/``monotonic`` feed
            stage *timings* (EngineStats), never verdicts, so they are
            allowed by default; ``time.time`` and friends are not.
        clock_seam_paths: POSIX-relative module paths (from the lint
            root) permitted to read host clocks directly.  This is the
            clock-injection seam: ``obs/clock.py`` wraps the one
            sanctioned ``time.time()`` call (the display-only trace
            anchor) and the one sanctioned asyncio event-loop clock
            read (``event_loop_time``) so every other module gets its
            clock injected.  ``history/store.py`` is the second seam:
            months-long age retention is inherently wall-time-based,
            the store takes an injectable ``clock`` and defaults it to
            ``time.time``.  A wall-clock or ``loop.time()`` read
            *anywhere else* in core -- even inside a trace span body or
            an ingest coroutine -- is still a D1 error.
        max_file_bytes: Safety valve -- files larger than this are
            skipped with a diagnostic rather than parsed.
        taint_source_types: Class names whose instances are raw input
            (T1 sources).  A parameter annotated with one (directly or
            inside ``List[...]``/``Optional[...]``), or a name bound
            from its constructor, is a source object; non-benign field
            reads off it are tainted.
        taint_sanitizers: Call-name patterns (final dotted segment)
            whose return value counts as validated (T1 kills taint).
        taint_sinks: Call-name patterns (final dotted segment) that
            are verdict/report/apply sinks (tainted argument == T1).
        taint_benign_fields: Source fields exempt from tainting
            (provenance such as ``timestamp``, never verdict signal).
        blocking_calls: Dotted call names A1 flags inside ``async def``.
        cache_store_classes: Class names X1 treats as cache stores
            (every ``self.*`` structure inside them is tracked).
        cache_param_patterns: Parameter names X1 tracks as passed-in
            caches.
        cache_reset_names: Method names an except handler may call to
            satisfy the try/except-reset discipline.
        async_guard_patterns: Case-insensitive substrings of an
            ``async with`` context expression that mark a lock; state
            access under one is exempt from A2.
    """

    entity_patterns: Tuple[str, ...] = DEFAULT_ENTITY_PATTERNS
    core_dirs: FrozenSet[str] = frozenset(
        {"core", "engine", "fleet", "fuzz", "history", "obs", "stream"}
    )
    incremental_path: str = "engine/incremental.py"
    vector_path: str = "core/vector/backend.py"
    enabled_codes: FrozenSet[str] = frozenset()
    wall_clock_allowed: FrozenSet[str] = frozenset(
        {"time.perf_counter", "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns"}
    )
    clock_seam_paths: FrozenSet[str] = frozenset(
        {"obs/clock.py", "history/store.py"}
    )
    max_file_bytes: int = 2_000_000
    taint_source_types: FrozenSet[str] = DEFAULT_TAINT_SOURCE_TYPES
    taint_sanitizers: Tuple[str, ...] = DEFAULT_TAINT_SANITIZERS
    taint_sinks: Tuple[str, ...] = DEFAULT_TAINT_SINKS
    taint_benign_fields: FrozenSet[str] = DEFAULT_TAINT_BENIGN_FIELDS
    blocking_calls: FrozenSet[str] = DEFAULT_BLOCKING_CALLS
    cache_store_classes: FrozenSet[str] = DEFAULT_CACHE_STORE_CLASSES
    cache_param_patterns: Tuple[str, ...] = DEFAULT_CACHE_PARAM_PATTERNS
    cache_reset_names: FrozenSet[str] = DEFAULT_CACHE_RESET_NAMES
    async_guard_patterns: Tuple[str, ...] = DEFAULT_ASYNC_GUARD_PATTERNS
    _compiled: Tuple[Pattern[str], ...] = field(init=False, repr=False, compare=False, default=())
    _sanitizers: Tuple[Pattern[str], ...] = field(init=False, repr=False, compare=False, default=())
    _sinks: Tuple[Pattern[str], ...] = field(init=False, repr=False, compare=False, default=())
    _cache_params: Tuple[Pattern[str], ...] = field(init=False, repr=False, compare=False, default=())

    def __post_init__(self) -> None:
        compile_all = lambda patterns: tuple(re.compile(p) for p in patterns)  # noqa: E731
        object.__setattr__(self, "_compiled", compile_all(self.entity_patterns))
        object.__setattr__(self, "_sanitizers", compile_all(self.taint_sanitizers))
        object.__setattr__(self, "_sinks", compile_all(self.taint_sinks))
        object.__setattr__(self, "_cache_params", compile_all(self.cache_param_patterns))

    def is_entity_function(self, name: str) -> bool:
        """Does ``name`` fall under the per-entity purity contract?"""
        return any(pattern.match(name) for pattern in self._compiled)

    def is_core_path(self, relpath: str) -> bool:
        """Is this module part of the pipeline core (P2/D1/F1 scope)?"""
        return any(part in self.core_dirs for part in relpath.split("/")[:-1])

    def rule_enabled(self, code: str) -> bool:
        return not self.enabled_codes or code in self.enabled_codes

    # -- taint manifests (T1) ------------------------------------------

    def is_source_type(self, name: str) -> bool:
        return name in self.taint_source_types

    def is_sanitizer(self, name: str) -> bool:
        """Does this terminal call-name segment validate its input?"""
        return any(pattern.match(name) for pattern in self._sanitizers)

    def is_sink(self, name: str) -> bool:
        """Is this terminal call-name segment a verdict/report sink?"""
        return any(pattern.match(name) for pattern in self._sinks)

    def is_benign_field(self, name: str) -> bool:
        return name in self.taint_benign_fields

    # -- cache-store manifests (X1) ------------------------------------

    def is_cache_param(self, name: str) -> bool:
        return any(pattern.search(name) for pattern in self._cache_params)

    # -- async guards (A2) ---------------------------------------------

    def is_async_guard(self, dotted: str) -> bool:
        lowered = dotted.lower()
        return any(fragment in lowered for fragment in self.async_guard_patterns)

    # -- cache keying --------------------------------------------------

    def fingerprint(self) -> str:
        """Stable hash of every manifest (keys the incremental cache).

        Frozenset repr order varies with the hash seed, so the
        canonical form sorts every collection field explicitly.
        """
        import hashlib
        import json

        canonical = {
            "entity_patterns": list(self.entity_patterns),
            "core_dirs": sorted(self.core_dirs),
            "incremental_path": self.incremental_path,
            "vector_path": self.vector_path,
            "enabled_codes": sorted(self.enabled_codes),
            "wall_clock_allowed": sorted(self.wall_clock_allowed),
            "clock_seam_paths": sorted(self.clock_seam_paths),
            "max_file_bytes": self.max_file_bytes,
            "taint_source_types": sorted(self.taint_source_types),
            "taint_sanitizers": list(self.taint_sanitizers),
            "taint_sinks": list(self.taint_sinks),
            "taint_benign_fields": sorted(self.taint_benign_fields),
            "blocking_calls": sorted(self.blocking_calls),
            "cache_store_classes": sorted(self.cache_store_classes),
            "cache_param_patterns": list(self.cache_param_patterns),
            "cache_reset_names": sorted(self.cache_reset_names),
            "async_guard_patterns": list(self.async_guard_patterns),
        }
        payload = json.dumps(canonical, sort_keys=True).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()
