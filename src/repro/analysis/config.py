"""Configuration for the lint run.

Everything the rules key off -- which directories count as pipeline
"core", which function names are per-entity units, where the
incremental registry lives -- is data here, not constants buried in
rule code.  The self-tests point a :class:`LintConfig` at fixture
trees to exercise every rule against known-good and known-bad code
without touching the live tree.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import FrozenSet, Pattern, Tuple

__all__ = ["LintConfig", "DEFAULT_ENTITY_PATTERNS"]

#: Function-name patterns that mark a per-entity unit or in-place
#: stage function subject to the P1 purity contract.
DEFAULT_ENTITY_PATTERNS: Tuple[str, ...] = (
    r"^collect_\w+_entity$",
    r"^harden_\w+_entity$",
    r"^check_\w+_entity$",
    r"^repair_flows$",
)


@dataclass(frozen=True)
class LintConfig:
    """Tunables for one lint run.

    Attributes:
        entity_patterns: Regexes naming the functions P1 holds to the
            no-argument-mutation contract (and C1 treats as registry
            members).
        core_dirs: Directory names whose modules count as pipeline
            core for P2/D1/F1 (any path component match).  The
            observability layer (``obs``) is included: spans and
            metrics run inside every stage, so hidden state or
            wall-clock reads there corrupt replay just as surely.
            The streaming ingestion layer (``stream``) is included for
            the same reason: feeds, the epoch assembler and the ingest
            pipeline sit upstream of every validation verdict.  The
            scenario fuzzer (``fuzz``) is included because its whole
            value rests on a case seed regenerating the exact case:
            global RNG, wall-clock reads or unordered iteration there
            would make reproducers unreplayable.
        incremental_path: POSIX-relative path (from the lint root) of
            the module that must wire every per-entity unit (C1).
        vector_path: POSIX-relative path (from the lint root) of the
            array-compiled backend module.  C1 extends to three-way
            parity: every per-entity unit must also be accounted for
            there -- dispatched on the exceptional path, or named in
            the module's replacement manifest (its docstring) where
            the unit is replicated as array math.  Missing module ==
            vacuously satisfied, so fixture trees without a vector
            backend stay clean.
        enabled_codes: Rule codes to run; empty means all.
        wall_clock_allowed: Dotted call names exempt from the D1
            wall-clock check.  ``perf_counter``/``monotonic`` feed
            stage *timings* (EngineStats), never verdicts, so they are
            allowed by default; ``time.time`` and friends are not.
        clock_seam_paths: POSIX-relative module paths (from the lint
            root) permitted to read host clocks directly.  This is the
            clock-injection seam: ``obs/clock.py`` wraps the one
            sanctioned ``time.time()`` call (the display-only trace
            anchor) and the one sanctioned asyncio event-loop clock
            read (``event_loop_time``) so every other module gets its
            clock injected.  A wall-clock or ``loop.time()`` read
            *anywhere else* in core -- even inside a trace span body or
            an ingest coroutine -- is still a D1 error.
        max_file_bytes: Safety valve -- files larger than this are
            skipped with a diagnostic rather than parsed.
    """

    entity_patterns: Tuple[str, ...] = DEFAULT_ENTITY_PATTERNS
    core_dirs: FrozenSet[str] = frozenset({"core", "engine", "fuzz", "obs", "stream"})
    incremental_path: str = "engine/incremental.py"
    vector_path: str = "core/vector/backend.py"
    enabled_codes: FrozenSet[str] = frozenset()
    wall_clock_allowed: FrozenSet[str] = frozenset(
        {"time.perf_counter", "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns"}
    )
    clock_seam_paths: FrozenSet[str] = frozenset({"obs/clock.py"})
    max_file_bytes: int = 2_000_000
    _compiled: Tuple[Pattern[str], ...] = field(init=False, repr=False, compare=False, default=())

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_compiled",
            tuple(re.compile(pattern) for pattern in self.entity_patterns),
        )

    def is_entity_function(self, name: str) -> bool:
        """Does ``name`` fall under the per-entity purity contract?"""
        return any(pattern.match(name) for pattern in self._compiled)

    def is_core_path(self, relpath: str) -> bool:
        """Is this module part of the pipeline core (P2/D1/F1 scope)?"""
        return any(part in self.core_dirs for part in relpath.split("/")[:-1])

    def rule_enabled(self, code: str) -> bool:
        return not self.enabled_codes or code in self.enabled_codes
