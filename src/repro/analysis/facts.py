"""Per-file facts the cross-file rules need, in serializable form.

F1 (float equality) and C1 (registry parity) are the two rules whose
verdict on file A depends on file B.  The incremental runner therefore
cannot simply skip unchanged files -- unless the cross-file inputs
those rules consume are themselves cached.  :class:`ModuleFacts` is
that cacheable projection: a pure function of one file's content and
the :class:`~repro.analysis.config.LintConfig`, small enough to store
per file, rich enough to rebuild the
:class:`~repro.analysis.rules.ProjectIndex` and run the parity checks
without the tree.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.config import LintConfig
from repro.analysis.rules import (
    ModuleUnderLint,
    _annassign_attr_name,
    _is_float_annotation,
)

__all__ = ["ModuleFacts", "extract_facts"]

_WORD_RE = re.compile(r"\w+")


@dataclass
class ModuleFacts:
    """Everything cross-file rules need to know about one module.

    Attributes:
        relpath: POSIX path from the lint root.
        float_returns: Function names annotated ``-> float``-ish.
        float_attrs: Attribute names annotated float-ish.
        other_attrs: Attribute names annotated as anything else (they
            veto ``float_attrs`` project-wide).
        entity_defs: ``(name, line, col)`` of entity-pattern function
            definitions, first occurrence per name, AST walk order.
        entity_refs: ``(name, line, col)`` of entity-pattern
            Name/Attribute references, first occurrence per name.
        entity_words: Entity-pattern words occurring anywhere in the
            raw source text (C1's vector-manifest check is textual:
            docstring mentions count).
    """

    relpath: str
    float_returns: List[str] = field(default_factory=list)
    float_attrs: List[str] = field(default_factory=list)
    other_attrs: List[str] = field(default_factory=list)
    entity_defs: List[Tuple[str, int, int]] = field(default_factory=list)
    entity_refs: List[Tuple[str, int, int]] = field(default_factory=list)
    entity_words: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "relpath": self.relpath,
            "float_returns": self.float_returns,
            "float_attrs": self.float_attrs,
            "other_attrs": self.other_attrs,
            "entity_defs": [list(entry) for entry in self.entity_defs],
            "entity_refs": [list(entry) for entry in self.entity_refs],
            "entity_words": self.entity_words,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ModuleFacts":
        return cls(
            relpath=str(payload["relpath"]),
            float_returns=list(payload["float_returns"]),  # type: ignore[arg-type]
            float_attrs=list(payload["float_attrs"]),  # type: ignore[arg-type]
            other_attrs=list(payload["other_attrs"]),  # type: ignore[arg-type]
            entity_defs=[
                (str(name), int(line), int(col))
                for name, line, col in payload["entity_defs"]  # type: ignore[union-attr]
            ],
            entity_refs=[
                (str(name), int(line), int(col))
                for name, line, col in payload["entity_refs"]  # type: ignore[union-attr]
            ],
            entity_words=list(payload["entity_words"]),  # type: ignore[arg-type]
        )


def extract_facts(module: ModuleUnderLint, config: LintConfig) -> ModuleFacts:
    """Project one parsed module down to its cross-file facts."""
    facts = ModuleFacts(relpath=module.relpath)
    returns: List[str] = []
    float_attrs: List[str] = []
    other_attrs: List[str] = []
    defs_seen: Dict[str, bool] = {}
    refs_seen: Dict[str, bool] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.returns is not None and _is_float_annotation(node.returns):
                returns.append(node.name)
            if config.is_entity_function(node.name) and node.name not in defs_seen:
                defs_seen[node.name] = True
                facts.entity_defs.append((node.name, node.lineno, node.col_offset))
        elif isinstance(node, ast.AnnAssign):
            attr = _annassign_attr_name(node)
            if attr is not None:
                if _is_float_annotation(node.annotation):
                    float_attrs.append(attr)
                else:
                    other_attrs.append(attr)
        name = None
        if isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Name):
            name = node.id
        if name is not None and config.is_entity_function(name) and name not in refs_seen:
            refs_seen[name] = True
            facts.entity_refs.append((name, node.lineno, node.col_offset))
    facts.float_returns = sorted(set(returns))
    facts.float_attrs = sorted(set(float_attrs))
    facts.other_attrs = sorted(set(other_attrs))
    facts.entity_words = sorted(
        {
            word
            for word in _WORD_RE.findall(module.source)
            if config.is_entity_function(word)
        }
    )
    return facts
