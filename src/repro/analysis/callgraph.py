"""Project-wide call graph: qualified names, import aliasing, dispatch.

The interprocedural rules (T1 in :mod:`repro.analysis.taint`) need one
answer the per-file rules never did: *which function does this call
reach?*  This module builds that answer in two serializable stages so
the incremental lint cache can keep both:

1. **Declarations** (:func:`extract_decls`, per module, pure function
   of the file's content): every function/method with its
   module-qualified name (``core/units.py::Harden.harden_link``), the
   import alias map, and the class -> method table.
2. **Linking** (:class:`CallGraph`): given every module's
   declarations, resolve a call descriptor recorded at a call site to
   a definition.  Resolution tries, in order:

   - ``self.m(...)`` / ``cls.m(...)`` -> method ``m`` of the
     enclosing class;
   - a bare name -> a top-level function of the calling module;
   - an import-resolved dotted path (``repro.core.units.fn`` or
     ``pkg.mod.Class.method``) -> the module whose relpath matches a
     suffix of the dotted module (leading package segments the lint
     root cannot see are dropped one at a time);
   - a receiver annotated with a known class (``checker:
     LinkChecker`` -> ``checker.check(...)``) -> that class's method;
   - a method name defined by exactly **one** known class (unique
     dispatch) -> that method, unless the name is a container-protocol
     name (``get``, ``update``, ...) that would misfire on dicts.

   Anything unresolved stays ``None`` -- the taint engine treats
   unknown calls as taint *breaks*, so imprecision here can only hide
   flows, never invent them.

The declaration tables also expose a **skeleton fingerprint** (imports
plus def/class shape); the incremental runner re-links the graph only
when it changes, reusing the cached resolution map otherwise.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.purity import ALIAS_METHODS, MUTATING_METHODS

__all__ = ["FunctionDecl", "ModuleDecls", "CallGraph", "extract_decls"]

#: Method names resolution refuses to dispatch uniquely: they collide
#: with container/protocol methods, so ``x.get(...)`` must never
#: resolve to some class's ``get`` just because one exists.
_PROTOCOL_NAMES = frozenset(
    {"get", "items", "keys", "values", "copy", "close", "read", "run", "send", "put"}
) | MUTATING_METHODS | ALIAS_METHODS


@dataclass(frozen=True)
class FunctionDecl:
    """One function/method definition, module-qualified."""

    qualname: str  # "core/units.py::Class.method"
    relpath: str
    name: str
    cls: Optional[str]
    line: int
    col: int
    is_async: bool
    params: Tuple[str, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "relpath": self.relpath,
            "name": self.name,
            "cls": self.cls,
            "line": self.line,
            "col": self.col,
            "is_async": self.is_async,
            "params": list(self.params),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FunctionDecl":
        return cls(
            qualname=str(payload["qualname"]),
            relpath=str(payload["relpath"]),
            name=str(payload["name"]),
            cls=payload["cls"] if payload["cls"] is None else str(payload["cls"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            col=int(payload["col"]),  # type: ignore[arg-type]
            is_async=bool(payload["is_async"]),
            params=tuple(payload["params"]),  # type: ignore[arg-type]
        )


@dataclass
class ModuleDecls:
    """Declaration tables for one module (serializable, content-pure)."""

    relpath: str
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionDecl] = field(default_factory=dict)
    toplevel: Dict[str, str] = field(default_factory=dict)  # name -> qualname
    classes: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def skeleton(self) -> Dict[str, object]:
        """The import/def shape linking depends on (fingerprint input)."""
        return {
            "relpath": self.relpath,
            "imports": dict(sorted(self.imports.items())),
            "toplevel": dict(sorted(self.toplevel.items())),
            "classes": {
                cls: dict(sorted(methods.items()))
                for cls, methods in sorted(self.classes.items())
            },
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "relpath": self.relpath,
            "imports": self.imports,
            "toplevel": self.toplevel,
            "classes": self.classes,
            "functions": {q: decl.to_dict() for q, decl in self.functions.items()},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ModuleDecls":
        return cls(
            relpath=str(payload["relpath"]),
            imports=dict(payload["imports"]),  # type: ignore[arg-type]
            toplevel=dict(payload["toplevel"]),  # type: ignore[arg-type]
            classes={
                name: dict(methods)
                for name, methods in payload["classes"].items()  # type: ignore[union-attr]
            },
            functions={
                q: FunctionDecl.from_dict(entry)
                for q, entry in payload["functions"].items()  # type: ignore[union-attr]
            },
        )


def _import_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted origin for every import in the module."""
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                mapping[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return mapping


def _param_names(node: ast.AST) -> Tuple[str, ...]:
    args = node.args
    names = [a.arg for a in list(args.posonlyargs) + list(args.args)]
    if args.vararg:
        names.append(args.vararg.arg)
    names.extend(a.arg for a in args.kwonlyargs)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return tuple(names)


def extract_decls(relpath: str, tree: ast.Module) -> ModuleDecls:
    """Build the declaration tables for one parsed module."""
    decls = ModuleDecls(relpath=relpath, imports=_import_map(tree))

    def visit(body: List[ast.stmt], stack: Tuple[str, ...], in_class: Optional[str]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = "::".join((relpath, ".".join(stack + (node.name,))))
                decls.functions[qual] = FunctionDecl(
                    qualname=qual,
                    relpath=relpath,
                    name=node.name,
                    cls=in_class,
                    line=node.lineno,
                    col=node.col_offset,
                    is_async=isinstance(node, ast.AsyncFunctionDef),
                    params=_param_names(node),
                )
                if not stack:
                    decls.toplevel.setdefault(node.name, qual)
                if in_class is not None and len(stack) == 1:
                    decls.classes[in_class].setdefault(node.name, qual)
                # Nested defs are declared (A-rules see them) but are
                # not bare-name resolution targets outside their scope.
                visit(node.body, stack + (node.name,), None)
            elif isinstance(node, ast.ClassDef):
                if not stack:
                    decls.classes.setdefault(node.name, {})
                visit(node.body, stack + (node.name,), node.name if not stack else None)
    visit(tree.body, (), None)
    return decls


class CallGraph:
    """Project-wide resolver over every module's declaration tables."""

    def __init__(self, modules: List[ModuleDecls]) -> None:
        self._by_relpath: Dict[str, ModuleDecls] = {m.relpath: m for m in modules}
        # "core.units" -> "core/units.py" for dotted-path resolution.
        self._module_by_dotted: Dict[str, str] = {}
        # class name -> (relpath holding it); first definition wins,
        # in sorted relpath order for determinism.
        self._class_home: Dict[str, str] = {}
        # method name -> sorted qualnames across all classes.
        self._methods: Dict[str, List[str]] = {}
        for decls in sorted(modules, key=lambda m: m.relpath):
            dotted = decls.relpath[:-3].replace("/", ".")
            if dotted.endswith(".__init__"):
                dotted = dotted[: -len(".__init__")]
            self._module_by_dotted.setdefault(dotted, decls.relpath)
            for cls, methods in sorted(decls.classes.items()):
                self._class_home.setdefault(cls, decls.relpath)
                for name, qual in sorted(methods.items()):
                    self._methods.setdefault(name, []).append(qual)

    # ------------------------------------------------------------------

    @staticmethod
    def skeleton_fingerprint(modules: List[ModuleDecls]) -> str:
        """Hash of every module's import/def shape; keys link reuse."""
        shape = [m.skeleton() for m in sorted(modules, key=lambda m: m.relpath)]
        payload = json.dumps(shape, sort_keys=True).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def function(self, qualname: str) -> Optional[FunctionDecl]:
        relpath = qualname.split("::", 1)[0]
        module = self._by_relpath.get(relpath)
        return module.functions.get(qualname) if module else None

    def class_method(self, cls: str, method: str) -> Optional[str]:
        home = self._class_home.get(cls)
        if home is None:
            return None
        return self._by_relpath[home].classes.get(cls, {}).get(method)

    # ------------------------------------------------------------------

    def resolve(
        self,
        caller: FunctionDecl,
        display: Optional[str],
        resolved: Optional[str],
        recv_type: Optional[str],
    ) -> Optional[Tuple[str, bool]]:
        """Resolve one call site to ``(callee_qualname, bound)``.

        ``display`` is the dotted call target as written;
        ``resolved`` the same with its head import-resolved;
        ``recv_type`` the annotated class of the receiver variable,
        when the extractor knew one.  ``bound`` is True when the call
        goes through an instance receiver, so the callee's leading
        ``self``/``cls`` parameter is skipped during argument mapping.
        """
        if display is None:
            return None
        head, _, rest = display.partition(".")

        # self.m(...) / cls.m(...) inside a class body.
        if head in ("self", "cls") and rest and "." not in rest and caller.cls:
            qual = self.class_method(caller.cls, rest)
            if qual is not None:
                return qual, True

        # Bare, un-imported name -> top-level function of the calling
        # module (an imported name resolves through its dotted origin).
        if not rest and "." not in (resolved or display):
            module = self._by_relpath.get(caller.relpath)
            if module is not None:
                qual = module.toplevel.get(display)
                if qual is not None:
                    return qual, False

        # Import-resolved dotted path: pkg.mod.fn / pkg.mod.Cls.m.
        dotted = resolved or display
        if "." in dotted:
            hit = self._resolve_dotted(dotted)
            if hit is not None:
                return hit

        # Receiver with a known annotated class.
        if recv_type is not None and rest and "." not in rest:
            qual = self.class_method(recv_type, rest)
            if qual is not None:
                return qual, True

        # Unique method dispatch: x.m(...) where exactly one known
        # class defines m and m is not a container-protocol name.
        if rest:
            method = display.rsplit(".", 1)[1]
            if method not in _PROTOCOL_NAMES:
                candidates = self._methods.get(method, [])
                if len(candidates) == 1:
                    return candidates[0], True
        return None

    def _resolve_dotted(self, dotted: str) -> Optional[Tuple[str, bool]]:
        """Match a dotted path to ``module::fn`` or ``module::Cls.m``.

        The lint root sees ``core/units.py`` while imports say
        ``repro.core.units.fn``; leading segments invisible to the
        root are dropped one at a time until a module matches.
        """
        parts = dotted.split(".")
        for start in range(len(parts) - 1):
            # module + function
            modkey = ".".join(parts[start:-1])
            relpath = self._module_by_dotted.get(modkey)
            if relpath is not None:
                module = self._by_relpath[relpath]
                qual = module.toplevel.get(parts[-1])
                if qual is not None:
                    return qual, False
                qual = module.classes.get(parts[-1], {}).get("__init__")
                if qual is not None:
                    return qual, False
            # module + class + method
            if len(parts) - start >= 3:
                modkey = ".".join(parts[start:-2])
                relpath = self._module_by_dotted.get(modkey)
                if relpath is not None:
                    qual = self._by_relpath[relpath].classes.get(parts[-2], {}).get(parts[-1])
                    if qual is not None:
                        return qual, True
        return None
