"""Verdict provenance: *why* a controller input was flagged.

A :class:`VerdictProvenance` record accompanies each per-input verdict
in a :class:`~repro.core.report.ValidationReport`.  For every violated
invariant it names the invariant (``demand/row-sum/<node>``,
``topology/live-iff-up/<link>``, ``drain/node-consistent/<node>``,
...), resolves the hardened signals that fed the comparison, and
classifies each signal's disposition -- ``raw`` (single vantage
point), ``confirmed`` (independent vantage points agreed, R1),
``repaired`` (recovered via conservation/alternative signals, R2/R3),
or ``unknown`` -- together with its confidence level and provenance
source string.  It also lists which paper redundancies (R1..R4) the
hardening findings implicated for the same entities, closing the loop
from verdict back to raw telemetry.

Provenance derives deterministically from the
(:class:`~repro.core.invariants.CheckResult`,
:class:`~repro.core.signals.HardenedState`) pair, so the engine's
differential harness needs no changes: identical reports imply
identical provenance.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from types import MappingProxyType
from typing import Dict, List, Optional, Tuple

from repro.core.invariants import CheckResult, InvariantResult
from repro.core.signals import (
    Confidence,
    Finding,
    HardenedDrain,
    HardenedLinkStatus,
    HardenedState,
    HardenedValue,
)

__all__ = [
    "SignalProvenance",
    "FiredInvariant",
    "VerdictProvenance",
    "build_provenance",
]

#: Confidence level -> signal disposition, per the paper's redundancy
#: ladder (corroborated beats repaired beats single-source).
DISPOSITIONS = MappingProxyType(
    {
        Confidence.CORROBORATED: "confirmed",
        Confidence.REPAIRED: "repaired",
        Confidence.REPORTED: "raw",
        Confidence.UNKNOWN: "unknown",
    }
)

_SUBJECT_TOKEN_RE = re.compile(r"[^\w.-]+")
_WORD_SPLIT_RE = re.compile(r"[^\w]+")


@dataclass(frozen=True)
class SignalProvenance:
    """One hardened signal that fed a fired invariant.

    Attributes:
        signal: Which hardened entry, e.g. ``"ext_in/atla"`` or
            ``"links/atla-chic"``.
        disposition: ``raw`` / ``confirmed`` / ``repaired`` /
            ``unknown``.
        confidence: The hardened confidence or verdict value backing
            the disposition (e.g. ``"corroborated"``, ``"up"``,
            ``"drained"``).
        source: The hardened entry's own provenance note or joined
            evidence strings.
    """

    signal: str
    disposition: str
    confidence: str
    source: str

    def to_dict(self) -> Dict[str, str]:
        return {
            "signal": self.signal,
            "disposition": self.disposition,
            "confidence": self.confidence,
            "source": self.source,
        }


@dataclass(frozen=True)
class FiredInvariant:
    """One violated invariant with its contributing signals."""

    name: str
    kind: str
    entity: str
    description: str
    error: Optional[float]
    signals: Tuple[SignalProvenance, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "entity": self.entity,
            "description": self.description,
            "error": self.error,
            "signals": [signal.to_dict() for signal in self.signals],
        }


@dataclass(frozen=True)
class VerdictProvenance:
    """Provenance record for one input verdict.

    ``fired`` is empty exactly when the verdict is valid;
    ``redundancies`` lists the paper redundancy codes (``R1``..``R4``)
    of hardening findings about the same entities as the fired
    invariants.
    """

    input_name: str
    valid: bool
    num_violations: int
    num_evaluated: int
    fired: Tuple[FiredInvariant, ...]
    redundancies: Tuple[str, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "input": self.input_name,
            "valid": self.valid,
            "num_violations": self.num_violations,
            "num_evaluated": self.num_evaluated,
            "fired": [invariant.to_dict() for invariant in self.fired],
            "redundancies": list(self.redundancies),
        }

    def describe(self) -> str:
        """One line per fired invariant, for the trace CLI."""
        if self.valid:
            return f"{self.input_name}: valid"
        lines = [
            f"{self.input_name}: {self.num_violations} violations / "
            f"{self.num_evaluated} invariants"
            + (f"  [{', '.join(self.redundancies)}]" if self.redundancies else "")
        ]
        for invariant in self.fired:
            via = ", ".join(
                f"{signal.signal} ({signal.disposition}@{signal.confidence})"
                for signal in invariant.signals
            )
            error = "" if invariant.error is None else f" err={invariant.error:.2%}"
            lines.append(f"  {invariant.name}{error} via {via or 'no hardened signal'}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------


def _split_name(name: str) -> Tuple[str, str]:
    """``demand/row-sum/atla`` -> (``demand/row-sum``, ``atla``)."""
    parts = name.split("/")
    if len(parts) < 2:
        return name, ""
    return "/".join(parts[:2]), "/".join(parts[2:])


def _scalar(signal: str, value: Optional[HardenedValue]) -> SignalProvenance:
    if value is None:
        return SignalProvenance(signal, "unknown", "unknown", "absent from hardened state")
    return SignalProvenance(
        signal,
        DISPOSITIONS[value.confidence],
        value.confidence.value,
        value.source,
    )


def _link(signal: str, status: Optional[HardenedLinkStatus]) -> SignalProvenance:
    if status is None:
        return SignalProvenance(signal, "unknown", "unknown", "absent from hardened state")
    # Links have no Confidence ladder; two or more independent evidence
    # notes means the verdict was cross-checked (R1/R3/R4), one means a
    # single vantage point.
    disposition = "confirmed" if len(status.evidence) >= 2 else "raw"
    return SignalProvenance(signal, disposition, status.verdict.value, "; ".join(status.evidence))


def _drain(signal: str, drain: Optional[HardenedDrain]) -> SignalProvenance:
    if drain is None:
        return SignalProvenance(signal, "unknown", "unknown", "absent from hardened state")
    disposition = "confirmed" if len(drain.evidence) >= 2 else "raw"
    return SignalProvenance(signal, disposition, drain.verdict.value, "; ".join(drain.evidence))


def _resolve_signals(kind: str, entity: str, hardened: HardenedState) -> Tuple[SignalProvenance, ...]:
    """Map an invariant kind + entity onto the hardened entries it read."""
    if kind == "demand/row-sum":
        return (_scalar(f"ext_in/{entity}", hardened.ext_in.get(entity)),)
    if kind == "demand/col-sum":
        return (_scalar(f"ext_out/{entity}", hardened.ext_out.get(entity)),)
    if kind.startswith("topology/"):
        return (_link(f"links/{entity}", hardened.links.get(entity)),)
    if kind.startswith("drain/node"):
        return (_drain(f"node_drains/{entity}", hardened.node_drains.get(entity)),)
    if kind == "drain/reason-supported":
        return (_drain(f"node_drains/{entity}", hardened.node_drains.get(entity)),)
    if kind.startswith("drain/link"):
        return (_drain(f"link_drains/{entity}", hardened.link_drains.get(entity)),)
    return ()


def _subject_tokens(subject: str) -> frozenset:
    """Tokens of a finding subject, at link and node granularity.

    ``"atla-chic"`` yields ``{"atla-chic", "atla", "chic"}`` so a
    row-sum invariant on node ``atla`` matches a link-level finding.
    """
    tokens = set()
    for token in _SUBJECT_TOKEN_RE.split(subject):
        if token:
            tokens.add(token)
            for word in _WORD_SPLIT_RE.split(token):
                if word:
                    tokens.add(word)
    return frozenset(tokens)


def _implicated_redundancies(
    findings: List[Finding], fired: Tuple[FiredInvariant, ...]
) -> Tuple[str, ...]:
    """R-codes of hardening findings about the fired invariants' entities."""
    if not fired:
        return ()
    entities = set()
    for invariant in fired:
        for word in _WORD_SPLIT_RE.split(invariant.entity):
            if word:
                entities.add(word)
        if invariant.entity:
            entities.add(invariant.entity)
    codes = set()
    for finding in findings:
        if not finding.redundancy:
            continue
        if entities & _subject_tokens(finding.subject):
            codes.add(finding.redundancy)
    return tuple(sorted(codes))


def build_provenance(
    check: CheckResult,
    hardened: HardenedState,
    violations: Optional[List[InvariantResult]] = None,
) -> VerdictProvenance:
    """Derive the provenance record for one input's check result.

    ``violations`` may be passed when the caller already computed
    ``check.violations`` (the pipeline does, for the verdict); it must
    equal ``check.violations``.
    """
    if violations is None:
        violations = check.violations
    fired: List[FiredInvariant] = []
    for result in violations:
        invariant = result.invariant
        kind, entity = _split_name(invariant.name)
        fired.append(
            FiredInvariant(
                name=invariant.name,
                kind=kind,
                entity=entity,
                description=invariant.description,
                error=result.error,
                signals=_resolve_signals(kind, entity, hardened),
            )
        )
    return VerdictProvenance(
        input_name=check.input_name,
        valid=not fired,
        num_violations=len(fired),
        num_evaluated=check.num_evaluated,
        fired=tuple(fired),
        redundancies=_implicated_redundancies(hardened.findings, tuple(fired)),
    )
