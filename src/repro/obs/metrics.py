"""Minimal Prometheus-style metrics primitives.

:class:`MetricsRegistry` owns named metric families --
:class:`Counter`, :class:`Gauge`, and :class:`Histogram` (fixed
buckets, tuned for epoch/stage latency) -- and renders them in the
Prometheus text exposition format, ``# HELP``/``# TYPE`` lines
included.  No client library is required or used.

Families may carry labels::

    h = registry.histogram(
        "engine_stage_latency_seconds", "Per-stage latency.", labels=("stage",)
    )
    h.labels(stage="collect").observe(0.004)

Two write modes coexist deliberately:

* live instrumentation (``inc``/``observe``) -- the engine's
  histograms accumulate as epochs run;
* snapshot export (``set_to``) -- :func:`repro.control.metrics.engine_registry`
  projects an :class:`~repro.engine.stats.EngineStats` snapshot into
  counter/gauge families, and ``set_to`` keeps that projection
  idempotent when re-run on a shared registry.
"""

from __future__ import annotations

import bisect
import math
import re
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "parse_exposition",
]

#: Upper bounds (seconds) for latency histograms; +Inf is implicit.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Prometheus sample value: shortest round-trip representation,
    with integral floats rendered without a decimal point and the
    exposition format's spellings for the special values (``repr``
    would emit ``inf``/``nan``, which Prometheus rejects)."""
    as_float = float(value)
    if math.isinf(as_float):
        return "+Inf" if as_float > 0 else "-Inf"
    if math.isnan(as_float):
        return "NaN"
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)


def _unescape_label_value(value: str) -> str:
    """Inverse of :func:`_escape_label_value` (single left-to-right
    pass, so ``\\\\n`` decodes to backslash-n, not newline)."""
    out: List[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            if nxt == "n":
                out.append("\n")
                index += 2
                continue
            if nxt in ("\\", '"'):
                out.append(nxt)
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)


def _render_labels(pairs: Sequence[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0.0:
            raise ValueError(f"counters only go up (inc by {amount!r})")
        self.value += amount

    def set_to(self, value: float) -> None:
        """Snapshot-export hook: overwrite with an absolute value."""
        if value < 0.0:
            raise ValueError(f"counter value must be >= 0 (got {value!r})")
        self.value = float(value)

    def merge_from(self, other: "_CounterChild") -> None:
        self.value += other.value


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    set_to = set

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def merge_from(self, other: "_GaugeChild") -> None:
        # Gauges are point-in-time readings: the merged-in (newer)
        # snapshot wins rather than summing two absolute levels.
        self.value = other.value


class _HistogramChild:
    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        #: One slot per finite bound plus +Inf, non-cumulative.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> List[int]:
        out: List[int] = []
        running = 0
        for count in self.bucket_counts:
            running += count
            out.append(running)
        return out

    def merge_from(self, other: "_HistogramChild") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.bounds} vs {other.bounds}"
            )
        for index, count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += count
        self.sum += other.sum
        self.count += other.count


class _Family:
    """Shared family behaviour: label handling and child storage."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, label_names: Tuple[str, ...]) -> None:
        self.name = _check_name(name)
        self.help = help_text
        for label in label_names:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name: {label!r}")
        self.label_names = label_names
        self._children: Dict[Tuple[str, ...], object] = {}

    def _new_child(self) -> object:
        raise NotImplementedError

    def labels(self, **labelvalues: str):
        if set(labelvalues) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {sorted(self.label_names)}, "
                f"got {sorted(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._new_child()
        return child

    def _sorted_children(self) -> List[Tuple[Tuple[str, ...], object]]:
        return sorted(self._children.items())

    def _label_pairs(self, key: Tuple[str, ...]) -> List[Tuple[str, str]]:
        return list(zip(self.label_names, key))

    def _require_unlabelled(self, op: str):
        if self.label_names:
            raise ValueError(f"{self.name} has labels; use .labels(...).{op}")
        return self.labels()

    def merge_from(self, other: "_Family") -> None:
        """Fold another family's children into this one, per label set.

        Counters add, gauges take the incoming reading, histograms add
        bucket-wise (same bounds required).  The other family must have
        the same kind and label names -- the registry checks before
        delegating here.
        """
        for key, child in other._sorted_children():
            self._children.setdefault(key, self._new_child()).merge_from(child)  # type: ignore[attr-defined]


class Counter(_Family):
    """Monotonically increasing count (snapshot export may overwrite)."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._require_unlabelled("inc").inc(amount)

    def set_to(self, value: float) -> None:
        self._require_unlabelled("set_to").set_to(value)

    @property
    def value(self) -> float:
        return self._require_unlabelled("value").value

    def samples(self) -> Iterable[Tuple[str, List[Tuple[str, str]], float]]:
        for key, child in self._sorted_children():
            yield self.name, self._label_pairs(key), child.value  # type: ignore[union-attr]


class Gauge(_Family):
    """A value that can go up and down."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._require_unlabelled("set").set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._require_unlabelled("inc").inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._require_unlabelled("dec").dec(amount)

    @property
    def value(self) -> float:
        return self._require_unlabelled("value").value

    def samples(self) -> Iterable[Tuple[str, List[Tuple[str, str]], float]]:
        for key, child in self._sorted_children():
            yield self.name, self._label_pairs(key), child.value  # type: ignore[union-attr]


class Histogram(_Family):
    """Fixed-bucket distribution (Prometheus cumulative exposition)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Tuple[str, ...] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, label_names)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be sorted ascending")
        self.bounds = bounds

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.bounds)

    def observe(self, value: float) -> None:
        self._require_unlabelled("observe").observe(value)

    def samples(self) -> Iterable[Tuple[str, List[Tuple[str, str]], float]]:
        for key, child in self._sorted_children():
            pairs = self._label_pairs(key)
            cumulative = child.cumulative_counts()  # type: ignore[union-attr]
            for bound, running in zip(self.bounds, cumulative):
                le = pairs + [("le", _format_value(bound))]
                yield f"{self.name}_bucket", le, float(running)
            yield f"{self.name}_bucket", pairs + [("le", "+Inf")], float(cumulative[-1])
            yield f"{self.name}_sum", pairs, child.sum  # type: ignore[union-attr]
            yield f"{self.name}_count", pairs, float(child.count)  # type: ignore[union-attr]


class MetricsRegistry:
    """Named metric families with Prometheus text exposition.

    Registration is idempotent: asking for an existing name returns the
    existing family, provided the kind and label set match (a mismatch
    raises, so two subsystems cannot silently share a name with
    different meanings).
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def _register(self, family: _Family) -> _Family:
        existing = self._families.get(family.name)
        if existing is None:
            self._families[family.name] = family
            return family
        if existing.kind != family.kind or existing.label_names != family.label_names:
            raise ValueError(
                f"metric {family.name!r} already registered as {existing.kind} "
                f"with labels {existing.label_names}"
            )
        return existing

    def counter(self, name: str, help_text: str, labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter(name, help_text, tuple(labels)))  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str, labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge(name, help_text, tuple(labels)))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(  # type: ignore[return-value]
            Histogram(name, help_text, tuple(labels), buckets)
        )

    def get(self, name: str) -> _Family:
        return self._families[name]

    def families(self) -> List[_Family]:
        return [self._families[name] for name in sorted(self._families)]

    def samples(self) -> List[Tuple[str, Dict[str, str], float]]:
        """Flat samples across all families (histograms expanded)."""
        out: List[Tuple[str, Dict[str, str], float]] = []
        for family in self.families():
            for name, pairs, value in family.samples():  # type: ignore[attr-defined]
                out.append((name, dict(pairs), value))
        return out

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one.

        Families present in both must agree on kind and label names
        (and bucket bounds, for histograms) -- a mismatch raises and
        leaves the conflicting family partially untouched only past the
        point of the error.  Families only in ``other`` are deep-merged
        into fresh families here, so later writes to ``other`` do not
        alias into this registry.
        """
        for family in other.families():
            if family.kind == "histogram":
                mine = self.histogram(
                    family.name, family.help, family.label_names, family.bounds  # type: ignore[attr-defined]
                )
                if mine.bounds != family.bounds:  # type: ignore[attr-defined]
                    raise ValueError(
                        f"metric {family.name!r} bucket bounds differ: "
                        f"{mine.bounds} vs {family.bounds}"  # type: ignore[attr-defined]
                    )
            elif family.kind == "counter":
                mine = self.counter(family.name, family.help, family.label_names)
            elif family.kind == "gauge":
                mine = self.gauge(family.name, family.help, family.label_names)
            else:  # pragma: no cover - no other kinds exist
                raise ValueError(f"unknown family kind {family.kind!r}")
            mine.merge_from(family)

    def render(self) -> str:
        """Prometheus text exposition format, version 0.0.4."""
        lines: List[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for name, pairs, value in family.samples():  # type: ignore[attr-defined]
                lines.append(f"{name}{_render_labels(pairs)} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())


def _parse_label_body(body: str, line: str) -> List[Tuple[str, str]]:
    """Parse the inside of ``{...}`` into ordered (name, value) pairs."""
    pairs: List[Tuple[str, str]] = []
    index = 0
    length = len(body)
    while index < length:
        eq = body.index("=", index)
        name = body[index:eq]
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name {name!r} in line {line!r}")
        if eq + 1 >= length or body[eq + 1] != '"':
            raise ValueError(f"expected quoted label value in line {line!r}")
        cursor = eq + 2
        raw: List[str] = []
        while True:
            if cursor >= length:
                raise ValueError(f"unterminated label value in line {line!r}")
            char = body[cursor]
            if char == "\\" and cursor + 1 < length:
                raw.append(body[cursor : cursor + 2])
                cursor += 2
                continue
            if char == '"':
                break
            raw.append(char)
            cursor += 1
        pairs.append((name, _unescape_label_value("".join(raw))))
        index = cursor + 1
        if index < length:
            if body[index] != ",":
                raise ValueError(f"expected ',' between labels in line {line!r}")
            index += 1
    return pairs


def parse_exposition(
    text: str,
) -> List[Tuple[str, List[Tuple[str, str]], float]]:
    """Parse Prometheus text exposition back into flat samples.

    The inverse of :meth:`MetricsRegistry.render` for the subset this
    module emits: ``# HELP``/``# TYPE`` lines are skipped, every other
    non-blank line becomes one ``(name, label_pairs, value)`` tuple
    with label values unescaped and ``+Inf``/``-Inf``/``NaN`` decoded.
    Exists so tests can assert exposition round-trips exactly.
    """
    samples: List[Tuple[str, List[Tuple[str, str]], float]] = []
    # Split on "\n" only: str.splitlines() also breaks on control
    # characters (\x1c-\x1e, \x85, ...) that are legal inside label
    # values, which would split a sample line in half.
    for line in text.split("\n"):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            open_brace = line.index("{")
            close_brace = line.rindex("}")
            name = line[:open_brace]
            pairs = _parse_label_body(line[open_brace + 1 : close_brace], line)
            value_text = line[close_brace + 1 :].strip()
        else:
            name, _, value_text = line.partition(" ")
            pairs = []
            value_text = value_text.strip()
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name in line {line!r}")
        samples.append((name, pairs, _parse_value(value_text)))
    return samples
