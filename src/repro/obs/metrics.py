"""Minimal Prometheus-style metrics primitives.

:class:`MetricsRegistry` owns named metric families --
:class:`Counter`, :class:`Gauge`, and :class:`Histogram` (fixed
buckets, tuned for epoch/stage latency) -- and renders them in the
Prometheus text exposition format, ``# HELP``/``# TYPE`` lines
included.  No client library is required or used.

Families may carry labels::

    h = registry.histogram(
        "engine_stage_latency_seconds", "Per-stage latency.", labels=("stage",)
    )
    h.labels(stage="collect").observe(0.004)

Two write modes coexist deliberately:

* live instrumentation (``inc``/``observe``) -- the engine's
  histograms accumulate as epochs run;
* snapshot export (``set_to``) -- :func:`repro.control.metrics.engine_registry`
  projects an :class:`~repro.engine.stats.EngineStats` snapshot into
  counter/gauge families, and ``set_to`` keeps that projection
  idempotent when re-run on a shared registry.
"""

from __future__ import annotations

import bisect
import re
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Upper bounds (seconds) for latency histograms; +Inf is implicit.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Prometheus sample value: shortest round-trip representation,
    with integral floats rendered without a decimal point."""
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _render_labels(pairs: Sequence[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0.0:
            raise ValueError(f"counters only go up (inc by {amount!r})")
        self.value += amount

    def set_to(self, value: float) -> None:
        """Snapshot-export hook: overwrite with an absolute value."""
        if value < 0.0:
            raise ValueError(f"counter value must be >= 0 (got {value!r})")
        self.value = float(value)


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    set_to = set

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class _HistogramChild:
    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        #: One slot per finite bound plus +Inf, non-cumulative.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> List[int]:
        out: List[int] = []
        running = 0
        for count in self.bucket_counts:
            running += count
            out.append(running)
        return out


class _Family:
    """Shared family behaviour: label handling and child storage."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, label_names: Tuple[str, ...]) -> None:
        self.name = _check_name(name)
        self.help = help_text
        for label in label_names:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name: {label!r}")
        self.label_names = label_names
        self._children: Dict[Tuple[str, ...], object] = {}

    def _new_child(self) -> object:
        raise NotImplementedError

    def labels(self, **labelvalues: str):
        if set(labelvalues) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {sorted(self.label_names)}, "
                f"got {sorted(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._new_child()
        return child

    def _sorted_children(self) -> List[Tuple[Tuple[str, ...], object]]:
        return sorted(self._children.items())

    def _label_pairs(self, key: Tuple[str, ...]) -> List[Tuple[str, str]]:
        return list(zip(self.label_names, key))

    def _require_unlabelled(self, op: str):
        if self.label_names:
            raise ValueError(f"{self.name} has labels; use .labels(...).{op}")
        return self.labels()


class Counter(_Family):
    """Monotonically increasing count (snapshot export may overwrite)."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._require_unlabelled("inc").inc(amount)

    def set_to(self, value: float) -> None:
        self._require_unlabelled("set_to").set_to(value)

    @property
    def value(self) -> float:
        return self._require_unlabelled("value").value

    def samples(self) -> Iterable[Tuple[str, List[Tuple[str, str]], float]]:
        for key, child in self._sorted_children():
            yield self.name, self._label_pairs(key), child.value  # type: ignore[union-attr]


class Gauge(_Family):
    """A value that can go up and down."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._require_unlabelled("set").set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._require_unlabelled("inc").inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._require_unlabelled("dec").dec(amount)

    @property
    def value(self) -> float:
        return self._require_unlabelled("value").value

    def samples(self) -> Iterable[Tuple[str, List[Tuple[str, str]], float]]:
        for key, child in self._sorted_children():
            yield self.name, self._label_pairs(key), child.value  # type: ignore[union-attr]


class Histogram(_Family):
    """Fixed-bucket distribution (Prometheus cumulative exposition)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Tuple[str, ...] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, label_names)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be sorted ascending")
        self.bounds = bounds

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.bounds)

    def observe(self, value: float) -> None:
        self._require_unlabelled("observe").observe(value)

    def samples(self) -> Iterable[Tuple[str, List[Tuple[str, str]], float]]:
        for key, child in self._sorted_children():
            pairs = self._label_pairs(key)
            cumulative = child.cumulative_counts()  # type: ignore[union-attr]
            for bound, running in zip(self.bounds, cumulative):
                le = pairs + [("le", _format_value(bound))]
                yield f"{self.name}_bucket", le, float(running)
            yield f"{self.name}_bucket", pairs + [("le", "+Inf")], float(cumulative[-1])
            yield f"{self.name}_sum", pairs, child.sum  # type: ignore[union-attr]
            yield f"{self.name}_count", pairs, float(child.count)  # type: ignore[union-attr]


class MetricsRegistry:
    """Named metric families with Prometheus text exposition.

    Registration is idempotent: asking for an existing name returns the
    existing family, provided the kind and label set match (a mismatch
    raises, so two subsystems cannot silently share a name with
    different meanings).
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def _register(self, family: _Family) -> _Family:
        existing = self._families.get(family.name)
        if existing is None:
            self._families[family.name] = family
            return family
        if existing.kind != family.kind or existing.label_names != family.label_names:
            raise ValueError(
                f"metric {family.name!r} already registered as {existing.kind} "
                f"with labels {existing.label_names}"
            )
        return existing

    def counter(self, name: str, help_text: str, labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter(name, help_text, tuple(labels)))  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str, labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge(name, help_text, tuple(labels)))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(  # type: ignore[return-value]
            Histogram(name, help_text, tuple(labels), buckets)
        )

    def get(self, name: str) -> _Family:
        return self._families[name]

    def families(self) -> List[_Family]:
        return [self._families[name] for name in sorted(self._families)]

    def samples(self) -> List[Tuple[str, Dict[str, str], float]]:
        """Flat samples across all families (histograms expanded)."""
        out: List[Tuple[str, Dict[str, str], float]] = []
        for family in self.families():
            for name, pairs, value in family.samples():  # type: ignore[attr-defined]
                out.append((name, dict(pairs), value))
        return out

    def render(self) -> str:
        """Prometheus text exposition format, version 0.0.4."""
        lines: List[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for name, pairs, value in family.samples():  # type: ignore[attr-defined]
                lines.append(f"{name}{_render_labels(pairs)} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())
