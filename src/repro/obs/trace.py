"""Structured tracing for the validation pipeline.

A :class:`Tracer` records a span tree per validation epoch::

    epoch #12 (mode=full)
      +- collect
      +- harden
      |    +- shard[0] slice harden.flows
      |    +- shard[1] slice harden.flows
      +- check
      *  verdict: demand (provenance instant)

Spans nest via a per-thread context stack, so instrumented code never
threads span handles through call signatures; shard workers running on
pool threads receive an explicit ``parent=`` id captured on the calling
thread.  Time comes from an injected monotonic clock
(:func:`repro.obs.clock.monotonic_clock` by default, a
:class:`~repro.obs.clock.ManualClock` in tests), which keeps hodor-lint
D1 clean and makes exports byte-stable under test.

Exports:

* :meth:`Tracer.to_chrome_trace` -- Chrome trace-event JSON (the
  ``traceEvents`` array format), loadable in Perfetto or
  ``chrome://tracing``;
* :meth:`Tracer.to_jsonl` -- a line-delimited structured event log
  (one JSON object per span/instant, with a leading meta line).

:class:`NullTracer` is the engine default: every call is a constant
no-op that allocates nothing, so the hot path pays only an attribute
check when tracing is off.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.clock import monotonic_clock, system_wall_time

__all__ = ["Span", "Tracer", "NullTracer", "TRACE_SCHEMA_VERSION"]

#: Bumped whenever the JSONL event schema changes shape.
TRACE_SCHEMA_VERSION = 1


class Span:
    """One timed region.  Created by :meth:`Tracer.span`; mutable only
    through :meth:`annotate` while open."""

    __slots__ = ("name", "category", "span_id", "parent_id", "tid", "start", "end", "args")

    def __init__(
        self,
        name: str,
        category: str,
        span_id: int,
        parent_id: Optional[int],
        tid: int,
        start: float,
    ) -> None:
        self.name = name
        self.category = category
        self.span_id = span_id
        self.parent_id = parent_id
        self.tid = tid
        self.start = start
        self.end = start
        self.args: Dict[str, Any] = {}

    def annotate(self, **kwargs: Any) -> None:
        """Attach key/value arguments to the span (shown in Perfetto)."""
        self.args.update(kwargs)

    @property
    def duration(self) -> float:
        return self.end - self.start


class _SpanContext:
    """Context manager that opens a span on enter and seals it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Collects spans and instant events for later export.

    Args:
        clock: Monotonic time source (seconds).  Defaults to
            :func:`repro.obs.clock.monotonic_clock`; pass a
            :class:`~repro.obs.clock.ManualClock` for deterministic
            tests.
        wall_anchor: Wall-clock seconds corresponding to the first
            possible reading of ``clock``, recorded in export metadata.
            Defaults to the system wall clock for the real clock and to
            ``0.0`` when a custom clock is injected (so manual-clock
            exports stay byte-identical across runs).
    """

    enabled = True

    def __init__(self, clock=None, wall_anchor: Optional[float] = None) -> None:
        if wall_anchor is None:
            wall_anchor = system_wall_time() if clock is None else 0.0
        self._clock = clock if clock is not None else monotonic_clock
        self.wall_anchor = float(wall_anchor)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self._spans: List[Span] = []
        #: (seq, name, ts, parent_id, tid, args)
        self._instants: List[Tuple[int, str, float, Optional[int], int, Dict[str, Any]]] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        span.end = self._clock()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # unbalanced exit; recover rather than corrupt the tree
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            self._spans.append(span)

    def span(
        self,
        name: str,
        category: str = "engine",
        tid: int = 0,
        parent: Optional[int] = None,
        **args: Any,
    ) -> _SpanContext:
        """Open a span as a context manager.

        ``parent`` overrides the implicit per-thread nesting -- pass
        :meth:`current_id` captured on the dispatching thread when the
        span body runs on a pool worker.
        """
        if parent is None:
            stack = self._stack()
            parent = stack[-1].span_id if stack else None
        with self._lock:
            self._next_id += 1
            span_id = self._next_id
        span = Span(name, category, span_id, parent, tid, self._clock())
        if args:
            span.args.update(args)
        return _SpanContext(self, span)

    def instant(self, name: str, category: str = "engine", tid: int = 0, **args: Any) -> None:
        """Record a point-in-time event under the current span."""
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        ts = self._clock()
        with self._lock:
            self._next_id += 1
            self._instants.append((self._next_id, name, ts, parent, tid, dict(args)))

    def current_id(self) -> Optional[int]:
        """Id of the innermost open span on this thread (for explicit
        cross-thread parenting), or ``None`` outside any span."""
        stack = self._stack()
        return stack[-1].span_id if stack else None

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def _time_base(self) -> float:
        with self._lock:
            starts = [s.start for s in self._spans]
            starts.extend(ts for _, _, ts, _, _, _ in self._instants)
        return min(starts) if starts else 0.0

    def events(self) -> List[Dict[str, Any]]:
        """Normalized event dicts (the JSONL body), sorted by time.

        Span events carry ``type="span"`` with ``t0``/``t1`` in seconds
        relative to the trace start; instants carry ``type="instant"``
        with ``t``.
        """
        base = self._time_base()
        out: List[Dict[str, Any]] = []
        with self._lock:
            spans = list(self._spans)
            instants = list(self._instants)
        for span in spans:
            out.append(
                {
                    "type": "span",
                    "id": span.span_id,
                    "parent": span.parent_id,
                    "name": span.name,
                    "cat": span.category,
                    "tid": span.tid,
                    "t0": span.start - base,
                    "t1": span.end - base,
                    "args": dict(span.args),
                }
            )
        for seq, name, ts, parent, tid, args in instants:
            out.append(
                {
                    "type": "instant",
                    "id": seq,
                    "parent": parent,
                    "name": name,
                    "cat": "engine",
                    "tid": tid,
                    "t": ts - base,
                    "args": dict(args),
                }
            )
        out.sort(key=lambda e: (e.get("t0", e.get("t", 0.0)), e["id"]))
        return out

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The Chrome trace-event JSON object (Perfetto-loadable)."""
        trace_events: List[Dict[str, Any]] = []
        for event in self.events():
            args = dict(event["args"])
            args["span_id"] = event["id"]
            if event["parent"] is not None:
                args["parent_id"] = event["parent"]
            common = {
                "name": event["name"],
                "cat": event["cat"],
                "pid": 1,
                "tid": event["tid"],
                "args": args,
            }
            if event["type"] == "span":
                common["ph"] = "X"
                common["ts"] = round(event["t0"] * 1e6, 3)
                common["dur"] = round((event["t1"] - event["t0"]) * 1e6, 3)
            else:
                common["ph"] = "i"
                common["ts"] = round(event["t"] * 1e6, 3)
                common["s"] = "t"
            trace_events.append(common)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "schema_version": TRACE_SCHEMA_VERSION,
                "wall_anchor": self.wall_anchor,
            },
        }

    def to_jsonl(self) -> str:
        """Line-delimited event log: a meta line, then one event per line."""
        meta = {
            "type": "meta",
            "schema_version": TRACE_SCHEMA_VERSION,
            "clock": "monotonic",
            "wall_anchor": self.wall_anchor,
        }
        lines = [json.dumps(meta, sort_keys=True)]
        lines.extend(json.dumps(event, sort_keys=True) for event in self.events())
        return "\n".join(lines) + "\n"

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, sort_keys=True)
            handle.write("\n")

    def write_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())


class _NullSpan:
    """Shared no-op span: context manager and annotation sink."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        return False

    def annotate(self, **kwargs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Allocation-free tracer used when tracing is off (the default).

    Every method returns a shared constant, so instrumented hot paths
    cost one attribute access and one call per span when disabled.
    """

    enabled = False

    def span(
        self,
        name: str,
        category: str = "engine",
        tid: int = 0,
        parent: Optional[int] = None,
        **args: Any,
    ) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, category: str = "engine", tid: int = 0, **args: Any) -> None:
        pass

    def current_id(self) -> Optional[int]:
        return None
