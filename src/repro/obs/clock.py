"""Clock seams for the observability layer.

Tracing needs two notions of time:

* a **monotonic** clock for span durations -- injected into
  :class:`~repro.obs.trace.Tracer` so tests can drive it manually and
  traces replay deterministically;
* a single **wall-clock anchor** so exported traces can be pinned to
  absolute time by consumers that care (Perfetto does not).

``time.time()`` is nondeterministic and banned by hodor-lint's D1 rule
everywhere in the core tree; :func:`system_wall_time` below is the one
sanctioned seam (``LintConfig.clock_seam_paths`` allows exactly this
module) so the rest of ``repro.obs`` -- and everything downstream --
stays wall-clock-free.
"""

from __future__ import annotations

import asyncio
import time

__all__ = ["ManualClock", "event_loop_time", "monotonic_clock", "system_wall_time"]


def monotonic_clock() -> float:
    """Default tracer clock: monotonic seconds (never wall time)."""
    return time.perf_counter()


def event_loop_time() -> float:
    """The running event loop's monotonic clock.

    Asyncio code must not read ``loop.time()`` directly -- hodor-lint's
    D1 rule flags event-loop clock reads everywhere in the core tree
    except this seam -- so the streaming ingest layer times epochs
    through this function.  Must be called from a coroutine (or any
    code running under a live loop).
    """
    return asyncio.get_running_loop().time()


def system_wall_time() -> float:
    """Seconds since the Unix epoch, for anchoring trace exports.

    The only permitted wall-clock read in the repro tree.  Callers must
    treat the value as a display-only anchor: nothing may branch on it,
    key a map with it, or feed it back into validation.
    """
    return time.time()


class ManualClock:
    """A deterministic, hand-advanced clock for tests.

    Callable like ``time.perf_counter``; advance it explicitly with
    :meth:`tick`.  Spans timed against a :class:`ManualClock` produce
    byte-identical exports across runs.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> float:
        """Advance the clock and return the new reading."""
        if seconds < 0.0:
            raise ValueError(f"ManualClock cannot move backwards ({seconds!r})")
        self.now += seconds
        return self.now
