"""Loading and rendering exported traces (the ``repro trace`` CLI).

Accepts both export formats written by :class:`repro.obs.trace.Tracer`:
Chrome trace-event JSON (``--trace``) and the JSONL event log
(``--trace-jsonl``).  Either is normalized back to the tracer's event
dicts and rendered as an indented span tree with millisecond durations
and per-verdict provenance lines.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

__all__ = ["load_trace_file", "render_trace"]


def _from_chrome(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Invert :meth:`Tracer.to_chrome_trace` into normalized events."""
    events: List[Dict[str, Any]] = []
    for raw in payload.get("traceEvents", []):
        args = dict(raw.get("args", {}))
        span_id = args.pop("span_id", None)
        parent = args.pop("parent_id", None)
        common = {
            "id": span_id,
            "parent": parent,
            "name": raw.get("name", ""),
            "cat": raw.get("cat", "engine"),
            "tid": raw.get("tid", 0),
            "args": args,
        }
        if raw.get("ph") == "X":
            common["type"] = "span"
            common["t0"] = raw.get("ts", 0.0) / 1e6
            common["t1"] = (raw.get("ts", 0.0) + raw.get("dur", 0.0)) / 1e6
        elif raw.get("ph") == "i":
            common["type"] = "instant"
            common["t"] = raw.get("ts", 0.0) / 1e6
        else:  # metadata or unknown phases: skip
            continue
        events.append(common)
    return events


def load_trace_file(path: str) -> List[Dict[str, Any]]:
    """Load a trace export (Chrome JSON or JSONL), auto-detecting."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if not stripped:
        return []
    first_line = stripped.splitlines()[0]
    try:
        head = json.loads(first_line)
    except json.JSONDecodeError:
        head = None
    if isinstance(head, dict) and head.get("type") == "meta":
        events = []
        for line in stripped.splitlines()[1:]:
            if line.strip():
                events.append(json.loads(line))
        return events
    payload = json.loads(text)
    if isinstance(payload, dict) and "traceEvents" in payload:
        return _from_chrome(payload)
    raise ValueError(f"unrecognized trace format in {path}")


def _sort_key(event: Dict[str, Any]):
    return (event.get("t0", event.get("t", 0.0)), event.get("id") or 0)


def _format_args(args: Dict[str, Any]) -> str:
    parts = [f"{key}={args[key]}" for key in sorted(args) if key != "provenance"]
    return f" [{' '.join(parts)}]" if parts else ""


def _provenance_lines(provenance: Dict[str, Any], indent: str) -> List[str]:
    lines: List[str] = []
    redundancies = provenance.get("redundancies") or []
    suffix = f"  [{', '.join(redundancies)}]" if redundancies else ""
    lines.append(
        f"{indent}{provenance.get('input', '?')}: "
        f"{provenance.get('num_violations', 0)} violations / "
        f"{provenance.get('num_evaluated', 0)} invariants{suffix}"
    )
    for fired in provenance.get("fired", []):
        via = ", ".join(
            f"{signal.get('signal', '?')} "
            f"({signal.get('disposition', '?')}@{signal.get('confidence', '?')})"
            for signal in fired.get("signals", [])
        )
        error = fired.get("error")
        err_text = "" if error is None else f" err={error:.2%}"
        lines.append(
            f"{indent}  {fired.get('name', '?')}{err_text} via {via or 'no hardened signal'}"
        )
    return lines


def render_trace(
    events: List[Dict[str, Any]],
    provenance_only: bool = False,
    max_epochs: Optional[int] = None,
) -> str:
    """Render normalized trace events as an indented tree."""
    spans = [e for e in events if e.get("type") == "span"]
    instants = [e for e in events if e.get("type") == "instant"]
    children: Dict[Optional[int], List[Dict[str, Any]]] = {}
    for event in spans + instants:
        children.setdefault(event.get("parent"), []).append(event)
    for bucket in children.values():
        bucket.sort(key=_sort_key)

    epoch_spans = sum(1 for span in spans if span.get("name") == "epoch")
    lines = [
        f"trace: {len(spans)} spans, {len(instants)} instants, {epoch_spans} epoch spans"
    ]
    epochs_rendered = 0
    truncated = False

    def emit(event: Dict[str, Any], depth: int) -> None:
        nonlocal epochs_rendered, truncated
        if truncated:
            return
        is_epoch = event.get("type") == "span" and event.get("name") == "epoch"
        if is_epoch:
            if max_epochs is not None and epochs_rendered >= max_epochs:
                truncated = True
                return
            epochs_rendered += 1
        indent = "  " * depth
        args = event.get("args", {})
        if event.get("type") == "span":
            duration_ms = (event.get("t1", 0.0) - event.get("t0", 0.0)) * 1000.0
            if not provenance_only:
                lines.append(
                    f"{indent}{event.get('name', '?')} {duration_ms:.3f} ms"
                    f"{_format_args(args)}"
                )
        else:
            provenance = args.get("provenance")
            flagged = isinstance(provenance, dict) and not provenance.get("valid", True)
            if provenance_only:
                if flagged:
                    lines.extend(_provenance_lines(provenance, indent))
                return
            lines.append(f"{indent}* {event.get('name', '?')}{_format_args(args)}")
            if flagged:
                lines.extend(_provenance_lines(provenance, indent + "  "))
        for child in children.get(event.get("id"), []):
            emit(child, depth + 1)

    for root in sorted(children.get(None, []), key=_sort_key):
        emit(root, 0 if provenance_only else 1)
    if truncated:
        lines.append(f"... truncated after {epochs_rendered} epochs")
    return "\n".join(lines)
