"""Hodor Observatory: tracing, metrics, and verdict provenance.

Three pillars, instrumented end-to-end through the validation engine:

* :mod:`repro.obs.trace` -- per-epoch span trees with Chrome
  trace-event JSON and JSONL exports (:class:`Tracer`; the
  allocation-free :class:`NullTracer` is the engine default);
* :mod:`repro.obs.metrics` -- :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` families in a :class:`MetricsRegistry` with
  Prometheus text exposition;
* :mod:`repro.obs.provenance` -- per-verdict records naming the fired
  invariant and the hardened signals (raw/confirmed/repaired) that fed
  it.

``repro.obs`` sits below the engine: it imports only leaf ``core``
modules (signals, invariants) and is itself imported by ``core``,
``engine``, ``control``, and the CLI.
"""

from repro.obs.clock import ManualClock, monotonic_clock, system_wall_time
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_exposition,
)
from repro.obs.provenance import (
    FiredInvariant,
    SignalProvenance,
    VerdictProvenance,
    build_provenance,
)
from repro.obs.render import load_trace_file, render_trace
from repro.obs.trace import TRACE_SCHEMA_VERSION, NullTracer, Span, Tracer

__all__ = [
    "ManualClock",
    "monotonic_clock",
    "system_wall_time",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "parse_exposition",
    "SignalProvenance",
    "FiredInvariant",
    "VerdictProvenance",
    "build_provenance",
    "load_trace_file",
    "render_trace",
    "Tracer",
    "NullTracer",
    "Span",
    "TRACE_SCHEMA_VERSION",
]
