"""The wire format of streaming telemetry: per-path update events.

Batch collection hands Hodor a fully-formed
:class:`~repro.telemetry.snapshot.NetworkSnapshot`; real WAN telemetry
arrives as per-router gNMI subscription updates -- one (path, value)
pair at a time, late, duplicated, and reordered.  This module defines
that unit (:class:`UpdateEvent`) and the lossless codec between the
snapshot and event representations:

- :func:`router_updates` flattens the slice of a snapshot one router
  reported into path-addressed updates (the gNMI path vocabulary from
  :mod:`repro.telemetry.paths`), carrying every raw field validation
  can observe -- including malformed junk values, which ride the wire
  untouched exactly as :class:`~repro.telemetry.gnmi.GnmiFacade`
  returns them;
- :func:`apply_update` replays one update into an under-construction
  snapshot (the assembler's half of the codec).

The round trip is *validation-exact*: rebuilding a snapshot from its
full update set yields one that is signal-for-signal identical to the
original (``SnapshotDelta.between(...)`` is empty at any staleness
bound), which is what lets the differential harness prove the streamed
path verdict-identical to the batch path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.telemetry.counters import CounterReading
from repro.telemetry.paths import SignalKind, SignalPath
from repro.telemetry.snapshot import LinkStatusReport, NetworkSnapshot, ProbeResult

__all__ = [
    "UpdateEvent",
    "FeedError",
    "router_updates",
    "apply_update",
    "reporting_routers",
]


class FeedError(RuntimeError):
    """A transient per-feed failure (the ingest layer retries these)."""


@dataclass(frozen=True)
class UpdateEvent:
    """One telemetry update from one router's feed.

    Attributes:
        router: The reporting router (feed identity).
        path: Rendered :class:`~repro.telemetry.paths.SignalPath`.
        epoch_ts: The collection instant this update belongs to -- the
            assembler's epoch bucket key.  Matches the snapshot
            timestamp of the epoch the reading was taken in.
        emit_ts: Virtual transmission time.  Equal to ``epoch_ts`` for
            a punctual update; delay perturbations push it later, which
            is how an update becomes *late* relative to the assembler's
            watermark.
        uid: Per-feed monotone update id.  A duplicated delivery reuses
            the uid of the original (dedupe identity); a genuinely
            newer update for the same path always has a larger uid.
        value: The raw wire value -- exactly what the router reported,
            malformed bytes included.
        meta: Extra raw fields the path alone cannot carry, as sorted
            ``(name, value)`` pairs (e.g. a counter reading's own
            measurement timestamp, window and sequence; a probe's
            rtt).  Kept flat and immutable so events can be copied and
            compared cheaply.
    """

    router: str
    path: str
    epoch_ts: float
    emit_ts: float
    uid: int
    value: object
    meta: Tuple[Tuple[str, object], ...] = ()

    def meta_dict(self) -> Dict[str, object]:
        return dict(self.meta)


def _counter_meta(reading: CounterReading) -> Tuple[Tuple[str, object], ...]:
    return (
        ("sequence", reading.sequence),
        ("timestamp", reading.timestamp),
        ("window_s", reading.window_s),
    )


def reporting_routers(snapshot: NetworkSnapshot) -> List[str]:
    """Every router that owns at least one signal, sorted.

    Unlike :meth:`NetworkSnapshot.nodes` this spans *all* signal
    families (drain reasons, link drains and probes included), so a
    router whose only signal is a drain-reason label still gets a feed.
    """
    owners = set(snapshot.drains) | set(snapshot.drain_reasons) | set(snapshot.drops)
    for family in (
        snapshot.counters,
        snapshot.link_status,
        snapshot.link_drains,
        snapshot.probes,
    ):
        owners.update(node for node, _peer in family)
    return sorted(owners)


def router_updates(
    snapshot: NetworkSnapshot, router: str
) -> List[Tuple[str, object, Tuple[Tuple[str, object], ...]]]:
    """One router's slice of a snapshot as ``(path, value, meta)`` rows.

    Rows come out in deterministic path order (sorted within each
    signal family, families in registry order), so feeds built from the
    same snapshot always emit identical streams for a given seed.
    """
    rows: List[Tuple[str, object, Tuple[Tuple[str, object], ...]]] = []

    for (node, peer), reading in sorted(snapshot.counters.items()):
        if node != router:
            continue
        meta = _counter_meta(reading)
        rows.append(
            (SignalPath(SignalKind.RX_RATE, node, peer).render(), reading.rx_rate, meta)
        )
        rows.append(
            (SignalPath(SignalKind.TX_RATE, node, peer).render(), reading.tx_rate, meta)
        )
    for (node, peer), status in sorted(snapshot.link_status.items()):
        if node != router:
            continue
        rows.append(
            (SignalPath(SignalKind.OPER_STATUS, node, peer).render(), status.oper_up, ())
        )
        rows.append(
            (
                SignalPath(SignalKind.ADMIN_STATUS, node, peer).render(),
                status.admin_up,
                (),
            )
        )
    if router in snapshot.drains:
        rows.append(
            (SignalPath(SignalKind.DRAIN, router).render(), snapshot.drains[router], ())
        )
    if router in snapshot.drain_reasons:
        rows.append(
            (
                SignalPath(SignalKind.DRAIN_REASON, router).render(),
                snapshot.drain_reasons[router],
                (),
            )
        )
    for (node, peer), drained in sorted(snapshot.link_drains.items()):
        if node != router:
            continue
        rows.append((SignalPath(SignalKind.LINK_DRAIN, node, peer).render(), drained, ()))
    if router in snapshot.drops:
        rows.append(
            (
                SignalPath(SignalKind.NODE_DROPS, router).render(),
                snapshot.drops[router],
                (),
            )
        )
    for (node, peer), probe in sorted(snapshot.probes.items()):
        if node != router:
            continue
        rows.append(
            (
                SignalPath(SignalKind.PROBE, node, peer).render(),
                probe.ok,
                (("rtt_ms", probe.rtt_ms),),
            )
        )
    return rows


def apply_update(
    snapshot: NetworkSnapshot,
    path: str,
    value: object,
    meta: Tuple[Tuple[str, object], ...] = (),
) -> None:
    """Replay one update into an under-construction snapshot.

    The inverse of :func:`router_updates`.  Counter rx/tx halves merge
    into one :class:`~repro.telemetry.counters.CounterReading` (a half
    whose partner update was dropped leaves the partner rate ``None``
    -- a reading with a hole, which collection treats as an unknown,
    never a zero).  Link-status halves merge the same way.
    """
    parsed = SignalPath.parse(path)
    kind = parsed.kind
    node, peer = parsed.node, parsed.peer
    extra = dict(meta)

    if kind in (SignalKind.RX_RATE, SignalKind.TX_RATE):
        key = (node, peer or "")
        reading = snapshot.counters.get(key)
        if reading is None:
            reading = CounterReading(rx_rate=None, tx_rate=None)
            snapshot.counters[key] = reading
        if kind == SignalKind.RX_RATE:
            reading.rx_rate = value
        else:
            reading.tx_rate = value
        if "sequence" in extra:
            reading.sequence = extra["sequence"]
        if "timestamp" in extra:
            reading.timestamp = extra["timestamp"]
        if "window_s" in extra:
            reading.window_s = extra["window_s"]
        return
    if kind in (SignalKind.OPER_STATUS, SignalKind.ADMIN_STATUS):
        key = (node, peer or "")
        status = snapshot.link_status.get(key)
        if status is None:
            status = LinkStatusReport(oper_up=None)
            snapshot.link_status[key] = status
        if kind == SignalKind.OPER_STATUS:
            status.oper_up = value
        else:
            status.admin_up = value
        return
    if kind == SignalKind.DRAIN:
        snapshot.drains[node] = value
        return
    if kind == SignalKind.DRAIN_REASON:
        snapshot.drain_reasons[node] = value
        return
    if kind == SignalKind.LINK_DRAIN:
        snapshot.link_drains[(node, peer or "")] = value
        return
    if kind == SignalKind.NODE_DROPS:
        snapshot.drops[node] = value
        return
    if kind == SignalKind.PROBE:
        rtt: Optional[float] = extra.get("rtt_ms")
        snapshot.probes[(node, peer or "")] = ProbeResult(ok=bool(value), rtt_ms=rtt)
        return
    raise ValueError(f"unsupported signal kind {kind!r}")  # pragma: no cover
