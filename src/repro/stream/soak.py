"""E15 soak driver: sustained streamed ingestion under churn.

Runs N epochs of churning feeds through the full streaming stack --
perturbed :class:`~repro.stream.feed.RouterFeed` sources, bounded-queue
:class:`~repro.stream.ingest.StreamPipeline`, watermark
:class:`~repro.stream.assembler.EpochAssembler`, and a live
:class:`~repro.engine.ValidationEngine` -- and reports sustained
throughput plus assembly-latency percentiles.  This is the load shape
the ROADMAP's north star describes: heavy traffic, always on, as fast
as the hardware allows.

The fixture is the scale study's: a random Waxman topology with
gravity demand, telemetry collected once and then churned per epoch by
:func:`repro.experiments.scale_study.churn_snapshot` (R1-preserving
link re-measurement), so streamed epochs carry realistic steady-state
deltas and the incremental engine mode has reuse to find.  Heavy
dependencies are imported lazily so ``repro.stream`` stays cheap to
import.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.obs.clock import monotonic_clock
from repro.obs.metrics import MetricsRegistry
from repro.stream.assembler import EpochAssembler
from repro.stream.feed import Perturbations, make_feeds
from repro.stream.ingest import IngestConfig, StreamPipeline

__all__ = ["SoakConfig", "SoakResult", "run_soak"]


@dataclass(frozen=True)
class SoakConfig:
    """One soak run's knobs.

    Attributes:
        nodes: Waxman topology size.
        epochs: Epochs to stream (beyond the base epoch).
        seed: Topology/demand/churn/perturbation seed.
        churn: Per-link probability of re-measurement each epoch.
        epoch_spacing_s: Virtual seconds between collection instants.
        lateness_s: Assembler lateness window (virtual seconds).
        perturb: Feed delivery perturbations.
        mode: Engine mode, ``"full"`` or ``"incremental"``.
        backend: Engine backend, ``"python"`` or ``"vector"``.
        shards: Engine shard count.
        queue_size: Ingest queue bound.
        backpressure: ``"block"`` or ``"drop-oldest"``.
        deterministic: Merged single-producer delivery order.
        scatter: Seal epochs as sorted event buffers instead of
            pre-applied snapshots; the engine folds them through the
            cached decoder (``validate_events``), skipping the
            per-event path re-parse of the classic reassembly path.
        history_path: When set, attach a history sink at this sqlite
            path and write every validated epoch through (E18's store).
        history_deterministic: Byte-reproducible store writes (epoch
            virtual timestamps, zeroed latencies).  Default off for
            soak runs -- E18 measures *real* verdict-latency drift.
        history_retention_epochs: Retention cap on stored epochs
            (``None`` = unbounded; E18 sets this to prove sublinear
            store growth).
        history_snapshot_every: Engine counter-snapshot cadence.
        history_compact_every: Mid-run full-compaction cadence
            (0 = only the final compaction).
        alert_rules: Alert rule grammar strings evaluated as epochs
            stream (see :mod:`repro.history.alerts`).
        alert_jsonl: JSONL fan-out path for fired alerts.
    """

    nodes: int = 80
    epochs: int = 50
    seed: int = 0
    churn: float = 0.10
    epoch_spacing_s: float = 10.0
    lateness_s: float = 2.0
    perturb: Perturbations = Perturbations(reorder=0.10, drop=0.01, duplicate=0.02)
    mode: str = "full"
    backend: str = "python"
    shards: int = 1
    queue_size: int = 256
    backpressure: str = "block"
    deterministic: bool = True
    scatter: bool = False
    history_path: Optional[str] = None
    history_deterministic: bool = False
    history_retention_epochs: Optional[int] = None
    history_snapshot_every: int = 10
    history_compact_every: int = 0
    alert_rules: Tuple[str, ...] = ()
    alert_jsonl: Optional[str] = None


@dataclass
class SoakResult:
    """What one soak run measured.

    Attributes:
        nodes / links: Topology shape.
        epochs_streamed: Epochs the run expected to seal.
        epochs_sealed: Epochs actually sealed and validated (equal to
            ``epochs_streamed`` unless the pipeline wedged -- the E15
            acceptance bar).
        updates: Deliveries offered to the assembler.
        wall_s: Real seconds for the whole pipeline run.
        updates_per_s: Sustained delivery throughput.
        epochs_per_s: Sustained validated-epoch throughput.
        p50_ms / p95_ms / p99_ms: Assembly-latency percentiles
            (first delivery to seal, real milliseconds).
        late_dropped: Deliveries that missed their epoch's seal.
        duplicates: Duplicate deliveries suppressed.
        feed_dropped: Deliveries the feeds dropped at the source.
        backpressure_dropped: Events shed by drop-oldest.
        retries: Feed delivery retries.
        abandoned: Feeds abandoned after exhausting retries.
        complete_epochs / partial_epochs: Coverage split.
        metrics: The run's registry (``stream_*`` + engine families),
            ready for Prometheus exposition.
        history_epochs: Epoch rows retained in the history store at
            run end (post-retention; 0 with no history sink).
        history_bytes: Store file bytes before the final compaction.
        history_bytes_compacted: Store file bytes after the final
            compaction (checkpoint + VACUUM rewrite).
        history_compaction_deleted: Epoch rows the final compaction's
            retention sweep deleted.
        alerts_fired: Alerts appended to the store ledger.
    """

    nodes: int
    links: int
    epochs_streamed: int
    epochs_sealed: int
    updates: int
    wall_s: float
    updates_per_s: float
    epochs_per_s: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    late_dropped: int
    duplicates: int
    feed_dropped: int
    backpressure_dropped: int
    retries: int
    abandoned: int
    complete_epochs: int
    partial_epochs: int
    metrics: MetricsRegistry = field(repr=False, default_factory=MetricsRegistry)
    history_epochs: int = 0
    history_bytes: int = 0
    history_bytes_compacted: int = 0
    history_compaction_deleted: int = 0
    alerts_fired: int = 0


def _percentile_ms(sorted_s: List[float], q: float) -> float:
    """Nearest-rank percentile of a pre-sorted seconds list, in ms."""
    if not sorted_s:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_s)))
    return sorted_s[rank - 1] * 1000.0


def run_soak(
    config: Optional[SoakConfig] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer=None,
) -> SoakResult:
    """Run one soak to completion and measure it."""
    import random

    from repro.control.demand_service import records_from_matrix
    from repro.control.infra import ControlPlane
    from repro.control.metrics import engine_registry
    from repro.engine import ValidationEngine
    from repro.experiments.scale_study import churn_snapshot
    from repro.net.demand import gravity_demand
    from repro.net.simulation import NetworkSimulator
    from repro.telemetry.collector import TelemetryCollector
    from repro.telemetry.counters import Jitter
    from repro.telemetry.probes import ProbeEngine
    from repro.topologies.synthetic import waxman_topology

    config = config or SoakConfig()
    registry = metrics if metrics is not None else MetricsRegistry()

    topology = waxman_topology(config.nodes, seed=config.seed)
    demand = gravity_demand(
        topology.node_names(), total=4.0 * config.nodes, seed=config.seed
    )
    truth = NetworkSimulator(topology, demand, strategy="single").run()
    collector = TelemetryCollector(
        Jitter(0.005, seed=config.seed), probe_engine=ProbeEngine(seed=config.seed)
    )
    base = collector.collect(truth)
    plane = ControlPlane(topology)
    records = records_from_matrix(demand, seed=config.seed)
    inputs = plane.compute_inputs(base, records)

    rng = random.Random(config.seed)
    epochs: List[Tuple[float, object]] = []
    snapshot = base.copy()
    snapshot.timestamp = 0.0
    epochs.append((0.0, snapshot))
    for index in range(1, config.epochs):
        timestamp = index * config.epoch_spacing_s
        snapshot = churn_snapshot(snapshot, config.churn, rng, timestamp)
        epochs.append((timestamp, snapshot))

    sink = None
    if config.history_path is not None:
        from repro.history.alerts import AlertEngine, JsonlAlertSink
        from repro.history.sink import HistoryConfig, HistorySink
        from repro.history.store import RetentionPolicy

        alert_engine = None
        if config.alert_rules:
            sinks = (
                [JsonlAlertSink(config.alert_jsonl)]
                if config.alert_jsonl is not None
                else []
            )
            alert_engine = AlertEngine(
                config.alert_rules, sinks=sinks, metrics=registry
            )
        sink = HistorySink(
            HistoryConfig(
                path=config.history_path,
                deterministic=config.history_deterministic,
                counter_snapshot_every=config.history_snapshot_every,
                retention=RetentionPolicy(max_epochs=config.history_retention_epochs),
                compact_every=config.history_compact_every,
            ),
            alerts=alert_engine,
            metrics=registry,
        )

    feeds = make_feeds(epochs, perturb=config.perturb, seed=config.seed)
    assembler = EpochAssembler(
        routers=list(feeds),
        lateness_s=config.lateness_s,
        metrics=registry,
        tracer=tracer,
        build_snapshots=not config.scatter,
    )
    with ValidationEngine(
        topology,
        mode=config.mode,
        backend=config.backend,
        shards=config.shards,
        metrics=registry,
        tracer=tracer,
    ) as engine:
        pipeline = StreamPipeline(
            list(feeds.values()),
            assembler,
            engine,
            inputs_for=lambda _ts: inputs,
            config=IngestConfig(
                queue_size=config.queue_size,
                backpressure=config.backpressure,
                deterministic=config.deterministic,
            ),
            metrics=registry,
            tracer=tracer,
            history=sink,
        )
        start = monotonic_clock()
        result = pipeline.run()
        wall_s = monotonic_clock() - start
        engine_registry(engine.stats, registry=registry)

    history_epochs = history_bytes = history_compacted = deleted = alerts_fired = 0
    if sink is not None:
        compaction = sink.compact()
        history_bytes = compaction.bytes_before
        history_compacted = compaction.bytes_after
        deleted = compaction.epochs_deleted
        history_epochs = sink.store.epoch_count()
        alerts_fired = len(sink.store.alerts())
        sink.close()

    latencies = sorted(epoch.assembly_latency_s for epoch in result.epochs)
    feed_dropped = sum(feed.stats.dropped for feed in feeds.values())
    return SoakResult(
        nodes=topology.num_nodes,
        links=topology.num_links,
        epochs_streamed=config.epochs,
        epochs_sealed=len(result.epochs),
        updates=result.updates,
        wall_s=wall_s,
        updates_per_s=result.updates / wall_s if wall_s > 0.0 else 0.0,
        epochs_per_s=len(result.epochs) / wall_s if wall_s > 0.0 else 0.0,
        p50_ms=_percentile_ms(latencies, 0.50),
        p95_ms=_percentile_ms(latencies, 0.95),
        p99_ms=_percentile_ms(latencies, 0.99),
        late_dropped=result.late_dropped,
        duplicates=result.duplicates,
        feed_dropped=feed_dropped,
        backpressure_dropped=result.backpressure_dropped,
        retries=result.retries,
        abandoned=len(result.abandoned),
        complete_epochs=result.complete_epochs,
        partial_epochs=result.partial_epochs,
        metrics=registry,
        history_epochs=history_epochs,
        history_bytes=history_bytes,
        history_bytes_compacted=history_compacted,
        history_compaction_deleted=deleted,
        alerts_fired=alerts_fired,
    )
