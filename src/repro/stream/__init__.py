"""Streaming ingestion: async feeds -> watermark assembly -> engine.

Turns per-router gNMI-style update streams -- late, duplicated,
reordered, lossy -- into validated epochs for the always-on engine.
See ``docs/STREAMING.md`` for the event schema, watermark semantics,
backpressure policies, and the partial-epoch contract.
"""

from repro.stream.assembler import AssembledEpoch, EpochAssembler
from repro.stream.events import (
    FeedError,
    UpdateEvent,
    apply_update,
    reporting_routers,
    router_updates,
)
from repro.stream.feed import FeedStats, Perturbations, RouterFeed, make_feeds
from repro.stream.ingest import IngestConfig, StreamPipeline, StreamResult
from repro.stream.soak import SoakConfig, SoakResult, run_soak

__all__ = [
    "AssembledEpoch",
    "EpochAssembler",
    "FeedError",
    "FeedStats",
    "IngestConfig",
    "Perturbations",
    "RouterFeed",
    "SoakConfig",
    "SoakResult",
    "StreamPipeline",
    "StreamResult",
    "UpdateEvent",
    "apply_update",
    "make_feeds",
    "reporting_routers",
    "router_updates",
    "run_soak",
]
