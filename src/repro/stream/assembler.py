"""Watermark-driven epoch assembly from per-router update streams.

:class:`EpochAssembler` turns an interleaved stream of
:class:`~repro.stream.events.UpdateEvent` deliveries back into
per-epoch :class:`~repro.telemetry.snapshot.NetworkSnapshot` objects
the validation engine can consume, using the classic streaming
low-watermark discipline:

* every delivery advances its router's **progress** (the running max
  of ``emit_ts`` seen from that feed -- feeds deliver in emit order,
  so progress is that feed's event-time frontier);
* the assembler's **low watermark** is the minimum progress over all
  expected routers that have not finished;
* an epoch with timestamp ``T`` **seals** once the watermark passes
  ``T + lateness_s``: no punctual feed can still deliver for it.

Until it seals, an epoch buffers deliveries keyed by ``(router, uid)``
-- which both dedupes duplicated deliveries and makes the final
snapshot independent of arrival interleaving: at seal time the buffer
is applied in sorted key order.  A delivery for an already-sealed
epoch is *late*: counted and dropped, never applied (a late write
mutating history would desynchronise the engine's incremental state).

Sealed epochs are **partial** when some expected router contributed
nothing: its signals are simply absent from the snapshot, which
Hodor's collection layer already treats as unknowns -- never zeros --
so partial epochs flow through validation with no special casing.  The
per-router coverage map on :class:`AssembledEpoch` records exactly who
was missing.

The assembler is single-threaded and synchronous; the asyncio ingest
layer (:mod:`repro.stream.ingest`) owns concurrency and calls into it
from one consumer task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.clock import monotonic_clock
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NullTracer
from repro.stream.events import UpdateEvent, apply_update
from repro.telemetry.snapshot import NetworkSnapshot

__all__ = ["AssembledEpoch", "EpochAssembler"]

#: Histogram buckets for assembly latency (seconds, real time).
ASSEMBLY_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


@dataclass(frozen=True)
class AssembledEpoch:
    """One sealed epoch: the rebuilt snapshot plus its coverage record.

    Attributes:
        timestamp: The epoch's collection instant (snapshot timestamp).
        snapshot: The snapshot rebuilt from buffered deliveries, or
            ``None`` when the assembler runs with
            ``build_snapshots=False`` (the scatter path: the engine
            folds :attr:`events` itself through the cached decoder).
        coverage: Applied-update count per contributing router.
        expected: Every router the assembler expected to hear from.
        missing: Expected routers that contributed nothing (sorted).
        complete: ``True`` when no expected router is missing.
        sealed_by: ``"watermark"`` (the normal path) or ``"drain"``
            (sealed during shutdown before the watermark passed).
        updates: Distinct updates applied to the snapshot.
        duplicates: Duplicate deliveries suppressed for this epoch.
        assembly_latency_s: Real seconds from the epoch's first
            buffered delivery to seal.
        events: The deduped deliveries in sorted ``(router, uid)``
            seal order; retained only with ``build_snapshots=False``
            (otherwise empty -- the snapshot already holds the fold).
    """

    timestamp: float
    snapshot: Optional[NetworkSnapshot]
    coverage: Dict[str, int]
    expected: Tuple[str, ...]
    missing: Tuple[str, ...]
    complete: bool
    sealed_by: str
    updates: int
    duplicates: int
    assembly_latency_s: float
    events: Tuple[UpdateEvent, ...] = ()


@dataclass
class _OpenEpoch:
    """Buffer state for one not-yet-sealed epoch."""

    first_at: float
    events: Dict[Tuple[str, int], UpdateEvent] = field(default_factory=dict)
    duplicates: int = 0


class EpochAssembler:
    """Buckets update deliveries into watermark-sealed epochs.

    Args:
        routers: The routers expected to report each epoch.  The low
            watermark is taken over this set, so a router outside it
            can contribute updates but never holds sealing back.
        lateness_s: How far past an epoch's timestamp the watermark
            must move before that epoch seals.  Larger values tolerate
            more reordering at the cost of assembly latency.
        metrics: Optional shared registry for the ``stream_*``
            families; one is created when omitted.
        tracer: Optional tracer; each seal records an ``assemble``
            span.  Defaults to the no-op tracer.
        clock: Monotonic seconds source for assembly latency; defaults
            to :func:`repro.obs.clock.monotonic_clock`.
        build_snapshots: ``True`` (default) applies the buffered
            deliveries into a :class:`NetworkSnapshot` at seal time --
            the classic path.  ``False`` seals epochs that carry only
            their sorted event buffers (``snapshot=None``): the scatter
            path, where the engine's cached decoder folds the events
            without re-parsing a single path string (see
            :mod:`repro.stream.fold`).
    """

    def __init__(
        self,
        routers: Sequence[str],
        lateness_s: float = 1.0,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
        clock=None,
        build_snapshots: bool = True,
    ) -> None:
        if lateness_s < 0.0:
            raise ValueError(f"lateness_s must be >= 0, got {lateness_s!r}")
        self.expected: Tuple[str, ...] = tuple(sorted(set(routers)))
        self.lateness_s = lateness_s
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NullTracer()
        self._clock = clock if clock is not None else monotonic_clock
        self._build_snapshots = build_snapshots
        self._open: Dict[float, _OpenEpoch] = {}
        self._sealed_ts: set = set()
        self._progress: Dict[str, float] = {r: float("-inf") for r in self.expected}
        self._done: set = set()
        self.late_dropped = 0
        self.duplicates = 0
        self.updates = 0
        self._updates_total = self.metrics.counter(
            "stream_updates_total",
            "Telemetry update deliveries offered to the epoch assembler.",
        )
        self._late_total = self.metrics.counter(
            "stream_late_updates_total",
            "Deliveries that arrived after their epoch sealed (dropped).",
        )
        self._dup_total = self.metrics.counter(
            "stream_duplicate_updates_total",
            "Duplicate deliveries suppressed by (router, uid) dedupe.",
        )
        self._epochs_total = self.metrics.counter(
            "stream_epochs_sealed_total",
            "Epochs sealed by the assembler, by completeness.",
            labels=("result",),
        )
        self._open_gauge = self.metrics.gauge(
            "stream_open_epochs",
            "Epochs currently buffering in the assembler.",
        )
        self._latency_hist = self.metrics.histogram(
            "stream_assembly_latency_seconds",
            "Real seconds from an epoch's first delivery to seal.",
            buckets=ASSEMBLY_LATENCY_BUCKETS,
        )
        # Touch the unlabelled families so a zero value still exposes a
        # sample line (dashboards expect the series to exist from boot).
        for counter in (self._updates_total, self._late_total, self._dup_total):
            counter.inc(0.0)
        self._open_gauge.set(0.0)

    # ------------------------------------------------------------------

    @property
    def open_epochs(self) -> int:
        return len(self._open)

    def watermark(self) -> float:
        """Low watermark: min event-time frontier over live routers."""
        live = [self._progress[r] for r in self.expected if r not in self._done]
        if not live:
            return float("inf")
        return min(live)

    def offer(self, event: UpdateEvent) -> List[AssembledEpoch]:
        """Buffer one delivery; return any epochs it caused to seal."""
        self.updates += 1
        self._updates_total.inc()
        if event.epoch_ts in self._sealed_ts:
            self.late_dropped += 1
            self._late_total.inc()
        else:
            state = self._open.get(event.epoch_ts)
            if state is None:
                state = self._open[event.epoch_ts] = _OpenEpoch(first_at=self._clock())
                self._open_gauge.set(float(len(self._open)))
            key = (event.router, event.uid)
            if key in state.events:
                state.duplicates += 1
                self.duplicates += 1
                self._dup_total.inc()
            else:
                state.events[key] = event
        if event.router in self._progress:
            if event.emit_ts > self._progress[event.router]:
                self._progress[event.router] = event.emit_ts
        return self._seal_ready()

    def mark_done(self, router: str) -> List[AssembledEpoch]:
        """A feed finished (or was abandoned): stop waiting for it."""
        self._done.add(router)
        return self._seal_ready()

    def drain(self) -> List[AssembledEpoch]:
        """Seal every open epoch in timestamp order (shutdown path)."""
        return [self._seal(ts, "drain") for ts in sorted(self._open)]

    # ------------------------------------------------------------------

    def _seal_ready(self) -> List[AssembledEpoch]:
        wm = self.watermark()
        sealed: List[AssembledEpoch] = []
        for ts in sorted(self._open):
            if ts + self.lateness_s <= wm:
                sealed.append(self._seal(ts, "watermark"))
            else:
                break
        return sealed

    def _seal(self, timestamp: float, sealed_by: str) -> AssembledEpoch:
        state = self._open.pop(timestamp)
        self._sealed_ts.add(timestamp)
        self._open_gauge.set(float(len(self._open)))
        latency = self._clock() - state.first_at
        with self.tracer.span(
            "assemble", category="stream", timestamp=timestamp, sealed_by=sealed_by
        ) as span:
            ordered = tuple(state.events[key] for key in sorted(state.events))
            coverage: Dict[str, int] = {}
            for event in ordered:
                coverage[event.router] = coverage.get(event.router, 0) + 1
            if self._build_snapshots:
                snapshot: Optional[NetworkSnapshot] = NetworkSnapshot(timestamp=timestamp)
                for event in ordered:
                    # Assembly is the replay half of the event codec and
                    # deliberately upstream of validation: apply_update()
                    # must write the *raw* wire values (malformed junk
                    # included) into the snapshot, because hardening this
                    # early would hide exactly the garbage the engine's
                    # harden_* stages exist to catch.  Every sealed epoch
                    # is hardened by the engine before any verdict.
                    apply_update(snapshot, event.path, event.value, event.meta)  # lint: ignore[T1]
                events: Tuple[UpdateEvent, ...] = ()
            else:
                # Scatter path: the engine folds the sorted buffer
                # itself through the cached decoder; carrying both the
                # events and a snapshot would double epoch memory.
                snapshot = None
                events = ordered
            missing = tuple(r for r in self.expected if r not in coverage)
            span.annotate(
                updates=len(state.events),
                duplicates=state.duplicates,
                missing=len(missing),
            )
        complete = not missing
        self._epochs_total.labels(result="complete" if complete else "partial").inc()
        self._latency_hist.observe(latency)
        return AssembledEpoch(
            timestamp=timestamp,
            snapshot=snapshot,
            coverage=coverage,
            expected=self.expected,
            missing=missing,
            complete=complete,
            sealed_by=sealed_by,
            updates=len(state.events),
            duplicates=state.duplicates,
            assembly_latency_s=latency,
            events=events,
        )
