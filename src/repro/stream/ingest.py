"""Asyncio ingestion: feeds -> bounded queue -> assembler -> engine.

:class:`StreamPipeline` is the always-on wiring the paper's Section
3.2 deployment model implies: per-router feeds push update deliveries
into one bounded queue; a single consumer drains it into the
:class:`~repro.stream.assembler.EpochAssembler`; every epoch the
assembler seals is validated immediately by a
:class:`~repro.engine.ValidationEngine` (full or incremental mode --
the pipeline does not care).

Design points:

* **Bounded queue + explicit backpressure.**  ``"block"`` (default)
  makes producers await queue space, so a slow validator throttles the
  feeds -- nothing is lost, ingest latency absorbs the pressure.
  ``"drop-oldest"`` sheds load instead: when the queue is full the
  oldest *event* is discarded (and counted); end-of-feed control items
  are never dropped, so sealing can never deadlock on a discarded
  notification.
* **Per-feed timeout + retry with backoff.**  A delivery attempt that
  raises :class:`~repro.stream.events.FeedError` or times out is
  retried with exponential backoff up to ``max_retries``; a feed that
  keeps failing is abandoned and marked done, so the watermark stops
  waiting for it (its epochs seal partial rather than never).
* **Ordered completion.**  A feed's end-of-stream marker travels
  through the same queue *behind* its deliveries, so the assembler
  never learns a feed is done while that feed's updates are still
  queued.  The consumer terminates by counting *terminal* markers --
  one per producer task, enqueued as that task's very last put -- so
  shutdown is itself ordered through the queue and cannot race a
  producer whose final marker is written but not yet enqueued.
* **Run-scoped state.**  Queue, counters, and the result object live
  in a per-run ``_RunState`` passed explicitly to every coroutine;
  the pipeline object holds no mutable run state, so overlapping
  ``run_async()`` calls cannot interfere.
* **Graceful drain.**  After every producer finishes, the consumer
  empties the queue and then drains the assembler, sealing whatever
  the watermark could not (the final epochs of any bounded run).
* **Deterministic mode.**  With ``deterministic=True`` one producer
  merges all feeds in ``(emit_ts, router, uid)`` order, making the
  queue sequence -- and therefore every counter -- reproducible run
  to run.  ``False`` runs one producer task per feed; the assembler's
  buffer-and-sort sealing keeps *snapshots* deterministic even then.

The event-loop clock is read through
:func:`repro.obs.clock.event_loop_time` -- the sanctioned seam --
keeping this module hodor-lint D1-clean.
"""

from __future__ import annotations

import asyncio
import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.clock import event_loop_time
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NullTracer
from repro.stream.assembler import AssembledEpoch, EpochAssembler
from repro.stream.events import FeedError, UpdateEvent
from repro.stream.feed import RouterFeed

__all__ = ["IngestConfig", "StreamResult", "StreamPipeline"]

_BACKPRESSURE_POLICIES = ("block", "drop-oldest")


@dataclass(frozen=True)
class _FeedDone:
    """In-band end-of-stream marker for one feed (never dropped).

    ``terminal`` marks a *producer task* exiting (its very last put).
    The consumer runs until it has seen one terminal marker per
    producer task -- the only termination signal that cannot race,
    because FIFO order guarantees every event a producer enqueued
    travels ahead of its terminal marker.  (The previous design
    counted live producers in a shared integer decremented *before*
    the marker was enqueued; a consumer scheduled inside that window
    saw zero producers and an empty queue while the woken-but-
    unscheduled putter still held the final marker, and shut down
    without processing it.)
    """

    router: str
    terminal: bool = False


@dataclass
class _RunState:
    """Mutable state owned by exactly one ``run_async()`` call.

    Producers and the consumer share this object through explicit
    parameters instead of pipeline attributes, so one pipeline can
    never bleed counters or queue items across overlapping runs, and
    hodor-lint A2 can verify no instance state straddles an ``await``.
    """

    queue: asyncio.Queue
    result: StreamResult
    retries: int = 0
    shed: int = 0
    abandoned: List[str] = field(default_factory=list)


@dataclass(frozen=True)
class IngestConfig:
    """Tuning for the ingestion pipeline.

    Attributes:
        queue_size: Bound on the shared delivery queue.
        backpressure: ``"block"`` (producers wait for space) or
            ``"drop-oldest"`` (shed the oldest queued event).
        feed_timeout_s: Per-delivery timeout before a retry.
        max_retries: Failed/timed-out attempts before a feed is
            abandoned.
        backoff_base_s: First retry delay; doubles per attempt.
        deterministic: Merge all feeds in one producer (reproducible
            queue order) instead of one producer task per feed.
    """

    queue_size: int = 256
    backpressure: str = "block"
    feed_timeout_s: float = 5.0
    max_retries: int = 3
    backoff_base_s: float = 0.005
    deterministic: bool = True

    def __post_init__(self) -> None:
        if self.backpressure not in _BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown backpressure policy {self.backpressure!r}; "
                f"expected one of {_BACKPRESSURE_POLICIES}"
            )
        if self.queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {self.queue_size}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")


@dataclass
class StreamResult:
    """Everything one pipeline run produced, in seal order.

    Attributes:
        epochs: Sealed epochs, ascending timestamp.
        reports: One validation report per sealed epoch (aligned).
        updates: Deliveries offered to the assembler.
        late_dropped: Deliveries that missed their epoch's seal.
        duplicates: Duplicate deliveries suppressed.
        backpressure_dropped: Events shed by the drop-oldest policy.
        retries: Feed delivery attempts that were retried.
        abandoned: Feeds given up on after exhausting retries.
        epoch_latency_s: Per-epoch seconds from seal to validated,
            on the event-loop clock (aligned with ``epochs``).
        shed_epochs: Sealed epochs the admission gate declined to
            validate (graceful degradation; never recorded in
            ``epochs``/``reports``).
    """

    epochs: List[AssembledEpoch] = field(default_factory=list)
    reports: List[object] = field(default_factory=list)
    updates: int = 0
    late_dropped: int = 0
    duplicates: int = 0
    backpressure_dropped: int = 0
    retries: int = 0
    abandoned: Tuple[str, ...] = ()
    epoch_latency_s: List[float] = field(default_factory=list)
    shed_epochs: int = 0

    @property
    def complete_epochs(self) -> int:
        return sum(1 for epoch in self.epochs if epoch.complete)

    @property
    def partial_epochs(self) -> int:
        return sum(1 for epoch in self.epochs if not epoch.complete)


class StreamPipeline:
    """Drives feeds through assembly into the validation engine.

    Args:
        feeds: The per-router feeds to ingest (exhausted by a run).
        assembler: The epoch assembler; its expected-router set should
            cover the feeds or sealing will not wait for them.
        engine: A :class:`~repro.engine.ValidationEngine` (either
            mode); called synchronously as epochs seal, so engine
            latency is the pipeline's natural backpressure source.
        inputs_for: Controller inputs per epoch -- a callable taking
            the epoch timestamp, or a mapping keyed by it.
        topology: Optional per-run reference-topology override.
        config: Queue/backpressure/retry tuning.
        metrics: Optional shared registry (pass the same one given to
            the assembler and engine for a single exposition).
        tracer: Optional tracer; each validated epoch records a
            ``stream.epoch`` span.
        history: Optional :class:`repro.history.sink.HistorySink`;
            every sealed-and-validated epoch is written through with
            its assembly coverage and seal-to-verdict latency.  The
            pipeline never owns the sink -- the caller closes it.
            Attach a sink to either the pipeline or the engine, not
            both, or epochs record twice.
        gate: Optional admission callback: ``gate(epoch) -> bool``
            runs before each sealed epoch is validated; returning
            ``False`` *sheds* the epoch (skipped entirely, counted in
            ``StreamResult.shed_epochs``).  The fleet layer uses this
            for graceful degradation -- shedding partial-epoch sealing
            under overload before healthy tenants starve.
        on_epoch: Optional observer: ``on_epoch(epoch, report,
            latency_s)`` runs after each epoch validates (and after
            any history write-through).  The fleet worker streams
            per-epoch verdict digests through this seam.
    """

    def __init__(
        self,
        feeds: Sequence[RouterFeed],
        assembler: EpochAssembler,
        engine,
        inputs_for,
        topology=None,
        config: Optional[IngestConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
        history=None,
        gate=None,
        on_epoch=None,
    ) -> None:
        self._feeds = list(feeds)
        self._assembler = assembler
        self._engine = engine
        self._inputs_for = self._as_callable(inputs_for)
        self._topology = topology
        self.config = config or IngestConfig()
        self.metrics = metrics if metrics is not None else assembler.metrics
        self.tracer = tracer if tracer is not None else NullTracer()
        self.history = history
        self._gate = gate
        self._on_epoch = on_epoch
        self._queue_gauge = self.metrics.gauge(
            "stream_queue_depth",
            "Deliveries waiting in the ingest queue.",
        )
        self._epochs_shed_total = self.metrics.counter(
            "stream_epochs_shed_total",
            "Sealed epochs the admission gate declined to validate.",
        )
        self._shed_total = self.metrics.counter(
            "stream_backpressure_dropped_total",
            "Events shed by the drop-oldest backpressure policy.",
        )
        self._retry_total = self.metrics.counter(
            "stream_feed_retries_total",
            "Feed delivery attempts retried after a failure or timeout.",
        )
        self._abandoned_total = self.metrics.counter(
            "stream_feeds_abandoned_total",
            "Feeds abandoned after exhausting their retry budget.",
        )
        self._feed_dropped_total = self.metrics.counter(
            "stream_feed_dropped_total",
            "Deliveries the feeds themselves dropped at the source.",
        )
        for counter in (
            self._shed_total,
            self._retry_total,
            self._abandoned_total,
            self._feed_dropped_total,
        ):
            counter.inc(0.0)
        self._queue_gauge.set(0.0)

    @staticmethod
    def _as_callable(inputs_for) -> Callable[[float], object]:
        if callable(inputs_for):
            return inputs_for
        return inputs_for.__getitem__

    # ------------------------------------------------------------------
    # Producers
    # ------------------------------------------------------------------

    async def _attempt(self, feed: RouterFeed) -> Optional[UpdateEvent]:
        """One delivery attempt.  An async feed (a coroutine-function
        ``next_event``, e.g. real gNMI I/O) runs under the per-feed
        timeout; a sync replay feed cannot block, so it is called
        directly -- wrapping it in ``wait_for`` would create one task
        per delivery for a timeout that can never fire."""
        method = feed.next_event
        if asyncio.iscoroutinefunction(method):
            return await asyncio.wait_for(method(), self.config.feed_timeout_s)
        return method()

    async def _pull(self, state: _RunState, feed: RouterFeed) -> Optional[UpdateEvent]:
        """Next delivery with retry/backoff; ``None`` = exhausted or
        abandoned (the caller cannot tell, and does not need to)."""
        attempts = 0
        while True:
            try:
                return await self._attempt(feed)
            except (FeedError, asyncio.TimeoutError):
                attempts += 1
                state.retries += 1
                self._retry_total.inc()
                if attempts > self.config.max_retries:
                    state.abandoned.append(feed.router)
                    self._abandoned_total.inc()
                    return None
                await asyncio.sleep(self.config.backoff_base_s * (2 ** (attempts - 1)))

    async def _enqueue(self, state: _RunState, item: object) -> None:
        queue = state.queue
        if self.config.backpressure == "block" or isinstance(item, _FeedDone):
            await queue.put(item)
        else:
            while True:
                try:
                    queue.put_nowait(item)
                    break
                except asyncio.QueueFull:
                    if not self._shed_oldest(state):
                        # Queue full of control items: nothing is
                        # droppable, so fall back to blocking.
                        await queue.put(item)
                        break
        self._queue_gauge.set(float(queue.qsize()))

    def _shed_oldest(self, state: _RunState) -> bool:
        """Discard the oldest queued *event*; controls are re-queued
        behind it (only ever delayed, never lost or reordered ahead of
        their own feed's events, which are all already dequeued)."""
        queue = state.queue
        controls: List[object] = []
        shed = False
        while not shed:
            try:
                item = queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if isinstance(item, _FeedDone):
                controls.append(item)
            else:
                shed = True
                state.shed += 1
                self._shed_total.inc()
        for control in controls:
            queue.put_nowait(control)
        return shed

    async def _produce_one(self, state: _RunState, feed: RouterFeed) -> None:
        """Concurrent mode: one producer task per feed.  The feed's
        done-marker doubles as this task's terminal marker."""
        try:
            while True:
                event = await self._pull(state, feed)
                if event is None:
                    break
                await self._enqueue(state, event)
        finally:
            await state.queue.put(_FeedDone(feed.router, terminal=True))

    async def _produce_merged(self, state: _RunState) -> None:
        """Deterministic mode: merge every feed in delivery order.
        Per-feed done-markers are non-terminal (the single producer is
        still running); one terminal marker closes the task."""
        try:
            heap: List[Tuple[float, str, int, int, UpdateEvent, RouterFeed]] = []
            tiebreak = 0
            for feed in self._feeds:
                event = await self._pull(state, feed)
                if event is None:
                    await state.queue.put(_FeedDone(feed.router))
                    continue
                tiebreak += 1
                heapq.heappush(
                    heap,
                    (event.emit_ts, event.router, event.uid, tiebreak, event, feed),
                )
            while heap:
                _ts, _router, _uid, _tb, event, feed = heapq.heappop(heap)
                await self._enqueue(state, event)
                replacement = await self._pull(state, feed)
                if replacement is None:
                    await state.queue.put(_FeedDone(feed.router))
                    continue
                tiebreak += 1
                heapq.heappush(
                    heap,
                    (
                        replacement.emit_ts,
                        replacement.router,
                        replacement.uid,
                        tiebreak,
                        replacement,
                        feed,
                    ),
                )
        finally:
            await state.queue.put(_FeedDone("", terminal=True))

    # ------------------------------------------------------------------
    # Consumer
    # ------------------------------------------------------------------

    def _validate_epoch(
        self, state: _RunState, epoch: AssembledEpoch, sealed_at: float
    ) -> None:
        result = state.result
        if self._gate is not None and not self._gate(epoch):
            result.shed_epochs += 1
            self._epochs_shed_total.inc()
            return
        inputs = self._inputs_for(epoch.timestamp)
        with self.tracer.span(
            "stream.epoch",
            category="stream",
            timestamp=epoch.timestamp,
            complete=epoch.complete,
            sealed_by=epoch.sealed_by,
        ) as span:
            if epoch.snapshot is None:
                # Scatter path: the assembler sealed events only; the
                # engine's cached decoder folds them without re-parsing
                # a single path string.
                report = self._engine.validate_events(
                    epoch.events, epoch.timestamp, inputs, topology=self._topology
                )
            else:
                report = self._engine.validate(
                    epoch.snapshot, inputs, topology=self._topology
                )
            span.annotate(updates=epoch.updates, missing=len(epoch.missing))
        result.epochs.append(epoch)
        result.reports.append(report)
        latency = event_loop_time() - sealed_at
        result.epoch_latency_s.append(latency)
        if self.history is not None:
            self.history.record(
                report,
                source="stream",
                mode=getattr(self._engine, "mode", "full"),
                backend=getattr(self._engine, "backend", "python"),
                sealed_by=epoch.sealed_by,
                complete=epoch.complete,
                updates=epoch.updates,
                missing=len(epoch.missing),
                elapsed_s=latency,
                stats=getattr(self._engine, "stats", None),
            )
        if self._on_epoch is not None:
            self._on_epoch(epoch, report, latency)

    async def _consume(self, state: _RunState, remaining: int) -> None:
        """Drain the queue until every producer's terminal marker has
        been seen.  Each producer enqueues its terminal marker last, so
        FIFO order makes ``remaining == 0`` imply every queued event
        and done-marker has already been processed -- no shared
        counter, no window in which a pending marker can be missed."""
        queue = state.queue
        assembler = self._assembler
        while remaining > 0:
            item = await queue.get()
            self._queue_gauge.set(float(queue.qsize()))
            if isinstance(item, _FeedDone):
                if item.terminal:
                    remaining -= 1
                sealed = assembler.mark_done(item.router) if item.router else []
            else:
                sealed = assembler.offer(item)
            if sealed:
                sealed_at = event_loop_time()
                for epoch in sealed:
                    self._validate_epoch(state, epoch, sealed_at)
        drained = assembler.drain()
        if drained:
            sealed_at = event_loop_time()
            for epoch in drained:
                self._validate_epoch(state, epoch, sealed_at)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    async def run_async(self) -> StreamResult:
        """Run the pipeline to completion inside a running loop."""
        state = _RunState(
            queue=asyncio.Queue(maxsize=self.config.queue_size),
            result=StreamResult(),
        )
        if self.config.deterministic:
            producers = [asyncio.ensure_future(self._produce_merged(state))]
        else:
            producers = [
                asyncio.ensure_future(self._produce_one(state, feed))
                for feed in self._feeds
            ]
        try:
            await self._consume(state, remaining=len(producers))
            for task in producers:
                await task
        finally:
            for task in producers:
                if not task.done():
                    task.cancel()
        result = state.result
        result.updates = self._assembler.updates
        result.late_dropped = self._assembler.late_dropped
        result.duplicates = self._assembler.duplicates
        result.backpressure_dropped = state.shed
        result.retries = state.retries
        result.abandoned = tuple(state.abandoned)
        feed_dropped = sum(feed.stats.dropped for feed in self._feeds)
        self._feed_dropped_total.set_to(float(feed_dropped))
        return result

    def run(self) -> StreamResult:
        """Run the pipeline on a fresh event loop (CLI/test entry)."""
        return asyncio.run(self.run_async())


def feed_drop_counts(feeds: Sequence[RouterFeed]) -> Dict[str, int]:
    """Source-side drop counts per router (soak reporting helper)."""
    return {feed.router: feed.stats.dropped for feed in feeds}
