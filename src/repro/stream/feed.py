"""Per-router telemetry feeds with seeded delivery perturbations.

A :class:`RouterFeed` replays one router's slice of an epoch sequence
as timestamped :class:`~repro.stream.events.UpdateEvent` deliveries --
the unit a gNMI subscription would push.  Deliveries are perturbed the
way WAN telemetry actually misbehaves (paper Section 2: late,
duplicated, reordered, lossy feeds), but *deterministically*: every
perturbation decision comes from one :class:`random.Random` seeded
from the feed seed and the router name, so a (seed, epochs,
perturbation) triple always produces the identical delivery sequence.

Perturbations are modelled as virtual-time adjustments:

* **reorder** bumps ``emit_ts`` by a small jitter (intended to stay
  inside the assembler's lateness window, so the update arrives out of
  order but on time);
* **delay** bumps ``emit_ts`` past the lateness window, making the
  update *late* (the assembler drops it and counts it);
* **drop** removes the delivery entirely;
* **duplicate** emits a second delivery carrying the same ``uid``
  (the assembler's dedupe identity);
* **fail** makes one delivery attempt raise
  :class:`~repro.stream.events.FeedError` before succeeding on retry
  (exercises the ingest layer's retry-with-backoff path).

Deliveries come out sorted by ``(emit_ts, uid)`` -- virtual network
arrival order -- via the :meth:`RouterFeed.next_event` cursor, which
holds position across a raised failure so a retry re-reads the same
event.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.stream.events import FeedError, UpdateEvent, reporting_routers, router_updates
from repro.telemetry.snapshot import NetworkSnapshot

__all__ = ["Perturbations", "FeedStats", "RouterFeed", "make_feeds"]


@dataclass(frozen=True)
class Perturbations:
    """Per-delivery perturbation probabilities and magnitudes.

    All probabilities are independent per update.  The default is a
    perfectly behaved feed (every field zero) -- the configuration the
    differential harness uses to prove streamed == batch.

    Attributes:
        reorder: Probability of an in-window ``emit_ts`` jitter.
        duplicate: Probability of a second delivery with the same uid.
        delay: Probability of an out-of-window bump (arrives late).
        drop: Probability the delivery never happens.
        fail: Probability one delivery attempt raises
            :class:`~repro.stream.events.FeedError` first.
        reorder_jitter_s: Maximum in-window jitter, seconds.  Keep it
            below the assembler's lateness window or "reordered"
            updates quietly become late ones.
        delay_s: Minimum out-of-window bump, seconds.  Keep it above
            the lateness window plus the epoch spacing.
        duplicate_jitter_s: Maximum extra jitter on the duplicate copy.
    """

    reorder: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    drop: float = 0.0
    fail: float = 0.0
    reorder_jitter_s: float = 0.4
    delay_s: float = 30.0
    duplicate_jitter_s: float = 0.2

    def __post_init__(self) -> None:
        for name in ("reorder", "duplicate", "delay", "drop", "fail"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p!r}")


@dataclass
class FeedStats:
    """What one feed did to its deliveries (for soak accounting)."""

    updates: int = 0
    emitted: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    reordered: int = 0
    failures: int = 0


def _feed_rng(router: str, seed: int) -> random.Random:
    # crc32, not hash(): feed streams must not vary with PYTHONHASHSEED.
    return random.Random((seed << 32) ^ zlib.crc32(router.encode("utf-8")))


class RouterFeed:
    """One router's perturbed delivery stream over an epoch sequence.

    Args:
        router: The reporting router this feed speaks for.
        epochs: ``(epoch_ts, snapshot)`` pairs, ascending timestamps.
            Only this router's slice of each snapshot is replayed.
        perturb: Delivery perturbations; defaults to a perfect feed.
        seed: Feed seed; combined with the router name so sibling
            feeds built from one seed perturb independently.
    """

    def __init__(
        self,
        router: str,
        epochs: Sequence[Tuple[float, NetworkSnapshot]],
        perturb: Optional[Perturbations] = None,
        seed: int = 0,
    ) -> None:
        self.router = router
        self.perturb = perturb or Perturbations()
        self.stats = FeedStats()
        self._deliveries = self._build(epochs, seed)
        self._pos = 0
        self._failed_once: set = set()
        rng = _feed_rng(router, seed + 1)
        self._fail_at = frozenset(
            i for i in range(len(self._deliveries)) if rng.random() < self.perturb.fail
        )

    def _build(
        self, epochs: Sequence[Tuple[float, NetworkSnapshot]], seed: int
    ) -> List[UpdateEvent]:
        p = self.perturb
        rng = _feed_rng(self.router, seed)
        deliveries: List[Tuple[float, int, int, UpdateEvent]] = []
        order = 0
        uid = 0
        for epoch_ts, snapshot in epochs:
            for path, value, meta in router_updates(snapshot, self.router):
                uid += 1
                self.stats.updates += 1
                if rng.random() < p.drop:
                    self.stats.dropped += 1
                    continue
                emit_ts = epoch_ts
                if rng.random() < p.delay:
                    emit_ts = epoch_ts + p.delay_s * (1.0 + rng.random())
                    self.stats.delayed += 1
                elif rng.random() < p.reorder:
                    emit_ts = epoch_ts + p.reorder_jitter_s * rng.random()
                    self.stats.reordered += 1
                event = UpdateEvent(
                    router=self.router,
                    path=path,
                    epoch_ts=epoch_ts,
                    emit_ts=emit_ts,
                    uid=uid,
                    value=value,
                    meta=meta,
                )
                deliveries.append((emit_ts, uid, order, event))
                order += 1
                if rng.random() < p.duplicate:
                    dup_ts = emit_ts + p.duplicate_jitter_s * rng.random()
                    deliveries.append(
                        (
                            dup_ts,
                            uid,
                            order,
                            UpdateEvent(
                                router=self.router,
                                path=path,
                                epoch_ts=epoch_ts,
                                emit_ts=dup_ts,
                                uid=uid,
                                value=value,
                                meta=meta,
                            ),
                        )
                    )
                    order += 1
                    self.stats.duplicated += 1
        deliveries.sort(key=lambda row: (row[0], row[1], row[2]))
        self.stats.emitted = len(deliveries)
        return [event for _ts, _uid, _order, event in deliveries]

    def __len__(self) -> int:
        return len(self._deliveries)

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._deliveries)

    @property
    def remaining(self) -> int:
        return len(self._deliveries) - self._pos

    def next_event(self) -> Optional[UpdateEvent]:
        """The next delivery, or ``None`` once exhausted.

        A position scheduled to fail raises
        :class:`~repro.stream.events.FeedError` exactly once; the
        cursor does not advance, so the retry returns the event.
        """
        if self._pos >= len(self._deliveries):
            return None
        if self._pos in self._fail_at and self._pos not in self._failed_once:
            self._failed_once.add(self._pos)
            self.stats.failures += 1
            raise FeedError(f"feed {self.router} hiccuped at delivery {self._pos}")
        event = self._deliveries[self._pos]
        self._pos += 1
        return event


def make_feeds(
    epochs: Sequence[Tuple[float, NetworkSnapshot]],
    perturb: Optional[Perturbations] = None,
    seed: int = 0,
) -> Dict[str, RouterFeed]:
    """One feed per router reporting anywhere in the epoch sequence.

    Returns a dict keyed by router name in sorted order, so iterating
    it is deterministic.
    """
    routers: List[str] = []
    seen: set = set()
    for _ts, snapshot in epochs:
        for router in reporting_routers(snapshot):
            if router not in seen:
                seen.add(router)
                routers.append(router)
    return {
        router: RouterFeed(router, epochs, perturb=perturb, seed=seed)
        for router in sorted(routers)
    }
