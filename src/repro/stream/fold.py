"""Cached-decode event folding: sealed events -> snapshot, no re-parse.

The assembler's classic seal path re-parses every delivery's gNMI path
string (:meth:`~repro.telemetry.paths.SignalPath.parse` -- a regex
match) before applying it to the under-construction snapshot; at WAN
scale that per-event parse dominates the "snapshot reassembly" cost the
ROADMAP names.  Path strings are drawn from a per-topology vocabulary
that is stable across epochs, so :class:`EventFolder` decodes each
distinct path **once**, memoizes a pre-bound applier closure, and
thereafter folds events with a single dict lookup per delivery.

Folding is the *same* codec as
:func:`repro.stream.events.apply_update` -- identical merge semantics
for counter and status halves, identical raw-value passthrough
(malformed junk rides the wire untouched), identical dataclass
defaults -- so a folded snapshot is signal-for-signal identical to an
applied one.  The scatter differential in
``tests/stream/test_scatter_differential.py`` holds the two paths to
byte-identical validation reports and provenance across every engine
mode/backend combination.

This is the seam that lets the ingest pipeline run with
``build_snapshots=False`` on the assembler: sealed epochs carry their
sorted event buffers instead of pre-applied snapshots, and
:meth:`~repro.engine.ValidationEngine.validate_events` folds them
through this cache straight into the family dicts the
:class:`~repro.core.vector.model.VectorModel` pack stage scatters into
its slot arrays.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Tuple

from repro.stream.events import UpdateEvent
from repro.telemetry.counters import CounterReading
from repro.telemetry.paths import SignalKind, SignalPath
from repro.telemetry.snapshot import LinkStatusReport, NetworkSnapshot, ProbeResult

__all__ = ["EventFolder"]

#: An applier takes (snapshot, value, meta) and writes one decoded
#: update into the snapshot -- the path is pre-bound at compile time.
_Applier = Callable[[NetworkSnapshot, object, Tuple[Tuple[str, object], ...]], None]


def _compile(path: str) -> _Applier:
    """Decode one path and return its pre-bound applier closure.

    Each closure replicates exactly one branch of
    :func:`repro.stream.events.apply_update`, with the parsed
    ``(kind, node, peer)`` captured so replaying an update costs no
    string work.  Meta pairs are scanned last-wins, matching the
    ``dict(meta)`` semantics of the reference codec.
    """
    parsed = SignalPath.parse(path)
    kind = parsed.kind
    node, peer = parsed.node, parsed.peer

    if kind in (SignalKind.RX_RATE, SignalKind.TX_RATE):
        key = (node, peer or "")
        is_rx = kind is SignalKind.RX_RATE

        def fold_rate(snapshot, value, meta):
            reading = snapshot.counters.get(key)
            if reading is None:
                reading = CounterReading(rx_rate=None, tx_rate=None)
                snapshot.counters[key] = reading
            if is_rx:
                reading.rx_rate = value
            else:
                reading.tx_rate = value
            for name, raw in meta:
                if name == "sequence":
                    reading.sequence = raw
                elif name == "timestamp":
                    reading.timestamp = raw
                elif name == "window_s":
                    reading.window_s = raw

        return fold_rate

    if kind in (SignalKind.OPER_STATUS, SignalKind.ADMIN_STATUS):
        key = (node, peer or "")
        is_oper = kind is SignalKind.OPER_STATUS

        def fold_status(snapshot, value, _meta):
            status = snapshot.link_status.get(key)
            if status is None:
                status = LinkStatusReport(oper_up=None)
                snapshot.link_status[key] = status
            if is_oper:
                status.oper_up = value
            else:
                status.admin_up = value

        return fold_status

    if kind is SignalKind.DRAIN:

        def fold_drain(snapshot, value, _meta):
            snapshot.drains[node] = value

        return fold_drain

    if kind is SignalKind.DRAIN_REASON:

        def fold_reason(snapshot, value, _meta):
            snapshot.drain_reasons[node] = value

        return fold_reason

    if kind is SignalKind.LINK_DRAIN:
        key = (node, peer or "")

        def fold_link_drain(snapshot, value, _meta):
            snapshot.link_drains[key] = value

        return fold_link_drain

    if kind is SignalKind.NODE_DROPS:

        def fold_drops(snapshot, value, _meta):
            snapshot.drops[node] = value

        return fold_drops

    if kind is SignalKind.PROBE:
        key = (node, peer or "")

        def fold_probe(snapshot, value, meta):
            rtt = None
            for name, raw in meta:
                if name == "rtt_ms":
                    rtt = raw
            snapshot.probes[key] = ProbeResult(ok=bool(value), rtt_ms=rtt)

        return fold_probe

    raise ValueError(f"unsupported signal kind {kind!r}")  # pragma: no cover


class EventFolder:
    """Folds sealed update events into snapshots through a decode cache.

    The cache maps path strings to compiled appliers and is *never*
    invalidated: a path's decode is a pure function of the string, so a
    cached entry stays correct across epochs, topologies, and tenants.
    One folder per engine amortizes the whole vocabulary after the
    first epoch.
    """

    def __init__(self) -> None:
        self._appliers: Dict[str, _Applier] = {}

    @property
    def cached_paths(self) -> int:
        """Distinct paths decoded so far (observability only)."""
        return len(self._appliers)

    def fold(self, events: Iterable[UpdateEvent], timestamp: float) -> NetworkSnapshot:
        """Fold one sealed epoch's events into a fresh snapshot.

        Events must arrive in the assembler's sorted ``(router, uid)``
        seal order so the last-write-wins merge matches the reference
        apply path key for key.
        """
        snapshot = NetworkSnapshot(timestamp=timestamp)
        appliers = self._appliers
        for event in events:
            applier = appliers.get(event.path)
            if applier is None:
                applier = appliers[event.path] = _compile(event.path)
            applier(snapshot, event.value, event.meta)
        return snapshot
