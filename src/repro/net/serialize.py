"""Serialization for network objects: topologies and demand matrices.

Operators keep their network models in version-controlled files (the
paper cites model-based management [23, 25, 35]); these round-trippable
dict forms let topologies and matrices be stored as JSON/YAML, diffed,
and loaded back.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.net.demand import DemandMatrix
from repro.net.topology import Link, Node, Topology

__all__ = [
    "topology_to_dict",
    "topology_from_dict",
    "demand_to_dict",
    "demand_from_dict",
]


def topology_to_dict(topology: Topology) -> Dict[str, Any]:
    """A JSON-safe description of a topology.

    Nodes and links are written in the topology's own iteration order,
    not sorted: seeded downstream passes (telemetry jitter, simulators)
    consume randomness in that order, so an order-faithful round trip
    is what makes a deserialized topology behave identically to the
    original.  The output stays deterministic -- insertion order is
    part of the topology.
    """
    return {
        "name": topology.name,
        "nodes": [
            {
                "name": node.name,
                "site": node.site,
                "drained": node.drained,
                "drain_reason": node.drain_reason,
                "vendor": node.vendor,
            }
            for node in topology.nodes()
        ],
        "links": [
            {
                "a": link.a,
                "b": link.b,
                "capacity": link.capacity,
                "drained": link.drained,
            }
            for link in topology.links()
        ],
    }


def topology_from_dict(payload: Dict[str, Any]) -> Topology:
    """Rebuild a topology from :func:`topology_to_dict` output.

    Raises:
        KeyError / TypeError: On malformed payloads (missing fields).
    """
    topology = Topology(payload.get("name", "topology"))
    for node in payload["nodes"]:
        topology.add_node(
            Node(
                node["name"],
                site=node.get("site", ""),
                drained=bool(node.get("drained", False)),
                drain_reason=node.get("drain_reason", ""),
                vendor=node.get("vendor", "vendor-a"),
            )
        )
    for link in payload["links"]:
        topology.add_link(
            Link(
                link["a"],
                link["b"],
                capacity=float(link["capacity"]),
                drained=bool(link.get("drained", False)),
            )
        )
    return topology


def demand_to_dict(demand: DemandMatrix, sparse: bool = True) -> Dict[str, Any]:
    """A JSON-safe demand matrix.

    Args:
        demand: The matrix.
        sparse: Store only non-zero entries (the natural form for the
            heavy-tailed matrices real WANs have).
    """
    if sparse:
        return {
            "nodes": list(demand.nodes),
            "entries": [
                {"src": src, "dst": dst, "rate": rate}
                for src, dst, rate in demand.nonzero_entries()
            ],
        }
    return {
        "nodes": list(demand.nodes),
        "matrix": demand.to_array().tolist(),
    }


def demand_from_dict(payload: Dict[str, Any]) -> DemandMatrix:
    """Rebuild a demand matrix from :func:`demand_to_dict` output."""
    nodes: List[str] = list(payload["nodes"])
    if "matrix" in payload:
        return DemandMatrix(nodes, payload["matrix"])
    demand = DemandMatrix(nodes)
    for entry in payload.get("entries", []):
        demand[entry["src"], entry["dst"]] = float(entry["rate"])
    return demand
