"""Path computation over WAN topologies.

Provides the routing primitives the traffic-engineering controller and
the ground-truth simulator share: shortest paths, k-shortest simple
paths (Yen's algorithm), and ECMP path sets.  All functions operate on
:class:`repro.net.topology.Topology` and return paths as node-name
lists.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.topology import Topology, TopologyError

__all__ = [
    "Path",
    "NoRouteError",
    "shortest_path",
    "shortest_path_lengths",
    "k_shortest_paths",
    "ecmp_paths",
    "path_links",
    "path_cost",
]


class NoRouteError(TopologyError):
    """Raised when no path exists between two routers."""


@dataclass(frozen=True)
class Path:
    """An ordered sequence of router names from source to destination."""

    nodes: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.nodes) < 1:
            raise TopologyError("path must contain at least one node")
        if len(set(self.nodes)) != len(self.nodes):
            raise TopologyError(f"path revisits a node: {self.nodes}")

    @property
    def source(self) -> str:
        return self.nodes[0]

    @property
    def destination(self) -> str:
        return self.nodes[-1]

    @property
    def hops(self) -> int:
        return len(self.nodes) - 1

    def edges(self) -> List[Tuple[str, str]]:
        """Directed edges traversed by the path, in order."""
        return list(zip(self.nodes[:-1], self.nodes[1:]))

    def __iter__(self):
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)


CostFn = Callable[[str, str], float]


def _unit_cost(_src: str, _dst: str) -> float:
    return 1.0


def _validate_endpoints(topology: Topology, source: str, destination: str) -> None:
    for endpoint in (source, destination):
        if not topology.has_node(endpoint):
            raise TopologyError(f"unknown node {endpoint!r}")


def shortest_path(
    topology: Topology,
    source: str,
    destination: str,
    cost: Optional[CostFn] = None,
) -> Path:
    """Dijkstra shortest path from ``source`` to ``destination``.

    Args:
        topology: The graph to route over.
        source: Origin router name.
        destination: Target router name.
        cost: Optional per-directed-edge cost function; defaults to hop
            count.  Costs must be non-negative.

    Raises:
        NoRouteError: If the destination is unreachable.
    """
    _validate_endpoints(topology, source, destination)
    cost = cost or _unit_cost
    if source == destination:
        return Path((source,))

    distances: Dict[str, float] = {source: 0.0}
    previous: Dict[str, str] = {}
    # Heap entries carry the node name as a tiebreaker so exploration
    # order (and thus path selection among equal-cost routes) is
    # deterministic.
    frontier: List[Tuple[float, str]] = [(0.0, source)]
    visited = set()

    while frontier:
        dist, here = heapq.heappop(frontier)
        if here in visited:
            continue
        visited.add(here)
        if here == destination:
            break
        for neighbor in sorted(topology.neighbors(here)):
            if neighbor in visited:
                continue
            edge_cost = cost(here, neighbor)
            if edge_cost < 0:
                raise ValueError(f"negative edge cost on {here}->{neighbor}")
            candidate = dist + edge_cost
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                previous[neighbor] = here
                heapq.heappush(frontier, (candidate, neighbor))

    if destination not in distances:
        raise NoRouteError(f"no route from {source!r} to {destination!r}")

    nodes = [destination]
    while nodes[-1] != source:
        nodes.append(previous[nodes[-1]])
    nodes.reverse()
    return Path(tuple(nodes))


def shortest_path_lengths(
    topology: Topology, source: str, cost: Optional[CostFn] = None
) -> Dict[str, float]:
    """Single-source shortest-path distances to every reachable node."""
    if not topology.has_node(source):
        raise TopologyError(f"unknown node {source!r}")
    cost = cost or _unit_cost
    distances: Dict[str, float] = {source: 0.0}
    frontier: List[Tuple[float, str]] = [(0.0, source)]
    visited = set()
    while frontier:
        dist, here = heapq.heappop(frontier)
        if here in visited:
            continue
        visited.add(here)
        for neighbor in sorted(topology.neighbors(here)):
            candidate = dist + cost(here, neighbor)
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                heapq.heappush(frontier, (candidate, neighbor))
    return distances


def k_shortest_paths(
    topology: Topology,
    source: str,
    destination: str,
    k: int,
    cost: Optional[CostFn] = None,
) -> List[Path]:
    """Yen's algorithm for the k shortest loop-free paths.

    Returns at most ``k`` paths ordered by total cost (ties broken by
    node-name order, deterministically).  Returns fewer than ``k``
    paths when the graph does not contain that many simple paths.

    Raises:
        NoRouteError: If not even one path exists.
        ValueError: If ``k`` is not positive.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    cost = cost or _unit_cost

    best = shortest_path(topology, source, destination, cost)
    found: List[Path] = [best]
    candidates: List[Tuple[float, Tuple[str, ...]]] = []
    seen_candidates = {best.nodes}

    for _ in range(1, k):
        prev_path = found[-1].nodes
        for spur_index in range(len(prev_path) - 1):
            spur_node = prev_path[spur_index]
            root = prev_path[: spur_index + 1]

            pruned = topology.copy(f"{topology.name}:yen")
            # Remove edges that would recreate already-found paths
            # sharing this root.
            for path in found:
                nodes = path.nodes
                if len(nodes) > spur_index and nodes[: spur_index + 1] == root:
                    if pruned.link_between(nodes[spur_index], nodes[spur_index + 1]):
                        pruned.remove_link(nodes[spur_index], nodes[spur_index + 1])
            # Remove root nodes (except the spur) to keep paths simple.
            for node in root[:-1]:
                for neighbor in list(pruned.neighbors(node)):
                    pruned.remove_link(node, neighbor)

            try:
                spur_path = shortest_path(pruned, spur_node, destination, cost)
            except NoRouteError:
                continue

            total_nodes = root[:-1] + spur_path.nodes
            if total_nodes in seen_candidates:
                continue
            seen_candidates.add(total_nodes)
            total_cost = sum(cost(u, v) for u, v in zip(total_nodes[:-1], total_nodes[1:]))
            heapq.heappush(candidates, (total_cost, total_nodes))

        if not candidates:
            break
        _, nodes = heapq.heappop(candidates)
        found.append(Path(nodes))

    return found


def ecmp_paths(
    topology: Topology,
    source: str,
    destination: str,
    max_paths: int = 8,
    cost: Optional[CostFn] = None,
) -> List[Path]:
    """All equal-cost shortest paths, capped at ``max_paths``.

    Computed as the k-shortest paths filtered to those matching the
    minimum cost, which keeps the implementation shared and the output
    deterministic.
    """
    paths = k_shortest_paths(topology, source, destination, max_paths, cost)
    cost = cost or _unit_cost
    best_cost = path_cost(paths[0], cost)
    return [p for p in paths if path_cost(p, cost) <= best_cost + 1e-12]


def path_cost(path: Path, cost: Optional[CostFn] = None) -> float:
    """Total cost of a path under a per-edge cost function."""
    cost = cost or _unit_cost
    return sum(cost(u, v) for u, v in path.edges())


def path_links(topology: Topology, path: Path) -> List[str]:
    """Canonical link names traversed by ``path``.

    Raises:
        TopologyError: If the path uses a non-existent link.
    """
    names = []
    for u, v in path.edges():
        link = topology.link_between(u, v)
        if link is None:
            raise TopologyError(f"path uses missing link {u}-{v}")
        names.append(link.name)
    return names
