"""Network substrate: topology, routing, demand, flows, and simulation.

This subpackage is the simulated WAN the paper's analysis runs on.  It
produces the *ground truth* -- actual per-edge traffic, external
ingress/egress, and drops -- that the telemetry layer samples and that
the experiments compare controller behaviour against.
"""

from repro.net.demand import (
    DemandError,
    DemandMatrix,
    bimodal_demand,
    drop_ingress,
    gravity_demand,
    lognormal_demand,
    scale_entries,
    throttle,
    uniform_demand,
    zero_entries,
)
from repro.net.flows import (
    FlowAssignment,
    FlowRule,
    PlacementError,
    edge_offered_loads,
    place_flows,
)
from repro.net.routing import (
    NoRouteError,
    Path,
    ecmp_paths,
    k_shortest_paths,
    path_cost,
    path_links,
    shortest_path,
    shortest_path_lengths,
)
from repro.net.realize import realize_traffic
from repro.net.serialize import (
    demand_from_dict,
    demand_to_dict,
    topology_from_dict,
    topology_to_dict,
)
from repro.net.simulation import GroundTruth, NetworkSimulator, SimulationError
from repro.net.topology import EXTERNAL_PEER, Interface, Link, Node, Topology, TopologyError

__all__ = [
    "DemandError",
    "DemandMatrix",
    "EXTERNAL_PEER",
    "FlowAssignment",
    "FlowRule",
    "GroundTruth",
    "Interface",
    "Link",
    "NetworkSimulator",
    "NoRouteError",
    "Node",
    "Path",
    "PlacementError",
    "SimulationError",
    "Topology",
    "TopologyError",
    "bimodal_demand",
    "demand_from_dict",
    "demand_to_dict",
    "drop_ingress",
    "ecmp_paths",
    "edge_offered_loads",
    "gravity_demand",
    "k_shortest_paths",
    "lognormal_demand",
    "path_cost",
    "path_links",
    "place_flows",
    "realize_traffic",
    "scale_entries",
    "shortest_path",
    "shortest_path_lengths",
    "throttle",
    "topology_from_dict",
    "topology_to_dict",
    "uniform_demand",
    "zero_entries",
]
