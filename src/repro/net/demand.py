"""Traffic demand matrices and their generators.

The controller's demand input is a matrix ``D`` where ``D[i][j]`` is the
rate of traffic entering the WAN at ingress router ``i`` destined for
egress router ``j`` (paper Section 4.1, citing the traffic-matrix primer
[36]).  This module provides the matrix type, synthetic generators
(gravity model and friends -- standing in for the SNDlib Abilene traces,
see DESIGN.md substitutions), and the perturbation operations used by
the paper's Section 4.1 sensitivity study.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DemandMatrix",
    "DemandError",
    "gravity_demand",
    "uniform_demand",
    "bimodal_demand",
    "zero_entries",
    "scale_entries",
    "drop_ingress",
    "throttle",
]


class DemandError(ValueError):
    """Raised on invalid demand-matrix operations."""


class DemandMatrix:
    """An ingress/egress traffic-rate matrix over a fixed router set.

    The matrix is dense (numpy-backed) with a zero diagonal: a router
    does not send WAN demand to itself.

    Example:
        >>> d = DemandMatrix(["a", "b"], [[0.0, 3.0], [1.0, 0.0]])
        >>> d["a", "b"]
        3.0
        >>> d.total()
        4.0
    """

    def __init__(self, nodes: Sequence[str], values: Optional[object] = None) -> None:
        if len(set(nodes)) != len(nodes):
            raise DemandError("duplicate node names in demand matrix")
        if not nodes:
            raise DemandError("demand matrix needs at least one node")
        self._nodes: Tuple[str, ...] = tuple(nodes)
        self._index: Dict[str, int] = {n: i for i, n in enumerate(self._nodes)}
        n = len(self._nodes)
        if values is None:
            self._values = np.zeros((n, n), dtype=float)
        else:
            array = np.asarray(values, dtype=float)
            if array.shape != (n, n):
                raise DemandError(f"expected a {n}x{n} matrix, got shape {array.shape}")
            self._values = array.copy()
        if np.any(self._values < 0):
            raise DemandError("demand rates must be non-negative")
        np.fill_diagonal(self._values, 0.0)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> Tuple[str, ...]:
        return self._nodes

    @property
    def size(self) -> int:
        return len(self._nodes)

    def __getitem__(self, key: Tuple[str, str]) -> float:
        src, dst = key
        return float(self._values[self._index[src], self._index[dst]])

    def __setitem__(self, key: Tuple[str, str], rate: float) -> None:
        src, dst = key
        if src == dst:
            raise DemandError("diagonal demand entries must stay zero")
        if rate < 0:
            raise DemandError(f"negative demand {rate} for {src}->{dst}")
        self._values[self._index[src], self._index[dst]] = rate

    def to_array(self) -> np.ndarray:
        """A defensive copy of the underlying matrix."""
        return self._values.copy()

    def entries(self) -> Iterator[Tuple[str, str, float]]:
        """All off-diagonal entries, including zeros, row-major."""
        for i, src in enumerate(self._nodes):
            for j, dst in enumerate(self._nodes):
                if i != j:
                    yield src, dst, float(self._values[i, j])

    def nonzero_entries(self) -> List[Tuple[str, str, float]]:
        return [(s, d, r) for s, d, r in self.entries() if r > 0]

    def row_sum(self, src: str) -> float:
        """Total demand *from* ``src`` -- its expected external ingress."""
        return float(self._values[self._index[src]].sum())

    def column_sum(self, dst: str) -> float:
        """Total demand *to* ``dst`` -- its expected external egress."""
        return float(self._values[:, self._index[dst]].sum())

    def total(self) -> float:
        return float(self._values.sum())

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def copy(self) -> "DemandMatrix":
        return DemandMatrix(self._nodes, self._values)

    def scaled(self, factor: float) -> "DemandMatrix":
        """A copy with every rate multiplied by ``factor`` (>= 0)."""
        if factor < 0:
            raise DemandError(f"scale factor must be non-negative, got {factor}")
        return DemandMatrix(self._nodes, self._values * factor)

    def restricted_to(self, nodes: Sequence[str]) -> "DemandMatrix":
        """A sub-matrix over a subset of routers (order preserved)."""
        missing = [n for n in nodes if n not in self._index]
        if missing:
            raise DemandError(f"unknown nodes {missing}")
        idx = [self._index[n] for n in nodes]
        return DemandMatrix(list(nodes), self._values[np.ix_(idx, idx)])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DemandMatrix):
            return NotImplemented
        return self._nodes == other._nodes and np.array_equal(self._values, other._values)

    def __hash__(self) -> int:  # pragma: no cover - mutable container
        raise TypeError("DemandMatrix is mutable and unhashable")

    def allclose(self, other: "DemandMatrix", rel_tol: float = 1e-9) -> bool:
        """Approximate equality with relative tolerance."""
        if self._nodes != other._nodes:
            return False
        return bool(np.allclose(self._values, other._values, rtol=rel_tol, atol=1e-12))

    def __repr__(self) -> str:
        return f"DemandMatrix(nodes={self.size}, total={self.total():.3f})"


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------


def gravity_demand(
    nodes: Sequence[str],
    total: float,
    seed: int = 0,
    weight_spread: float = 2.0,
    weights: Optional[Mapping[str, float]] = None,
) -> DemandMatrix:
    """Gravity-model demand: ``D[i][j] ∝ w_i * w_j``.

    Node weights are drawn log-uniformly over ``[1, weight_spread]`` so
    bigger "cities" both send and receive more, which matches the
    heavy-row/heavy-column structure of real WAN matrices (the property
    the Section 4.1 study depends on).

    Args:
        nodes: Router names.
        total: Desired sum over all entries.
        seed: RNG seed for reproducibility.
        weight_spread: Ratio between the largest and smallest possible
            node weight (1.0 gives a uniform matrix).
        weights: Optional explicit per-node weights; nodes present here
            use the given weight, others draw randomly.  Use to model
            known-small sites (e.g. Abilene's M5 testbed router).
    """
    if total < 0:
        raise DemandError(f"total demand must be non-negative, got {total}")
    if weight_spread < 1.0:
        raise DemandError(f"weight_spread must be >= 1, got {weight_spread}")
    explicit = dict(weights or {})
    for node, weight in explicit.items():
        if weight < 0:
            raise DemandError(f"negative weight for {node!r}")
    rng = random.Random(seed)
    weights_array = [
        explicit.get(node, None) for node in nodes
    ]
    weights = np.array(
        [
            weight if weight is not None else weight_spread ** rng.random()
            for weight in weights_array
        ],
        dtype=float,
    )
    raw = np.outer(weights, weights)
    np.fill_diagonal(raw, 0.0)
    denominator = raw.sum()
    values = raw * (total / denominator) if denominator > 0 else raw
    return DemandMatrix(nodes, values)


def lognormal_demand(
    nodes: Sequence[str],
    total: float,
    sigma: float = 1.8,
    seed: int = 0,
) -> DemandMatrix:
    """Heavy-tailed demand: entries i.i.d. LogNormal(0, sigma^2), normalized.

    Real WAN traffic matrices (including the Abilene traces the paper's
    Section 4.1 study uses) are strongly heavy-tailed: a few elephant
    pairs dominate while many pairs carry near-negligible traffic.  The
    tail weight is what makes small missing-entry perturbations hard --
    zeroing a pair that was already tiny moves row/column sums by less
    than the tolerance -- so detection-accuracy studies must use a
    generator with a realistic tail.

    Args:
        nodes: Router names.
        total: Desired sum over all entries.
        sigma: Log-scale standard deviation; ~1.5-2.0 matches published
            traffic-matrix fits.
        seed: RNG seed.
    """
    if total < 0:
        raise DemandError(f"total demand must be non-negative, got {total}")
    if sigma < 0:
        raise DemandError(f"sigma must be non-negative, got {sigma}")
    rng = np.random.default_rng(seed)
    n = len(nodes)
    values = rng.lognormal(mean=0.0, sigma=sigma, size=(n, n))
    np.fill_diagonal(values, 0.0)
    denominator = values.sum()
    if denominator > 0:
        values *= total / denominator
    return DemandMatrix(nodes, values)


def uniform_demand(nodes: Sequence[str], rate: float) -> DemandMatrix:
    """Every ordered router pair demands exactly ``rate``."""
    if rate < 0:
        raise DemandError(f"rate must be non-negative, got {rate}")
    n = len(nodes)
    values = np.full((n, n), rate, dtype=float)
    return DemandMatrix(nodes, values)


def bimodal_demand(
    nodes: Sequence[str],
    total: float,
    elephant_fraction: float = 0.2,
    elephant_share: float = 0.8,
    seed: int = 0,
) -> DemandMatrix:
    """Elephant/mice demand: few pairs carry most of the traffic.

    Args:
        nodes: Router names.
        total: Desired sum over all entries.
        elephant_fraction: Fraction of ordered pairs that are elephants.
        elephant_share: Fraction of ``total`` carried by elephants.
        seed: RNG seed.
    """
    if not 0 < elephant_fraction < 1:
        raise DemandError("elephant_fraction must be in (0, 1)")
    if not 0 < elephant_share < 1:
        raise DemandError("elephant_share must be in (0, 1)")
    rng = random.Random(seed)
    pairs = [(s, d) for s in nodes for d in nodes if s != d]
    rng.shuffle(pairs)
    num_elephants = max(1, int(len(pairs) * elephant_fraction))
    elephants = pairs[:num_elephants]
    mice = pairs[num_elephants:]

    matrix = DemandMatrix(nodes)
    for src, dst in elephants:
        matrix[src, dst] = elephant_share * total / num_elephants
    if mice:
        for src, dst in mice:
            matrix[src, dst] = (1.0 - elephant_share) * total / len(mice)
    return matrix


# ----------------------------------------------------------------------
# Perturbations (Section 4.1 sensitivity study)
# ----------------------------------------------------------------------


def zero_entries(matrix: DemandMatrix, count: int, seed: int = 0) -> DemandMatrix:
    """Zero out ``count`` random non-zero entries.

    This mimics the "missing demand" bugs of Section 2.2: a buggy
    demand-instrumentation rollout silently drops part of the demand.

    Raises:
        DemandError: If the matrix has fewer than ``count`` non-zero
            entries.
    """
    if count < 0:
        raise DemandError(f"count must be non-negative, got {count}")
    candidates = matrix.nonzero_entries()
    if count > len(candidates):
        raise DemandError(
            f"cannot zero {count} entries; only {len(candidates)} are non-zero"
        )
    rng = random.Random(seed)
    chosen = rng.sample(candidates, count)
    perturbed = matrix.copy()
    for src, dst, _rate in chosen:
        perturbed[src, dst] = 0.0
    return perturbed


def scale_entries(
    matrix: DemandMatrix, count: int, factor: float, seed: int = 0
) -> DemandMatrix:
    """Multiply ``count`` random non-zero entries by ``factor``.

    Models partial mis-aggregation (e.g. an entry counted twice with
    ``factor=2``, or half-reported with ``factor=0.5``).
    """
    if count < 0:
        raise DemandError(f"count must be non-negative, got {count}")
    if factor < 0:
        raise DemandError(f"factor must be non-negative, got {factor}")
    candidates = matrix.nonzero_entries()
    if count > len(candidates):
        raise DemandError(
            f"cannot scale {count} entries; only {len(candidates)} are non-zero"
        )
    rng = random.Random(seed)
    chosen = rng.sample(candidates, count)
    perturbed = matrix.copy()
    for src, dst, rate in chosen:
        perturbed[src, dst] = rate * factor
    return perturbed


def drop_ingress(matrix: DemandMatrix, node: str) -> DemandMatrix:
    """Zero an entire ingress row -- one router's demand goes missing."""
    perturbed = matrix.copy()
    for dst in matrix.nodes:
        if dst != node:
            perturbed[node, dst] = 0.0
    return perturbed


def throttle(matrix: DemandMatrix, fraction: float) -> DemandMatrix:
    """Uniformly reduce all demand to ``fraction`` of its value.

    Models the Section 2.2 outage where end hosts throttled traffic so
    the *measured* demand exceeded what actually entered the network.
    """
    if not 0 <= fraction <= 1:
        raise DemandError(f"fraction must be in [0, 1], got {fraction}")
    return matrix.scaled(fraction)
