"""Ground-truth traffic simulation.

Given a topology and a demand matrix, the simulator places flows and
runs a fluid model with per-edge proportional drops to a fixed point.
The output, :class:`GroundTruth`, is the *actual* state of the network:
post-drop traffic on every directed edge, external ingress/egress at
every router, and per-router drop totals.  The telemetry layer samples
this ground truth (with noise and injected bugs) to produce the signals
Hodor collects; flow conservation holds on the ground truth *exactly*,
which is what makes the paper's R2 redundancy sound.

Dataplane blackholes model the paper's Section 4.2 "semantically
incorrect" topology inputs: a link whose status is up but which cannot
actually forward traffic (ACL misconfiguration, dataplane bug).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.net.demand import DemandMatrix
from repro.net.flows import FlowAssignment, place_flows
from repro.net.topology import Topology, TopologyError

__all__ = ["GroundTruth", "NetworkSimulator", "SimulationError"]

#: Convergence tolerance for the fluid drop model.
_FLUID_TOLERANCE = 1e-9
_FLUID_MAX_ITERATIONS = 100


class SimulationError(RuntimeError):
    """Raised when the simulator cannot produce a consistent state."""


@dataclass
class GroundTruth:
    """The actual state of the network for one simulation epoch.

    All rates are post-drop actuals.  Flow conservation holds exactly:
    for every router ``v``,
    ``ext_in[v] + sum(in-edges) == ext_out[v] + sum(out-edges) + dropped[v]``.

    Attributes:
        topology: The topology that was simulated (as given, including
            drained gear).
        demand: The true offered demand.
        assignment: The flow placement that was simulated.
        edge_flows: Transmitted (post-drop) rate per directed edge.
        edge_arrivals: Rate arriving at the head of each directed edge
            before that edge's own drop.
        ext_in: Traffic admitted into the WAN at each router.
        ext_out: Traffic delivered out of the WAN at each router.
        dropped: Traffic dropped at each router (attributed to the
            transmitting side of oversubscribed or blackholed edges).
        delivered: Post-drop delivered rate per ingress/egress pair.
        blackholes: Directed edges that silently drop all traffic.
    """

    topology: Topology
    demand: DemandMatrix
    assignment: FlowAssignment
    edge_flows: Dict[Tuple[str, str], float]
    edge_arrivals: Dict[Tuple[str, str], float]
    ext_in: Dict[str, float]
    ext_out: Dict[str, float]
    dropped: Dict[str, float]
    delivered: Dict[Tuple[str, str], float]
    blackholes: FrozenSet[Tuple[str, str]] = frozenset()

    def flow_on(self, src: str, dst: str) -> float:
        """Transmitted rate on directed edge ``src -> dst`` (0 if unused)."""
        return self.edge_flows.get((src, dst), 0.0)

    def utilization(self, src: str, dst: str) -> float:
        """Post-drop utilization of a directed edge."""
        link = self.topology.link_between(src, dst)
        if link is None:
            raise TopologyError(f"no link between {src!r} and {dst!r}")
        return self.flow_on(src, dst) / link.capacity

    def max_link_utilization(self) -> float:
        """The network-wide MLU over all directed edges (0 when idle)."""
        mlu = 0.0
        for src, dst in self.topology.directed_edges():
            mlu = max(mlu, self.utilization(src, dst))
        return mlu

    def total_dropped(self) -> float:
        return sum(self.dropped.values())

    def total_delivered(self) -> float:
        return sum(self.delivered.values())

    def loss_rate(self) -> float:
        """Fraction of admitted traffic that was dropped."""
        admitted = sum(self.ext_in.values())
        if admitted <= 0:
            return 0.0
        return self.total_dropped() / admitted

    def congested_edges(self, threshold: float = 1.0 - 1e-9) -> List[Tuple[str, str]]:
        """Directed edges at or above a utilization threshold."""
        return [
            (src, dst)
            for src, dst in self.topology.directed_edges()
            if self.utilization(src, dst) >= threshold
        ]

    def conservation_residual(self, node: str) -> float:
        """Flow-conservation residual at a router (≈0 by construction)."""
        inbound = self.ext_in.get(node, 0.0) + sum(
            rate for (u, v), rate in self.edge_flows.items() if v == node
        )
        outbound = self.ext_out.get(node, 0.0) + sum(
            rate for (u, v), rate in self.edge_flows.items() if u == node
        )
        return inbound - outbound - self.dropped.get(node, 0.0)


class NetworkSimulator:
    """Routes demand over a topology and computes ground truth.

    Example:
        >>> from repro.topologies import abilene
        >>> from repro.net.demand import gravity_demand
        >>> topo = abilene()
        >>> demand = gravity_demand(topo.node_names(), total=200.0, seed=1)
        >>> truth = NetworkSimulator(topo, demand).run()
        >>> round(truth.conservation_residual("atla"), 9)
        0.0
    """

    def __init__(
        self,
        topology: Topology,
        demand: DemandMatrix,
        strategy: str = "ecmp",
        k: int = 4,
        blackholes: Iterable[Tuple[str, str]] = (),
        respect_drains: bool = True,
    ) -> None:
        self._topology = topology
        self._demand = demand
        self._strategy = strategy
        self._k = k
        self._respect_drains = respect_drains
        self._blackholes = frozenset(blackholes)
        for src, dst in self._blackholes:
            if topology.link_between(src, dst) is None:
                raise SimulationError(f"blackhole on missing edge {src}->{dst}")

    def run(self) -> GroundTruth:
        """Place flows and run the fluid drop model to a fixed point."""
        assignment = place_flows(
            self._topology,
            self._demand,
            strategy=self._strategy,
            k=self._k,
            respect_drains=self._respect_drains,
        )
        return self.evaluate(assignment)

    def evaluate(self, assignment: FlowAssignment) -> GroundTruth:
        """Run the fluid model for an externally supplied placement.

        Used by the control layer to measure what a controller's path
        allocation (computed from possibly *incorrect* inputs) does to
        the real network.
        """
        capacity: Dict[Tuple[str, str], float] = {}
        for u, v in self._topology.directed_edges():
            link = self._topology.link_between(u, v)
            assert link is not None  # directed_edges only yields real links
            capacity[(u, v)] = link.capacity
        survival: Dict[Tuple[str, str], float] = {edge: 1.0 for edge in capacity}
        for edge in self._blackholes:
            survival[edge] = 0.0

        flows = [
            (src, dst, rule.rate, rule.path.edges())
            for src, dst, rule in assignment.iter_rules()
        ]
        for src, dst, _rate, edges in flows:
            for edge in edges:
                if edge not in capacity:
                    raise SimulationError(
                        f"flow {src}->{dst} routed over missing edge {edge}"
                    )

        arrivals: Dict[Tuple[str, str], float] = {}
        for _ in range(_FLUID_MAX_ITERATIONS):
            arrivals = {edge: 0.0 for edge in capacity}
            for _src, _dst, rate, edges in flows:
                remaining = rate
                for edge in edges:
                    arrivals[edge] += remaining
                    remaining *= survival[edge]
            updated = {}
            for edge, arriving in arrivals.items():
                if edge in self._blackholes:
                    updated[edge] = 0.0
                elif arriving > capacity[edge]:
                    updated[edge] = capacity[edge] / arriving
                else:
                    updated[edge] = 1.0
            delta = max(abs(updated[e] - survival[e]) for e in capacity) if capacity else 0.0
            survival = updated
            if delta < _FLUID_TOLERANCE:
                break

        edge_flows = {edge: arrivals.get(edge, 0.0) * survival[edge] for edge in capacity}

        ext_in: Dict[str, float] = {n: 0.0 for n in self._topology.node_names()}
        ext_out: Dict[str, float] = {n: 0.0 for n in self._topology.node_names()}
        delivered: Dict[Tuple[str, str], float] = {}
        for src, dst, rate, edges in flows:
            ext_in[src] += rate
            through = rate
            for edge in edges:
                through *= survival[edge]
            ext_out[dst] += through
            delivered[(src, dst)] = delivered.get((src, dst), 0.0) + through

        dropped: Dict[str, float] = {n: 0.0 for n in self._topology.node_names()}
        for (u, _v), arriving in arrivals.items():
            lost = arriving - edge_flows[(u, _v)]
            if lost > 0:
                dropped[u] += lost

        return GroundTruth(
            topology=self._topology,
            demand=self._demand,
            assignment=assignment,
            edge_flows=edge_flows,
            edge_arrivals=arrivals,
            ext_in=ext_in,
            ext_out=ext_out,
            dropped=dropped,
            delivered=delivered,
            blackholes=self._blackholes,
        )
