"""Flow placement: mapping demand onto network paths.

A :class:`FlowAssignment` records, for every ingress/egress pair with
non-zero demand, the set of paths the traffic uses and the offered rate
on each path.  Placement strategies:

- ``single``: all traffic on the one shortest path,
- ``ecmp``: split evenly over all equal-cost shortest paths,
- ``kshortest``: split evenly over the k shortest simple paths.

The ground-truth simulator (:mod:`repro.net.simulation`) and the TE
controller (:mod:`repro.control.te`) both build on these primitives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.net.demand import DemandMatrix
from repro.net.routing import NoRouteError, Path, ecmp_paths, k_shortest_paths, shortest_path
from repro.net.topology import Topology, TopologyError

__all__ = [
    "FlowRule",
    "FlowAssignment",
    "PlacementError",
    "place_flows",
    "edge_offered_loads",
]


class PlacementError(TopologyError):
    """Raised when demand cannot be placed on the topology."""


@dataclass(frozen=True)
class FlowRule:
    """One path carrying (part of) an ingress/egress pair's demand."""

    path: Path
    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise PlacementError(f"negative flow rate {self.rate}")


@dataclass
class FlowAssignment:
    """Paths and rates for every routed ingress/egress pair.

    Attributes:
        rules: Mapping from (ingress, egress) to the flow rules placed
            for that pair.
        unrouted: Demand that could not be placed (no path existed),
            as (ingress, egress) -> rate.  Unrouted demand never enters
            the network: it shows up in *measured* end-host demand but
            not in interface counters, exactly the mismatch dynamic
            checking is designed to surface.
    """

    rules: Dict[Tuple[str, str], List[FlowRule]] = field(default_factory=dict)
    unrouted: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def pairs(self) -> List[Tuple[str, str]]:
        return list(self.rules)

    def rate_for(self, src: str, dst: str) -> float:
        """Total offered rate placed for one pair."""
        return sum(rule.rate for rule in self.rules.get((src, dst), ()))

    def total_rate(self) -> float:
        return sum(rule.rate for rules in self.rules.values() for rule in rules)

    def total_unrouted(self) -> float:
        return sum(self.unrouted.values())

    def iter_rules(self) -> Iterator[Tuple[str, str, FlowRule]]:
        for (src, dst), rules in self.rules.items():
            for rule in rules:
                yield src, dst, rule

    def paths_for(self, src: str, dst: str) -> List[Path]:
        return [rule.path for rule in self.rules.get((src, dst), ())]


def place_flows(
    topology: Topology,
    demand: DemandMatrix,
    strategy: str = "ecmp",
    k: int = 4,
    respect_drains: bool = True,
) -> FlowAssignment:
    """Place every demand entry onto paths in ``topology``.

    Args:
        topology: The serving topology.  When ``respect_drains`` is
            true, drained nodes/links are excluded first (drained gear
            carries no traffic by definition).
        demand: The demand matrix; its node set may include routers the
            topology lacks (they become unrouted demand).
        strategy: ``"single"``, ``"ecmp"``, or ``"kshortest"``.
        k: Path budget for ``kshortest`` (and ECMP's path cap).

    Returns:
        A :class:`FlowAssignment` covering all non-zero demand entries.
    """
    if strategy not in ("single", "ecmp", "kshortest"):
        raise PlacementError(f"unknown placement strategy {strategy!r}")
    serving = topology.without_drained() if respect_drains else topology

    assignment = FlowAssignment()
    for src, dst, rate in demand.nonzero_entries():
        if not serving.has_node(src) or not serving.has_node(dst):
            assignment.unrouted[(src, dst)] = rate
            continue
        try:
            if strategy == "single":
                paths = [shortest_path(serving, src, dst)]
            elif strategy == "ecmp":
                paths = ecmp_paths(serving, src, dst, max_paths=k)
            else:
                paths = k_shortest_paths(serving, src, dst, k)
        except NoRouteError:
            assignment.unrouted[(src, dst)] = rate
            continue
        share = rate / len(paths)
        assignment.rules[(src, dst)] = [FlowRule(path, share) for path in paths]
    return assignment


def edge_offered_loads(assignment: FlowAssignment) -> Dict[Tuple[str, str], float]:
    """Offered (pre-drop) load per directed edge implied by an assignment."""
    loads: Dict[Tuple[str, str], float] = {}
    for _src, _dst, rule in assignment.iter_rules():
        for edge in rule.path.edges():
            loads[edge] = loads.get(edge, 0.0) + rule.rate
    return loads
