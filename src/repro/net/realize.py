"""Traffic realization: what hosts actually send over programmed paths.

The controller sizes paths for the demand it *believes*; the hosts send
the demand that is *true*.  This module reconciles the two, which is
the mechanism by which incorrect demand inputs become congestion (paper
Section 2.2: "the routes programmed by the controller did not take into
account a significant fraction of the demand").

Rules, per ingress/egress pair with true rate ``r``:

- The controller programmed paths for the pair: the true traffic
  follows those paths, split in the same proportions (the programmed
  split is a forwarding configuration; it does not rate-limit).
- The controller programmed nothing for the pair (believed rate zero,
  or believed the pair unroutable): traffic falls back to the default
  IGP route -- the shortest path on the *actually live* topology -- or
  is unrouted if no live path exists.
"""

from __future__ import annotations


from repro.net.demand import DemandMatrix
from repro.net.flows import FlowAssignment, FlowRule
from repro.net.routing import NoRouteError, shortest_path
from repro.net.topology import Topology

__all__ = ["realize_traffic"]


def realize_traffic(
    programmed: FlowAssignment,
    true_demand: DemandMatrix,
    live_topology: Topology,
) -> FlowAssignment:
    """Scale a programmed allocation to the traffic hosts actually send.

    Args:
        programmed: The controller's allocation (rates reflect believed
            demand).
        true_demand: What hosts actually offer.
        live_topology: The actually-usable graph (physically up,
            forwarding links only) used for default-route fallback.

    Returns:
        The realized assignment whose rates sum to the true demand
        (minus truly unroutable pairs, recorded in ``unrouted``).
    """
    realized = FlowAssignment()
    for src, dst, rate in true_demand.nonzero_entries():
        rules = programmed.rules.get((src, dst), [])
        programmed_rate = sum(rule.rate for rule in rules)
        if rules and programmed_rate > 0:
            scale = rate / programmed_rate
            realized.rules[(src, dst)] = [
                FlowRule(rule.path, rule.rate * scale) for rule in rules
            ]
            continue
        fallback = _default_route(live_topology, src, dst)
        if fallback is None:
            realized.unrouted[(src, dst)] = rate
        else:
            realized.rules[(src, dst)] = [FlowRule(fallback, rate)]
    return realized


def _default_route(topology: Topology, src: str, dst: str):
    if not topology.has_node(src) or not topology.has_node(dst):
        return None
    try:
        return shortest_path(topology, src, dst)
    except NoRouteError:
        return None
