"""WAN topology model: nodes, links, and interfaces.

The model mirrors how the paper talks about the network:

- A *node* is a WAN router.  Routers carry an operator-intended drain
  state (the ground truth that telemetry may misreport, Section 2.1).
- A *link* is a bidirectional adjacency between two routers with a
  capacity per direction.  Each link materialises two *interfaces*, one
  on each endpoint, and traffic on the two directions of a link is
  accounted independently.
- Every router additionally owns one *external* interface facing the
  hosts/datacenter fabric attached to it.  External interfaces are where
  demand enters and leaves the WAN domain (the paper's footnote 4:
  "traffic leaving or entering the network domain, e.g., to a datacenter
  Top-of-Rack switch").

All identifiers are plain strings so snapshots and reports serialise
trivially.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Node",
    "Link",
    "Interface",
    "Topology",
    "TopologyError",
    "EXTERNAL_PEER",
]

#: Pseudo peer name used for host-facing (external) interfaces.
EXTERNAL_PEER = "__external__"


class TopologyError(ValueError):
    """Raised on structurally invalid topology operations."""


@dataclass(frozen=True)
class Node:
    """A WAN router.

    Attributes:
        name: Unique router name (e.g. ``"atla"``).
        site: Optional point-of-presence / metro the router lives in.
        drained: Operator-*intended* drain state.  ``True`` means the
            operator wants no traffic on this router.  Telemetry reports
            a possibly different view of this bit (Section 2.1,
            "Incorrect intent").
        drain_reason: Why the drain was applied (the Section 4.3
            standardization proposal); empty means unspecified.
        vendor: Router vendor label.  Correlated vendor bugs (Section
            3.2's open question) are injected per-vendor.
    """

    name: str
    site: str = ""
    drained: bool = False
    drain_reason: str = ""
    vendor: str = "vendor-a"

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("node name must be non-empty")


@dataclass(frozen=True)
class Link:
    """A bidirectional link between two routers.

    Attributes:
        a: Name of one endpoint router.
        b: Name of the other endpoint router.
        capacity: Capacity of each direction, in traffic-rate units
            (the whole library is unit-agnostic; benchmarks use Gbps).
        drained: Operator-intended link drain state (Section 4.3
            proposes making all drains link drains).
    """

    a: str
    b: str
    capacity: float = 100.0
    drained: bool = False

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise TopologyError(f"self-loop link at {self.a!r}")
        if not (self.capacity > 0) or math.isinf(self.capacity):
            raise TopologyError(f"link {self.a}-{self.b}: capacity must be finite and positive")

    @property
    def name(self) -> str:
        """Canonical link name, endpoint-order independent."""
        lo, hi = sorted((self.a, self.b))
        return f"{lo}~{hi}"

    def other(self, node: str) -> str:
        """Return the endpoint opposite to ``node``."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise TopologyError(f"{node!r} is not an endpoint of link {self.name}")

    def directions(self) -> Tuple[Tuple[str, str], Tuple[str, str]]:
        """Both directed edges of this link as ``(src, dst)`` pairs."""
        return (self.a, self.b), (self.b, self.a)


@dataclass(frozen=True)
class Interface:
    """One endpoint of a link (or the host-facing side of a router).

    An interface is identified by the router that owns it and the peer
    router it faces.  The host-facing interface uses
    :data:`EXTERNAL_PEER` as its peer.
    """

    node: str
    peer: str

    @property
    def is_external(self) -> bool:
        return self.peer == EXTERNAL_PEER

    @property
    def name(self) -> str:
        if self.is_external:
            return f"{self.node}:ext"
        return f"{self.node}->{self.peer}"


class Topology:
    """A mutable WAN topology graph.

    The graph is simple (at most one link per router pair) and
    undirected at the link level; traffic accounting is directional.

    Example:
        >>> topo = Topology("demo")
        >>> topo.add_node(Node("a"))
        >>> topo.add_node(Node("b"))
        >>> topo.add_link(Link("a", "b", capacity=10.0))
        >>> sorted(topo.neighbors("a"))
        ['b']
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[str, Link] = {}
        self._adjacency: Dict[str, Dict[str, str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Add a router.  Re-adding an existing name is an error."""
        if node.name in self._nodes:
            raise TopologyError(f"duplicate node {node.name!r}")
        if node.name == EXTERNAL_PEER:
            raise TopologyError(f"{EXTERNAL_PEER!r} is reserved")
        self._nodes[node.name] = node
        self._adjacency[node.name] = {}

    def add_link(self, link: Link) -> None:
        """Add a link between two existing routers."""
        for endpoint in (link.a, link.b):
            if endpoint not in self._nodes:
                raise TopologyError(f"link {link.name}: unknown node {endpoint!r}")
        if link.name in self._links:
            raise TopologyError(f"duplicate link {link.name}")
        self._links[link.name] = link
        self._adjacency[link.a][link.b] = link.name
        self._adjacency[link.b][link.a] = link.name

    def remove_link(self, a: str, b: str) -> Link:
        """Remove and return the link between ``a`` and ``b``."""
        link = self.link_between(a, b)
        if link is None:
            raise TopologyError(f"no link between {a!r} and {b!r}")
        del self._links[link.name]
        del self._adjacency[a][b]
        del self._adjacency[b][a]
        return link

    def replace_node(self, node: Node) -> None:
        """Replace an existing node's record (e.g. to flip drain state)."""
        if node.name not in self._nodes:
            raise TopologyError(f"unknown node {node.name!r}")
        self._nodes[node.name] = node

    def replace_link(self, link: Link) -> None:
        """Replace an existing link's record (e.g. to flip drain state)."""
        if link.name not in self._links:
            raise TopologyError(f"unknown link {link.name}")
        self._links[link.name] = link

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def link(self, name: str) -> Link:
        try:
            return self._links[name]
        except KeyError:
            raise TopologyError(f"unknown link {name!r}") from None

    def link_between(self, a: str, b: str) -> Optional[Link]:
        link_name = self._adjacency.get(a, {}).get(b)
        return self._links[link_name] if link_name else None

    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    def node_names(self) -> List[str]:
        return list(self._nodes)

    def links(self) -> List[Link]:
        return list(self._links.values())

    def neighbors(self, node: str) -> List[str]:
        if node not in self._adjacency:
            raise TopologyError(f"unknown node {node!r}")
        return list(self._adjacency[node])

    def degree(self, node: str) -> int:
        return len(self.neighbors(node))

    def directed_edges(self) -> Iterator[Tuple[str, str]]:
        """All directed edges (two per link), in deterministic order."""
        for link in sorted(self._links.values(), key=lambda link: link.name):
            yield link.a, link.b
            yield link.b, link.a

    def interfaces(self, include_external: bool = True) -> Iterator[Interface]:
        """All interfaces in the network, in deterministic order.

        Args:
            include_external: Also yield the one host-facing interface
                per router.
        """
        for src, dst in self.directed_edges():
            yield Interface(src, dst)
        if include_external:
            for name in sorted(self._nodes):
                yield Interface(name, EXTERNAL_PEER)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_links(self) -> int:
        return len(self._links)

    def total_capacity(self) -> float:
        """Sum of per-direction capacities over all links (both directions)."""
        return 2.0 * sum(link.capacity for link in self._links.values())

    def is_connected(self) -> bool:
        """True when every router can reach every other router."""
        if not self._nodes:
            return True
        seen = set()
        stack = [next(iter(self._nodes))]
        while stack:
            here = stack.pop()
            if here in seen:
                continue
            seen.add(here)
            stack.extend(n for n in self._adjacency[here] if n not in seen)
        return len(seen) == len(self._nodes)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "Topology":
        """Deep-enough copy (records are frozen, so sharing them is safe)."""
        duplicate = Topology(name or self.name)
        for node in self._nodes.values():
            duplicate.add_node(node)
        for link in self._links.values():
            duplicate.add_link(link)
        return duplicate

    def without_drained(self) -> "Topology":
        """The operator-intended serving topology: drained gear removed."""
        serving = Topology(f"{self.name}:serving")
        for node in self._nodes.values():
            if not node.drained:
                serving.add_node(node)
        for link in self._links.values():
            if link.drained:
                continue
            if serving.has_node(link.a) and serving.has_node(link.b):
                serving.add_link(link)
        return serving

    def to_networkx(self):
        """Export to a :class:`networkx.Graph` with capacity attributes."""
        import networkx as nx

        graph = nx.Graph(name=self.name)
        for node in self._nodes.values():
            graph.add_node(node.name, site=node.site, drained=node.drained)
        for link in self._links.values():
            graph.add_edge(link.a, link.b, capacity=link.capacity, drained=link.drained)
        return graph

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __repr__(self) -> str:
        return f"Topology({self.name!r}, nodes={self.num_nodes}, links={self.num_links})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return self._nodes == other._nodes and self._links == other._links

    def __hash__(self) -> int:  # pragma: no cover - mutable, but eq defined
        raise TypeError("Topology is mutable and unhashable")
