"""The status-quo baseline: static sanity checks.

Reproduces what the paper says operators do today (Section 1): checks
"typically *static* in nature", crafted to prevent *impossible* values
("topologies with more nodes than actually exist in the network") plus
heuristics for *unlikely* inputs "based on historically correct
values".  The paper's two criticisms are both observable with this
implementation:

- static checks pass inputs that are wrong *now* (a plausible demand
  matrix with entries zeroed out sails through), and
- the historical heuristics fire false positives on legitimate but
  atypical inputs ("e.g., in a disaster scenario that impacts a large
  number of routers").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.control.inputs import ControllerInputs
from repro.net.topology import Topology

__all__ = ["StaticCheckConfig", "StaticViolation", "StaticReport", "StaticValidator"]


@dataclass(frozen=True)
class StaticCheckConfig:
    """Tunables for the heuristic (historical) checks.

    Attributes:
        total_demand_band: Allowed multiplicative deviation of total
            demand from the historical mean (0.5 = +/-50%).
        entry_cap_multiplier: An entry larger than this multiple of the
            largest historically seen entry is "unlikely".
        min_link_fraction: Topology must retain at least this fraction
            of the historically seen link count.
        max_drained_fraction: At most this fraction of routers may be
            drained at once (the check that misfires in disasters).
    """

    total_demand_band: float = 0.5
    entry_cap_multiplier: float = 3.0
    min_link_fraction: float = 0.7
    max_drained_fraction: float = 0.25


@dataclass(frozen=True)
class StaticViolation:
    """One static-check failure."""

    check: str
    kind: str  # "impossible" or "unlikely"
    detail: str


@dataclass
class StaticReport:
    """Outcome of one static validation pass."""

    violations: List[StaticViolation] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def impossible(self) -> List[StaticViolation]:
        return [v for v in self.violations if v.kind == "impossible"]

    def unlikely(self) -> List[StaticViolation]:
        return [v for v in self.violations if v.kind == "unlikely"]


class StaticValidator:
    """Static input validation as practised today.

    Args:
        reference: The design-time inventory (impossible-value bounds).
        config: Heuristic thresholds.
    """

    def __init__(
        self, reference: Topology, config: Optional[StaticCheckConfig] = None
    ) -> None:
        self._reference = reference
        self._config = config or StaticCheckConfig()
        self._demand_totals: List[float] = []
        self._max_entry_seen = 0.0
        self._link_counts: List[int] = []

    # ------------------------------------------------------------------
    # History (the "historically correct values" the heuristics lean on)
    # ------------------------------------------------------------------

    def observe(self, inputs: ControllerInputs) -> None:
        """Record one historical (assumed good) input epoch."""
        self._demand_totals.append(inputs.demand.total())
        entries = [rate for _s, _d, rate in inputs.demand.nonzero_entries()]
        if entries:
            self._max_entry_seen = max(self._max_entry_seen, max(entries))
        self._link_counts.append(inputs.topology.num_links)

    @property
    def history_length(self) -> int:
        return len(self._demand_totals)

    # ------------------------------------------------------------------

    def check(self, inputs: ControllerInputs) -> StaticReport:
        """Run all static checks against one input epoch."""
        report = StaticReport()
        self._check_impossible(inputs, report)
        self._check_unlikely(inputs, report)
        return report

    def _check_impossible(self, inputs: ControllerInputs, report: StaticReport) -> None:
        known_nodes = set(self._reference.node_names())

        if inputs.topology.num_nodes > len(known_nodes):
            report.violations.append(
                StaticViolation(
                    check="topology/node-count",
                    kind="impossible",
                    detail=(
                        f"topology has {inputs.topology.num_nodes} nodes but only "
                        f"{len(known_nodes)} exist"
                    ),
                )
            )
        unknown = [n for n in inputs.topology.node_names() if n not in known_nodes]
        if unknown:
            report.violations.append(
                StaticViolation(
                    check="topology/unknown-nodes",
                    kind="impossible",
                    detail=f"topology names unknown routers: {unknown}",
                )
            )
        for link in inputs.topology.links():
            known = self._reference.link_between(link.a, link.b)
            if known is None:
                report.violations.append(
                    StaticViolation(
                        check="topology/unknown-link",
                        kind="impossible",
                        detail=f"link {link.name} does not exist in the inventory",
                    )
                )
            elif link.capacity > known.capacity * (1 + 1e-9):
                report.violations.append(
                    StaticViolation(
                        check="topology/capacity",
                        kind="impossible",
                        detail=(
                            f"link {link.name} capacity {link.capacity:g} exceeds "
                            f"physical {known.capacity:g}"
                        ),
                    )
                )

        for src, dst, rate in inputs.demand.entries():
            if math.isnan(rate) or math.isinf(rate):
                report.violations.append(
                    StaticViolation(
                        check="demand/finite",
                        kind="impossible",
                        detail=f"demand {src}->{dst} is not finite",
                    )
                )
        unknown_demand = [n for n in inputs.demand.nodes if n not in known_nodes]
        if unknown_demand:
            report.violations.append(
                StaticViolation(
                    check="demand/unknown-nodes",
                    kind="impossible",
                    detail=f"demand matrix names unknown routers: {unknown_demand}",
                )
            )

        unknown_drains = [n for n in inputs.drains.nodes if n not in known_nodes]
        if unknown_drains:
            report.violations.append(
                StaticViolation(
                    check="drain/unknown-nodes",
                    kind="impossible",
                    detail=f"drain input names unknown routers: {unknown_drains}",
                )
            )

    def _check_unlikely(self, inputs: ControllerInputs, report: StaticReport) -> None:
        config = self._config

        if self._demand_totals:
            mean_total = sum(self._demand_totals) / len(self._demand_totals)
            total = inputs.demand.total()
            if mean_total > 0:
                deviation = abs(total - mean_total) / mean_total
                if deviation > config.total_demand_band:
                    report.violations.append(
                        StaticViolation(
                            check="demand/total-band",
                            kind="unlikely",
                            detail=(
                                f"total demand {total:g} deviates {deviation:.0%} from "
                                f"historical mean {mean_total:g}"
                            ),
                        )
                    )

        if self._max_entry_seen > 0:
            cap = self._max_entry_seen * config.entry_cap_multiplier
            for src, dst, rate in inputs.demand.nonzero_entries():
                if rate > cap:
                    report.violations.append(
                        StaticViolation(
                            check="demand/entry-cap",
                            kind="unlikely",
                            detail=(
                                f"demand {src}->{dst} = {rate:g} exceeds {cap:g} "
                                "(historical max x multiplier)"
                            ),
                        )
                    )

        if self._link_counts:
            typical = max(self._link_counts)
            floor = typical * config.min_link_fraction
            if inputs.topology.num_links < floor:
                report.violations.append(
                    StaticViolation(
                        check="topology/link-floor",
                        kind="unlikely",
                        detail=(
                            f"topology has {inputs.topology.num_links} links, below "
                            f"{floor:.0f} ({config.min_link_fraction:.0%} of historical)"
                        ),
                    )
                )

        drained = len(inputs.drains.drained_nodes())
        total_nodes = max(1, self._reference.num_nodes)
        if drained / total_nodes > config.max_drained_fraction:
            report.violations.append(
                StaticViolation(
                    check="drain/mass-drain",
                    kind="unlikely",
                    detail=(
                        f"{drained}/{total_nodes} routers drained exceeds "
                        f"{config.max_drained_fraction:.0%} heuristic"
                    ),
                )
            )
