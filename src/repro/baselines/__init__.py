"""Baselines Hodor is compared against: static checks and anomaly detection."""

from repro.baselines.anomaly import AnomalyFlag, DemandAnomalyBaseline, EwmaDetector
from repro.baselines.correlation_miner import (
    CorrelationMiner,
    MinedInvariant,
    MinedViolation,
)
from repro.baselines.static_checks import (
    StaticCheckConfig,
    StaticReport,
    StaticValidator,
    StaticViolation,
)

__all__ = [
    "AnomalyFlag",
    "CorrelationMiner",
    "DemandAnomalyBaseline",
    "EwmaDetector",
    "MinedInvariant",
    "MinedViolation",
    "StaticCheckConfig",
    "StaticReport",
    "StaticValidator",
    "StaticViolation",
]
