"""Statistical anomaly-detection baseline.

Related work the paper contrasts against (Section 5): "Anomaly
detection approaches detecting outliers in input data through
statistical analysis of a signal's past history.  In contrast, we focus
on whether a signal reflects the ground truth, and for that we look
across signals for corroboration."

We implement the classic per-signal EWMA + z-score detector and a
wrapper that applies it entrywise to demand matrices.  Experiments use
it to show the structural limitation: an input can be squarely inside
its historical distribution and still not describe the *current*
network.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.demand import DemandMatrix

__all__ = ["EwmaDetector", "DemandAnomalyBaseline", "AnomalyFlag"]


class EwmaDetector:
    """Exponentially weighted mean/variance with z-score flagging.

    Args:
        alpha: EWMA smoothing factor in (0, 1]; higher adapts faster.
        z_threshold: |z| above which an observation is anomalous.
        min_observations: Observations required before scoring (the
            detector never flags during warm-up).
    """

    def __init__(
        self, alpha: float = 0.2, z_threshold: float = 3.0, min_observations: int = 5
    ) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if z_threshold <= 0:
            raise ValueError(f"z_threshold must be positive, got {z_threshold}")
        self._alpha = alpha
        self._z_threshold = z_threshold
        self._min_observations = min_observations
        self._mean: Optional[float] = None
        self._variance = 0.0
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    @property
    def z_threshold(self) -> float:
        return self._z_threshold

    @property
    def mean(self) -> Optional[float]:
        return self._mean

    def observe(self, value: float) -> None:
        """Fold one observation into the running statistics."""
        self._count += 1
        if self._mean is None:
            self._mean = value
            return
        delta = value - self._mean
        self._mean += self._alpha * delta
        self._variance = (1 - self._alpha) * (self._variance + self._alpha * delta * delta)

    def zscore(self, value: float) -> Optional[float]:
        """Z-score of a value against the learned distribution.

        Returns None during warm-up.
        """
        if self._count < self._min_observations or self._mean is None:
            return None
        std = math.sqrt(self._variance)
        if std <= 1e-12:
            return 0.0 if abs(value - self._mean) <= 1e-9 * max(1.0, abs(self._mean)) else math.inf
        return (value - self._mean) / std

    def is_anomalous(self, value: float) -> bool:
        z = self.zscore(value)
        return z is not None and abs(z) > self._z_threshold


@dataclass(frozen=True)
class AnomalyFlag:
    """One flagged demand entry."""

    src: str
    dst: str
    value: float
    zscore: float


class DemandAnomalyBaseline:
    """Entrywise anomaly detection over demand matrices.

    Args:
        alpha, z_threshold, min_observations: Passed to the per-entry
            :class:`EwmaDetector`.
    """

    def __init__(
        self, alpha: float = 0.2, z_threshold: float = 3.0, min_observations: int = 5
    ) -> None:
        self._make = lambda: EwmaDetector(alpha, z_threshold, min_observations)
        self._detectors: Dict[Tuple[str, str], EwmaDetector] = {}

    def observe(self, demand: DemandMatrix) -> None:
        """Learn one historical demand matrix."""
        for src, dst, rate in demand.entries():
            self._detectors.setdefault((src, dst), self._make()).observe(rate)

    def check(self, demand: DemandMatrix) -> List[AnomalyFlag]:
        """Flag entries outside their historical distribution."""
        flags = []
        for src, dst, rate in demand.entries():
            detector = self._detectors.get((src, dst))
            if detector is None:
                continue
            z = detector.zscore(rate)
            if z is not None and abs(z) > detector.z_threshold:
                flags.append(AnomalyFlag(src, dst, rate, z))
        return flags

    def passed(self, demand: DemandMatrix) -> bool:
        return not self.check(demand)
