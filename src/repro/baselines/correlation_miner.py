"""The Section 3.1 "general approach": unsupervised invariant mining.

The paper sketches an alternative to Hodor's expert-knowledge design:
"Unsupervised learning techniques can be applied to discover this
structure by analyzing historical system data, bundling all available
data ... for each timestamp, and using methods like masked autoencoders
and symbolic regression to identify relationships within these bundles
that persist over time."

This module implements the simplest member of that family -- a pairwise
approximate-equality miner -- both as a usable baseline and to
demonstrate the paper's criticism: "these techniques may capture
spurious relationships that, while true during the historical
observation period, are not *fundamental* to the system's operation.
For example, if the routers in a particular POP remain drained ...
during the historically observed period, unsupervised methods might
infer that all interface counters in that POP should always be equal,
which would no longer be accurate once the routers ... are undrained."

The miner genuinely rediscovers the R1 symmetry pairs from clean
history -- and, trained on a drained region, learns exactly the
spurious all-zero equalities the paper predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Mapping, Optional, Set

__all__ = ["MinedInvariant", "MinedViolation", "CorrelationMiner"]


@dataclass(frozen=True)
class MinedInvariant:
    """A learned approximate-equality between two signals."""

    left: str
    right: str
    tolerance: float

    def holds(self, bundle: Mapping[str, float], floor: float) -> Optional[bool]:
        """Evaluate against one bundle; None when a signal is absent."""
        a = bundle.get(self.left)
        b = bundle.get(self.right)
        if a is None or b is None:
            return None
        magnitude = max(abs(a), abs(b))
        if magnitude <= floor:
            return True
        return abs(a - b) / magnitude <= self.tolerance


@dataclass(frozen=True)
class MinedViolation:
    """One mined invariant that failed on a checked bundle."""

    invariant: MinedInvariant
    left_value: float
    right_value: float


class CorrelationMiner:
    """Mines pairwise equality invariants from historical bundles.

    A candidate pair graduates to an invariant when it held (within
    ``tolerance``) in *every* historical bundle and at least
    ``min_epochs`` bundles were seen.  There is deliberately no notion
    of which relationships are fundamental -- that is the point of the
    paper's criticism.

    Args:
        tolerance: Relative-equality tolerance for mining and checking.
        floor: Values whose magnitudes are both below this are treated
            as equal (zero counters "agree" -- the spurious-invariant
            trap).
        min_epochs: Minimum history size before any invariant is mined.
    """

    def __init__(
        self, tolerance: float = 0.02, floor: float = 1e-6, min_epochs: int = 3
    ) -> None:
        if not 0 <= tolerance < 1:
            raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
        if min_epochs < 1:
            raise ValueError(f"min_epochs must be >= 1, got {min_epochs}")
        self._tolerance = tolerance
        self._floor = floor
        self._min_epochs = min_epochs
        self._history: List[Dict[str, float]] = []
        self._mined: Optional[List[MinedInvariant]] = None

    # ------------------------------------------------------------------

    def observe(self, bundle: Mapping[str, float]) -> None:
        """Record one historical bundle; invalidates the mined set."""
        self._history.append(dict(bundle))
        self._mined = None

    @property
    def history_length(self) -> int:
        return len(self._history)

    def mine(self) -> List[MinedInvariant]:
        """All pairwise equalities that persisted over the history.

        Raises:
            RuntimeError: With fewer than ``min_epochs`` observations.
        """
        if len(self._history) < self._min_epochs:
            raise RuntimeError(
                f"need >= {self._min_epochs} bundles, have {len(self._history)}"
            )
        if self._mined is not None:
            return list(self._mined)

        common: Set[str] = set(self._history[0])
        for bundle in self._history[1:]:
            common &= set(bundle)

        survivors: List[MinedInvariant] = []
        for left, right in combinations(sorted(common), 2):
            candidate = MinedInvariant(left, right, self._tolerance)
            if all(
                candidate.holds(bundle, self._floor) for bundle in self._history
            ):
                survivors.append(candidate)
        self._mined = survivors
        return list(survivors)

    # ------------------------------------------------------------------

    def check(self, bundle: Mapping[str, float]) -> List[MinedViolation]:
        """Violated mined invariants on a new bundle."""
        violations = []
        for invariant in self.mine():
            if invariant.holds(bundle, self._floor) is False:
                violations.append(
                    MinedViolation(
                        invariant=invariant,
                        left_value=bundle.get(invariant.left, float("nan")),
                        right_value=bundle.get(invariant.right, float("nan")),
                    )
                )
        return violations

    def passed(self, bundle: Mapping[str, float]) -> bool:
        return not self.check(bundle)
