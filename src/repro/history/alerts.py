"""Alert rules, evaluation, and sink fan-out for the history service.

The alerting layer turns the history store's per-epoch rows into
operator-facing events.  Three rule forms, parsed from a compact
grammar string (:func:`parse_rule`):

``transition:<input>``
    Edge-triggered: fires when ``<input>``'s verdict flips from valid
    to invalid (``any`` matches every input).  This is the paper's
    headline moment -- validation catching a bad controller input --
    and is severity ``critical``.

``trend:<metric><op><threshold>@<window>``
    Fires when ``<metric>`` (any name in
    :data:`repro.history.analytics.METRICS`) over the last ``<window>``
    epochs breaches ``<op> <threshold>``, e.g.
    ``trend:unknown_rate>0.25@20``.  Edge-triggered on breach entry:
    an alert fires when the window *enters* breach, not on every epoch
    it stays there.  Severity ``warning``.

``regression:<series>@<window>/<baseline>%<band>``
    Fires when ``<series>`` over the last ``<window>`` epochs drifts
    more than ``<band>`` percent above its value over the preceding
    ``<baseline>`` epochs, e.g. ``regression:latency_p95@20/100%50``.
    One-sided (higher is worse for every metric).  Severity
    ``warning``.

:class:`AlertEngine` evaluates rules over its rolling window each
epoch, dedupes via edge-triggering plus a per-``(rule, key)`` cooldown
measured in *epochs* (never wall time -- replay determinism), and fans
fired events out to every configured sink.  Sinks never raise into the
validation path: a sink failure is counted and contained.

Determinism: event timestamps are the epoch's virtual ``ts``, messages
derive only from stored epoch data, and the webhook sink's transport
and backoff sleep are injected -- the seeded catalog-replay test pins
the full fired sequence byte-for-byte and proves retries without
touching the network.
"""

from __future__ import annotations

import json
import math
import re
import sys
import time
import urllib.request
from dataclasses import dataclass
from types import MappingProxyType
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.history.analytics import METRICS, detect_regression, window_metric
from repro.history.store import EpochRow
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "AlertEvent",
    "AlertRule",
    "parse_rule",
    "AlertSink",
    "JsonlAlertSink",
    "LogAlertSink",
    "WebhookAlertSink",
    "WebhookError",
    "AlertEngine",
]

_TREND_RE = re.compile(
    r"\Atrend:(?P<metric>[a-z0-9_]+)(?P<op>>=|<=|>|<)(?P<threshold>-?[0-9.]+)"
    r"@(?P<window>[0-9]+)\Z"
)
_REGRESSION_RE = re.compile(
    r"\Aregression:(?P<series>[a-z0-9_]+)@(?P<window>[0-9]+)"
    r"/(?P<baseline>[0-9]+)%(?P<band>[0-9.]+)\Z"
)
_TRANSITION_RE = re.compile(r"\Atransition:(?P<input>[a-z_]+|any)\Z")

_OPS: Mapping[str, Callable[[float, float], bool]] = MappingProxyType(
    {
        ">": lambda value, threshold: value > threshold,
        ">=": lambda value, threshold: value >= threshold,
        "<": lambda value, threshold: value < threshold,
        "<=": lambda value, threshold: value <= threshold,
    }
)


@dataclass(frozen=True)
class AlertEvent:
    """One fired alert, as fanned out to sinks and the store ledger.

    ``ts`` is the triggering epoch's virtual timestamp and ``key``
    distinguishes instances under one rule (the input name for
    transitions, the metric name otherwise).
    """

    ts: float
    epoch_id: int
    rule: str
    key: str
    severity: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "ts": self.ts,
            "epoch_id": self.epoch_id,
            "rule": self.rule,
            "key": self.key,
            "severity": self.severity,
            "message": self.message,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class AlertRule:
    """One parsed rule.  Build via :func:`parse_rule`.

    Attributes:
        raw: The grammar string the rule was parsed from (its identity
            in metrics, the ledger, and cooldown keys).
        kind: ``transition`` / ``trend`` / ``regression``.
        subject: Input name (transition) or metric name (others).
        op: Comparison operator (trend only).
        threshold: Breach threshold (trend only).
        window: Evaluation window in epochs (trend/regression).
        baseline: Trailing baseline in epochs (regression only).
        band_pct: Allowed drift percent (regression only).
    """

    raw: str
    kind: str
    subject: str
    op: str = ""
    threshold: float = 0.0
    window: int = 0
    baseline: int = 0
    band_pct: float = 0.0

    @property
    def severity(self) -> str:
        return "critical" if self.kind == "transition" else "warning"

    @property
    def span(self) -> int:
        """Epochs of history this rule needs to evaluate."""
        return self.window + self.baseline


def parse_rule(text: str) -> AlertRule:
    """Parse one grammar string into an :class:`AlertRule`.

    Raises ``ValueError`` with the offending text on any mismatch --
    rules come from operator CLI flags, so the error is user-facing.
    """
    raw = text.strip()
    match = _TRANSITION_RE.match(raw)
    if match:
        return AlertRule(raw=raw, kind="transition", subject=match.group("input"))
    match = _TREND_RE.match(raw)
    if match:
        metric = match.group("metric")
        if metric not in METRICS:
            raise ValueError(
                f"alert rule {raw!r}: unknown metric {metric!r} "
                f"(known: {', '.join(sorted(METRICS))})"
            )
        window = int(match.group("window"))
        if window < 1:
            raise ValueError(f"alert rule {raw!r}: window must be >= 1")
        return AlertRule(
            raw=raw,
            kind="trend",
            subject=metric,
            op=match.group("op"),
            threshold=float(match.group("threshold")),
            window=window,
        )
    match = _REGRESSION_RE.match(raw)
    if match:
        series = match.group("series")
        if series not in METRICS:
            raise ValueError(
                f"alert rule {raw!r}: unknown metric {series!r} "
                f"(known: {', '.join(sorted(METRICS))})"
            )
        window = int(match.group("window"))
        baseline = int(match.group("baseline"))
        if window < 1 or baseline < 1:
            raise ValueError(f"alert rule {raw!r}: window and baseline must be >= 1")
        return AlertRule(
            raw=raw,
            kind="regression",
            subject=series,
            window=window,
            baseline=baseline,
            band_pct=float(match.group("band")),
        )
    raise ValueError(
        f"unparseable alert rule {raw!r}; expected transition:<input>, "
        "trend:<metric><op><threshold>@<window>, or "
        "regression:<series>@<window>/<baseline>%<band>"
    )


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------


class AlertSink:
    """Fan-out target for fired alerts.  Subclasses set ``name``."""

    name = "null"

    def emit(self, event: AlertEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release any held resources (default: nothing)."""


class JsonlAlertSink(AlertSink):
    """Appends one canonical-JSON line per event to a file."""

    name = "jsonl"

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._handle = open(self.path, "a", encoding="utf-8")

    def emit(self, event: AlertEvent) -> None:
        self._handle.write(event.to_json() + "\n")
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()


class LogAlertSink(AlertSink):
    """Writes one human-readable line per event (stderr by default)."""

    name = "log"

    def __init__(self, stream=None) -> None:
        self._stream = stream if stream is not None else sys.stderr

    def emit(self, event: AlertEvent) -> None:
        self._stream.write(
            f"ALERT [{event.severity}] t={event.ts:g} {event.rule} "
            f"({event.key}): {event.message}\n"
        )
        self._stream.flush()


class WebhookError(RuntimeError):
    """A webhook delivery failed after exhausting its retries."""


def _default_transport(url: str, payload: bytes) -> int:
    """POST the payload as JSON; returns the HTTP status code."""
    request = urllib.request.Request(
        url,
        data=payload,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10.0) as response:  # pragma: no cover
        return int(response.status)


class WebhookAlertSink(AlertSink):
    """Delivers events to an HTTP endpoint with bounded retry/backoff.

    The transport is injected as a ``(url, payload_bytes) -> status``
    callable so tests exercise the retry ladder hermetically; the
    default posts JSON via urllib.  A delivery is successful on any 2xx
    status; other statuses and transport exceptions are retried up to
    ``max_retries`` times with exponential backoff
    (``backoff_s * 2**attempt``) through the injected ``sleep``.
    Exhausting retries raises :class:`WebhookError` -- the alert
    engine catches it, counts it, and keeps validating.

    Delivery contract (documented in docs/OBSERVABILITY.md): the body
    is the event's canonical JSON (sorted keys, compact separators)
    with the six :class:`AlertEvent` fields.
    """

    name = "webhook"

    def __init__(
        self,
        url: str,
        transport: Optional[Callable[[str, bytes], int]] = None,
        max_retries: int = 3,
        backoff_s: float = 0.5,
        sleep: Optional[Callable[[float], None]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.url = url
        self._transport = transport if transport is not None else _default_transport
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self._sleep = sleep if sleep is not None else time.sleep
        registry = metrics if metrics is not None else MetricsRegistry()
        self._deliveries = registry.counter(
            "history_webhook_deliveries_total",
            "Webhook delivery attempts, by final result.",
            labels=("result",),
        )
        self._retries = registry.counter(
            "history_webhook_retries_total",
            "Individual webhook retry attempts after a failed delivery.",
        )
        self._retries.inc(0.0)
        for result in ("ok", "error"):
            self._deliveries.labels(result=result).inc(0.0)

    def emit(self, event: AlertEvent) -> None:
        payload = event.to_json().encode("utf-8")
        failures: List[str] = []
        for attempt in range(self.max_retries + 1):
            if attempt:
                self._retries.inc()
                self._sleep(self.backoff_s * (2.0 ** (attempt - 1)))
            try:
                status = self._transport(self.url, payload)
            except Exception as exc:
                failures.append(f"attempt {attempt + 1}: {exc}")
                continue
            if 200 <= status < 300:
                self._deliveries.labels(result="ok").inc()
                return
            failures.append(f"attempt {attempt + 1}: HTTP {status}")
        self._deliveries.labels(result="error").inc()
        raise WebhookError(
            f"webhook {self.url} failed after {self.max_retries + 1} attempts: "
            + "; ".join(failures)
        )


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------


class AlertEngine:
    """Evaluates alert rules over a rolling epoch window and fans out.

    Args:
        rules: Parsed rules (or grammar strings, parsed here).
        sinks: Fan-out targets; every fired event goes to every sink.
        cooldown_epochs: After ``(rule, key)`` fires, suppress refires
            for this many subsequent epochs.  Cooldown is counted in
            observed epochs, never wall time, so replays are exact.
        metrics: Optional shared registry for ``alerts_fired_total``
            and sink-failure counters.
    """

    def __init__(
        self,
        rules: Sequence[object],
        sinks: Sequence[AlertSink] = (),
        cooldown_epochs: int = 10,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if cooldown_epochs < 0:
            raise ValueError(f"cooldown_epochs must be >= 0, got {cooldown_epochs}")
        self.rules: Tuple[AlertRule, ...] = tuple(
            rule if isinstance(rule, AlertRule) else parse_rule(str(rule))
            for rule in rules
        )
        self.sinks: Tuple[AlertSink, ...] = tuple(sinks)
        self.cooldown_epochs = int(cooldown_epochs)
        registry = metrics if metrics is not None else MetricsRegistry()
        self._fired_total = registry.counter(
            "alerts_fired_total",
            "Alerts fired, by rule and delivery sink ('ledger' is the store).",
            labels=("rule", "sink"),
        )
        self._sink_errors = registry.counter(
            "history_alert_sink_errors_total",
            "Alert deliveries a sink failed to accept (contained, counted).",
            labels=("sink",),
        )
        span = max((rule.span for rule in self.rules), default=0)
        self._window_need = max(span, 1)
        self._window: List[EpochRow] = []
        self._seen = 0
        self._prev_valid: Dict[str, bool] = {}
        self._breached: Dict[str, bool] = {}
        self._last_fired: Dict[Tuple[str, str], int] = {}

    # -- evaluation ----------------------------------------------------

    def observe(
        self, row: EpochRow, verdicts: Sequence[Tuple[str, bool]] = ()
    ) -> List[AlertEvent]:
        """Feed one epoch; evaluate every rule; fan out what fired.

        Args:
            row: The epoch just appended to the store.
            verdicts: ``(input_name, valid)`` pairs for the epoch, in a
                caller-fixed order (transitions need per-input state).

        Returns:
            The fired events, in rule order -- the caller appends them
            to the store ledger.
        """
        self._seen += 1
        self._window.append(row)
        if len(self._window) > self._window_need:
            del self._window[: len(self._window) - self._window_need]
        fired: List[AlertEvent] = []
        for rule in self.rules:
            if rule.kind == "transition":
                fired.extend(self._eval_transition(rule, row, verdicts))
            elif rule.kind == "trend":
                fired.extend(self._eval_trend(rule, row))
            else:
                fired.extend(self._eval_regression(rule, row))
        # Update per-input verdict memory after all rules evaluated so
        # two transition rules see the same previous state.
        for name, valid in verdicts:
            self._prev_valid[name] = bool(valid)
        for event in fired:
            self._fan_out(event)
        return fired

    def _eval_transition(
        self, rule: AlertRule, row: EpochRow, verdicts: Sequence[Tuple[str, bool]]
    ) -> List[AlertEvent]:
        events: List[AlertEvent] = []
        for name, valid in verdicts:
            if rule.subject != "any" and rule.subject != name:
                continue
            was_valid = self._prev_valid.get(name, True)
            if was_valid and not valid and self._off_cooldown(rule, name):
                events.append(
                    self._fire(
                        rule,
                        row,
                        key=name,
                        message=(
                            f"input {name} flipped valid->invalid at epoch "
                            f"t={row.ts:g} ({row.violations} violations in epoch)"
                        ),
                    )
                )
        return events

    def _eval_trend(self, rule: AlertRule, row: EpochRow) -> List[AlertEvent]:
        window = self._window[-rule.window :]
        if len(window) < rule.window:
            return []
        value = window_metric(window, rule.subject)
        breached = value is not None and _OPS[rule.op](value, rule.threshold)
        entering = breached and not self._breached.get(rule.raw, False)
        self._breached[rule.raw] = bool(breached)
        if not (entering and self._off_cooldown(rule, rule.subject)):
            return []
        return [
            self._fire(
                rule,
                row,
                key=rule.subject,
                message=(
                    f"{rule.subject} over last {rule.window} epochs = "
                    f"{value:.6g}, breaching {rule.op} {rule.threshold:g}"
                ),
            )
        ]

    def _eval_regression(self, rule: AlertRule, row: EpochRow) -> List[AlertEvent]:
        finding = detect_regression(
            self._window, rule.subject, rule.window, rule.baseline, rule.band_pct
        )
        breached = finding is not None and finding.breached
        entering = breached and not self._breached.get(rule.raw, False)
        self._breached[rule.raw] = bool(breached)
        if not (entering and self._off_cooldown(rule, rule.subject)):
            return []
        assert finding is not None
        drift = "inf" if math.isinf(finding.drift_pct) else f"{finding.drift_pct:.1f}"
        return [
            self._fire(
                rule,
                row,
                key=rule.subject,
                message=(
                    f"{rule.subject} regressed: last {rule.window} epochs = "
                    f"{finding.recent:.6g} vs baseline {rule.baseline} epochs = "
                    f"{finding.baseline:.6g} ({drift}% > {rule.band_pct:g}% band)"
                ),
            )
        ]

    # -- bookkeeping ---------------------------------------------------

    def _off_cooldown(self, rule: AlertRule, key: str) -> bool:
        last = self._last_fired.get((rule.raw, key))
        return last is None or self._seen - last > self.cooldown_epochs

    def _fire(self, rule: AlertRule, row: EpochRow, key: str, message: str) -> AlertEvent:
        self._last_fired[(rule.raw, key)] = self._seen
        self._fired_total.labels(rule=rule.raw, sink="ledger").inc()
        return AlertEvent(
            ts=row.ts,
            epoch_id=row.epoch_id,
            rule=rule.raw,
            key=key,
            severity=rule.severity,
            message=message,
        )

    def _fan_out(self, event: AlertEvent) -> None:
        for sink in self.sinks:
            try:
                sink.emit(event)
            except Exception:
                # Alerting must never take down validation: count the
                # loss and keep going (webhook retry detail is already
                # on the sink's own counters).
                self._sink_errors.labels(sink=sink.name).inc()
            else:
                self._fired_total.labels(rule=event.rule, sink=sink.name).inc()

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
