"""``python -m repro history``: read verdict history stores back.

Four subcommands over an existing store file (all open read-only
except ``compact``):

- ``tail``     the newest epochs, one row each;
- ``trends``   windowed quality metrics over the whole run;
- ``query``    filtered epoch rows, per-epoch verdicts, or the alert
  ledger;
- ``compact``  enforce a retention policy and rewrite the file.

Every subcommand has a ``--json`` form (machine-readable, golden-
tested) next to the human table rendering.
"""

from __future__ import annotations

import argparse
import json
import sys
from types import MappingProxyType
from typing import List

from repro.history.analytics import METRICS, compute_trends
from repro.history.store import HistoryError, HistoryStore, RetentionPolicy

__all__ = ["add_history_arguments", "run_history"]


def add_history_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``history`` subcommand tree to an argparse parser."""
    sub = parser.add_subparsers(dest="history_command", required=True)

    tail = sub.add_parser("tail", help="newest epochs in the store")
    tail.add_argument("store", help="history store file (sqlite)")
    tail.add_argument("-n", type=int, default=10, help="epochs to show")
    tail.add_argument("--json", action="store_true", help="machine-readable output")

    trends = sub.add_parser("trends", help="windowed quality metrics over the run")
    trends.add_argument(
        "store", nargs="?", default=None, help="history store file (sqlite)"
    )
    trends.add_argument(
        "--fleet",
        default=None,
        metavar="DIR",
        help="fleet store-per-tenant directory: per-tenant trends plus a "
        "cross-tenant rollup (mutually exclusive with a store file)",
    )
    trends.add_argument(
        "--window", type=int, default=20, help="epochs per trend window"
    )
    trends.add_argument(
        "--metrics",
        default="detection_rate,repair_rate,unknown_rate,latency_p95",
        help=f"comma-separated metric names (known: {', '.join(sorted(METRICS))})",
    )
    trends.add_argument("--json", action="store_true", help="machine-readable output")

    query = sub.add_parser("query", help="filtered epochs, verdicts, or alerts")
    query.add_argument("store", help="history store file (sqlite)")
    query.add_argument("--since", type=float, default=None, help="min epoch timestamp")
    query.add_argument("--until", type=float, default=None, help="max epoch timestamp")
    query.add_argument(
        "--detected-only", action="store_true", help="only epochs that flagged something"
    )
    query.add_argument("--limit", type=int, default=None, help="max rows")
    query.add_argument(
        "--verdicts",
        default="",
        metavar="INPUT",
        help="per-epoch verdict rows for one input instead of epoch rows",
    )
    query.add_argument(
        "--alerts", action="store_true", help="show the alert ledger instead"
    )
    query.add_argument("--json", action="store_true", help="machine-readable output")

    compact = sub.add_parser(
        "compact", help="enforce retention and rewrite the store file"
    )
    compact.add_argument("store", help="history store file (sqlite)")
    compact.add_argument(
        "--max-epochs", type=int, default=None, help="keep at most N epochs"
    )
    compact.add_argument(
        "--max-age-s", type=float, default=None, help="drop epochs older than S seconds"
    )
    compact.add_argument(
        "--max-bytes", type=int, default=None, help="target store size ceiling"
    )
    compact.add_argument(
        "--now",
        type=float,
        default=None,
        help="age-retention reference time (default: wall clock)",
    )
    compact.add_argument("--json", action="store_true", help="machine-readable output")


def _format_table(headers: List[str], rows: List[List[object]]) -> str:
    from repro.experiments import format_table

    return format_table(headers, rows)


def _cmd_tail(args: argparse.Namespace) -> int:
    with HistoryStore(args.store, writer=False) as store:
        rows = store.tail(max(1, args.n))
    if args.json:
        print(json.dumps([row.to_dict() for row in rows], indent=2, sort_keys=True))
        return 0
    print(
        _format_table(
            ["epoch", "ts", "src", "sealed", "ok", "updates", "viol", "detected"],
            [
                [
                    row.epoch_id,
                    f"{row.ts:g}",
                    row.source,
                    row.sealed_by,
                    "yes" if row.complete else "part",
                    row.updates,
                    row.violations,
                    "yes" if row.detected else "no",
                ]
                for row in rows
            ],
        )
    )
    return 0


def _cmd_trends(args: argparse.Namespace) -> int:
    names = [name for name in args.metrics.split(",") if name]
    for name in names:
        if name not in METRICS:
            print(
                f"unknown metric {name!r} (known: {', '.join(sorted(METRICS))})",
                file=sys.stderr,
            )
            return 2
    if args.window < 1:
        print(f"--window must be >= 1, got {args.window}", file=sys.stderr)
        return 2
    if (args.store is None) == (args.fleet is None):
        print(
            "trends needs exactly one of: a store file, or --fleet DIR",
            file=sys.stderr,
        )
        return 2
    if args.fleet is not None:
        return _trends_fleet(args, names)
    with HistoryStore(args.store, writer=False) as store:
        points = compute_trends(store.epochs(), args.window, names)
    if args.json:
        print(json.dumps([p.to_dict() for p in points], indent=2, sort_keys=True))
        return 0
    print(
        _format_table(
            ["epochs", "last ts"] + names,
            [
                [
                    f"{p.first_epoch_id}-{p.last_epoch_id}",
                    f"{p.last_ts:g}",
                ]
                + [f"{p.values[name]:.4g}" for name in names]
                for p in points
            ],
        )
    )
    return 0


def _trends_fleet(args: argparse.Namespace, names: List[str]) -> int:
    """Per-tenant trend tables plus the cross-tenant rollup."""
    from repro.history.fleet import ROLLUP, fleet_trends

    result = fleet_trends(args.fleet, args.window, names or None)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    rows: List[List[object]] = []
    labelled = [(tenant, points) for tenant, points in sorted(result.tenants.items())]
    labelled.append((ROLLUP, result.rollup))
    for tenant, points in labelled:
        for p in points:
            rows.append(
                [
                    tenant,
                    f"{p.first_epoch_id}-{p.last_epoch_id}",
                    f"{p.last_ts:g}",
                ]
                + [f"{p.values[name]:.4g}" for name in names]
            )
    print(_format_table(["tenant", "epochs", "last ts"] + names, rows))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    with HistoryStore(args.store, writer=False) as store:
        if args.alerts:
            alerts = store.alerts(limit=args.limit)
            if args.json:
                print(
                    json.dumps([a.to_dict() for a in alerts], indent=2, sort_keys=True)
                )
                return 0
            print(
                _format_table(
                    ["id", "epoch", "ts", "sev", "rule", "key", "message"],
                    [
                        [a.alert_id, a.epoch_id, f"{a.ts:g}", a.severity, a.rule, a.key, a.message]
                        for a in alerts
                    ],
                )
            )
            return 0
        if args.verdicts:
            verdicts = store.verdicts_for(input_name=args.verdicts)
            if args.limit is not None:
                verdicts = verdicts[: args.limit]
            if args.json:
                print(
                    json.dumps(
                        [v.to_dict() for v in verdicts], indent=2, sort_keys=True
                    )
                )
                return 0
            print(
                _format_table(
                    ["epoch", "input", "valid", "violations", "evaluated"],
                    [
                        [v.epoch_id, v.input_name, "yes" if v.valid else "NO",
                         v.num_violations, v.num_evaluated]
                        for v in verdicts
                    ],
                )
            )
            return 0
        rows = store.epochs(
            since=args.since,
            until=args.until,
            detected_only=args.detected_only,
            limit=args.limit,
        )
    if args.json:
        print(json.dumps([row.to_dict() for row in rows], indent=2, sort_keys=True))
        return 0
    print(
        _format_table(
            ["epoch", "ts", "detected", "violations", "confirmed", "repaired", "raw", "unknown"],
            [
                [
                    row.epoch_id,
                    f"{row.ts:g}",
                    "yes" if row.detected else "no",
                    row.violations,
                    row.signals_confirmed,
                    row.signals_repaired,
                    row.signals_raw,
                    row.signals_unknown,
                ]
                for row in rows
            ],
        )
    )
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    import os

    if not os.path.exists(args.store):
        # A writer open would create an empty store here; a compact of
        # a missing path is always a typo.
        print(f"history store not found: {args.store}", file=sys.stderr)
        return 2
    try:
        policy = RetentionPolicy(
            max_epochs=args.max_epochs,
            max_age_s=args.max_age_s,
            max_bytes=args.max_bytes,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    with HistoryStore(args.store, writer=True) as store:
        result = store.compact(policy if policy.bounded else None, now=args.now)
        remaining = store.epoch_count()
    payload = {
        "bytes_before": result.bytes_before,
        "bytes_after": result.bytes_after,
        "reclaimed": result.reclaimed,
        "epochs_deleted": result.epochs_deleted,
        "epochs_remaining": remaining,
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for key, value in payload.items():
            print(f"{key:18} {value}")
    return 0


_DISPATCH = MappingProxyType(
    {
        "tail": _cmd_tail,
        "trends": _cmd_trends,
        "query": _cmd_query,
        "compact": _cmd_compact,
    }
)


def run_history(args: argparse.Namespace) -> int:
    """Entry point for the ``history`` CLI subcommand."""
    try:
        return _DISPATCH[args.history_command](args)
    except HistoryError as exc:
        print(str(exc), file=sys.stderr)
        return 2
