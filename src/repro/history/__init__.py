"""Verdict history: durable retention, trend analytics, alert fan-out.

The always-on counterpart to the validation engine: every validated
epoch is written through an append-only sqlite store
(:mod:`repro.history.store`), rolling quality metrics and regression
checks are computed over it (:mod:`repro.history.analytics`), and
operator-facing alerts fan out on verdict transitions and trend
breaches (:mod:`repro.history.alerts`).  The engine and stream
pipeline hold a :class:`~repro.history.sink.HistorySink`; the
``python -m repro history`` CLI reads the stores back.
"""

from repro.history.alerts import (
    AlertEngine,
    AlertEvent,
    AlertRule,
    AlertSink,
    JsonlAlertSink,
    LogAlertSink,
    WebhookAlertSink,
    WebhookError,
    parse_rule,
)
from repro.history.analytics import (
    METRICS,
    RegressionFinding,
    TrendPoint,
    compute_trends,
    detect_regression,
    percentile,
    window_metric,
)
from repro.history.sink import HistoryConfig, HistorySink
from repro.history.store import (
    SCHEMA_VERSION,
    AlertRow,
    CompactionResult,
    ConcurrentWriterError,
    CounterSample,
    EpochRow,
    HistoryError,
    HistoryStore,
    RetentionPolicy,
    SchemaMismatchError,
    VerdictRow,
)

__all__ = [
    "SCHEMA_VERSION",
    "HistoryError",
    "SchemaMismatchError",
    "ConcurrentWriterError",
    "HistoryStore",
    "RetentionPolicy",
    "EpochRow",
    "VerdictRow",
    "AlertRow",
    "CounterSample",
    "CompactionResult",
    "HistoryConfig",
    "HistorySink",
    "METRICS",
    "percentile",
    "window_metric",
    "compute_trends",
    "detect_regression",
    "TrendPoint",
    "RegressionFinding",
    "AlertEvent",
    "AlertRule",
    "parse_rule",
    "AlertSink",
    "JsonlAlertSink",
    "LogAlertSink",
    "WebhookAlertSink",
    "WebhookError",
    "AlertEngine",
]
