"""Cross-tenant history rollups over a fleet's store-per-tenant layout.

A fleet run (:mod:`repro.fleet`) leaves one sqlite store per tenant
under its ``stores/`` directory.  This module reads that layout back:
:func:`discover_fleet` maps the directory, :func:`fleet_trends`
computes each tenant's windowed quality metrics *plus* a fleet-level
rollup over all tenants' epochs merged in timestamp order -- the
cross-tenant view ``repro history trends --fleet DIR`` prints.

Everything is read-only and deterministic: tenants are visited in
sorted id order and the merged timeline breaks timestamp ties by
tenant id, so two invocations over the same directory always agree.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.history.analytics import TrendPoint, compute_trends
from repro.history.store import EpochRow, HistoryError, HistoryStore

__all__ = ["FleetTrends", "discover_fleet", "fleet_trends"]

#: The rollup's pseudo-tenant label (sorts after real ids in output).
ROLLUP = "(fleet)"


def discover_fleet(store_dir: str) -> List[Tuple[str, str]]:
    """``[(tenant, store_path)]`` for every tenant store in a fleet dir.

    Tenant ids are store filenames minus the ``.sqlite`` suffix,
    returned sorted.  Sidecar files (``-wal``/``-shm``/``.lock``) are
    ignored.

    Raises:
        HistoryError: If the directory does not exist or holds no
            tenant stores -- a silent empty rollup would read as "the
            fleet validated nothing wrong".
    """
    if not os.path.isdir(store_dir):
        raise HistoryError(f"fleet store directory not found: {store_dir}")
    stores = [
        (name[: -len(".sqlite")], os.path.join(store_dir, name))
        for name in sorted(os.listdir(store_dir))
        if name.endswith(".sqlite")
    ]
    if not stores:
        raise HistoryError(f"no tenant stores (*.sqlite) under {store_dir}")
    return stores


@dataclass(frozen=True)
class FleetTrends:
    """Per-tenant trend points plus the cross-tenant rollup.

    Attributes:
        tenants: ``{tenant: [TrendPoint, ...]}`` -- each tenant's own
            run windowed independently.
        rollup: Trend points over *all* tenants' epochs merged in
            ``(ts, tenant)`` order; window boundaries therefore cut
            across tenants, which is the point -- fleet-level
            detection/latency drift regardless of which tenant
            produced it.
        epochs: Total epoch rows consumed across the fleet.
    """

    tenants: Dict[str, List[TrendPoint]]
    rollup: List[TrendPoint]
    epochs: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "tenants": {
                tenant: [p.to_dict() for p in points]
                for tenant, points in sorted(self.tenants.items())
            },
            "rollup": [p.to_dict() for p in self.rollup],
            "epochs": self.epochs,
        }


def fleet_trends(
    store_dir: str,
    window: int,
    metrics: Optional[Sequence[str]] = None,
) -> FleetTrends:
    """Windowed quality metrics per tenant and fleet-wide.

    Args:
        store_dir: A fleet run's ``stores/`` directory.
        window: Epochs per trend window (both per-tenant and rollup).
        metrics: Metric names from
            :data:`repro.history.analytics.METRICS`; all when omitted.
    """
    per_tenant: Dict[str, List[TrendPoint]] = {}
    merged: List[Tuple[float, str, EpochRow]] = []
    total = 0
    for tenant, path in discover_fleet(store_dir):
        with HistoryStore(path, writer=False) as store:
            rows = store.epochs()
        per_tenant[tenant] = compute_trends(rows, window, metrics)
        total += len(rows)
        merged.extend((row.ts, tenant, row) for row in rows)
    merged.sort(key=lambda item: (item[0], item[1]))
    rollup = compute_trends([row for _ts, _tenant, row in merged], window, metrics)
    return FleetTrends(tenants=per_tenant, rollup=rollup, epochs=total)
