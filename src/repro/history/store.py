"""Durable verdict history: an append-only sqlite epoch/verdict store.

The paper's deployment model is *always on*: an operator runs Hodor
for months, and the value of validation is the rare epoch where it
fires.  Everything the engine knows today evaporates at process exit;
:class:`HistoryStore` is the persistence layer underneath the
long-horizon story -- per-epoch verdict rows, compacted
:class:`~repro.obs.provenance.VerdictProvenance` payloads for every
input that failed validation, periodic snapshots of the
``engine_registry`` counter families, and the alert ledger.

Design points:

* **sqlite, WAL mode, schema-versioned.**  One file, crash-safe
  (committed epochs survive a process kill and replay from the WAL on
  reopen), readable while a writer is live.  ``PRAGMA user_version``
  pins :data:`SCHEMA_VERSION`; opening a store written by a different
  schema refuses loudly rather than guessing.
* **Single-writer discipline.**  A second writer interleaving epoch
  rows would corrupt the append-only ordering the analytics layer
  depends on, so the writer takes an advisory ``flock`` on a sibling
  ``<path>.lock`` file at open.  The lock dies with the process, so a
  crashed writer never wedges the store.  Readers skip the lock.
* **Deterministic bytes.**  Nothing in the schema requires a wall
  clock: ``recorded_at`` is whatever the caller anchors it to (the
  sink's deterministic mode uses the epoch's own virtual timestamp),
  and all iteration feeding rows is explicitly ordered.  Two identical
  seeded runs that write through the store produce byte-identical
  files -- the reproducibility tests compare them with ``cmp``.
* **Size/age retention + compaction.**  :meth:`enforce_retention`
  deletes exactly the oldest epochs (and their verdicts, provenance,
  counters, and alerts via cascading deletes) until the
  :class:`RetentionPolicy` holds; :meth:`compact` checkpoints the WAL
  and rewrites the file so reclaimed pages are returned to the
  filesystem.  This module is the one sanctioned wall-clock reader
  outside ``obs/clock.py`` (``LintConfig.clock_seam_paths`` pins it):
  months-long age retention is inherently wall-time-based, and every
  caller that cares about determinism passes ``now`` explicitly.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SCHEMA_VERSION",
    "HistoryError",
    "SchemaMismatchError",
    "ConcurrentWriterError",
    "RetentionPolicy",
    "EpochRow",
    "VerdictRow",
    "AlertRow",
    "CounterSample",
    "CompactionResult",
    "HistoryStore",
]

#: Bump whenever the table layout changes; old stores refuse to open.
SCHEMA_VERSION = 1

#: Tables retention cascades over, in deletion order (children first).
_EPOCH_TABLES = ("provenance", "verdicts", "counters", "alerts")


class HistoryError(RuntimeError):
    """Base error for the verdict history store."""


class SchemaMismatchError(HistoryError):
    """The on-disk schema version is not the one this code writes."""


class ConcurrentWriterError(HistoryError):
    """A second writer tried to open a store that is already owned."""


@dataclass(frozen=True)
class RetentionPolicy:
    """Bounds on how much history a store keeps.

    Attributes:
        max_epochs: Keep at most this many epoch rows (oldest deleted
            first).  ``None`` means unbounded.
        max_age_s: Drop epochs whose ``recorded_at`` is further than
            this behind ``now``.  ``None`` means unbounded.
        max_bytes: Target file-size ceiling; oldest epochs are deleted
            until the store's page usage fits.  ``None`` = unbounded.
    """

    max_epochs: Optional[int] = None
    max_age_s: Optional[float] = None
    max_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_epochs is not None and self.max_epochs < 1:
            raise ValueError(f"max_epochs must be >= 1, got {self.max_epochs}")
        if self.max_age_s is not None and self.max_age_s < 0.0:
            raise ValueError(f"max_age_s must be >= 0, got {self.max_age_s}")
        if self.max_bytes is not None and self.max_bytes < 4096:
            raise ValueError(f"max_bytes must be >= 4096, got {self.max_bytes}")

    @property
    def bounded(self) -> bool:
        return (
            self.max_epochs is not None
            or self.max_age_s is not None
            or self.max_bytes is not None
        )


@dataclass(frozen=True)
class EpochRow:
    """One validated epoch as stored (see the ``epochs`` table)."""

    epoch_id: int
    ts: float
    recorded_at: float
    source: str
    mode: str
    backend: str
    sealed_by: str
    complete: bool
    updates: int
    missing: int
    elapsed_s: float
    detected: bool
    violations: int
    signals_confirmed: int
    signals_repaired: int
    signals_raw: int
    signals_unknown: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "epoch_id": self.epoch_id,
            "ts": self.ts,
            "recorded_at": self.recorded_at,
            "source": self.source,
            "mode": self.mode,
            "backend": self.backend,
            "sealed_by": self.sealed_by,
            "complete": self.complete,
            "updates": self.updates,
            "missing": self.missing,
            "elapsed_s": self.elapsed_s,
            "detected": self.detected,
            "violations": self.violations,
            "signals_confirmed": self.signals_confirmed,
            "signals_repaired": self.signals_repaired,
            "signals_raw": self.signals_raw,
            "signals_unknown": self.signals_unknown,
        }


@dataclass(frozen=True)
class VerdictRow:
    """One per-input verdict row."""

    epoch_id: int
    input_name: str
    valid: bool
    num_violations: int
    num_evaluated: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "epoch_id": self.epoch_id,
            "input": self.input_name,
            "valid": self.valid,
            "num_violations": self.num_violations,
            "num_evaluated": self.num_evaluated,
        }


@dataclass(frozen=True)
class AlertRow:
    """One fired alert as stored in the ledger."""

    alert_id: int
    epoch_id: int
    ts: float
    rule: str
    key: str
    severity: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "alert_id": self.alert_id,
            "epoch_id": self.epoch_id,
            "ts": self.ts,
            "rule": self.rule,
            "key": self.key,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass(frozen=True)
class CounterSample:
    """One metric sample inside a counter snapshot."""

    snapshot_id: int
    epoch_id: int
    name: str
    labels: Tuple[Tuple[str, str], ...]
    value: float


@dataclass(frozen=True)
class CompactionResult:
    """What one :meth:`HistoryStore.compact` pass achieved."""

    bytes_before: int
    bytes_after: int
    epochs_deleted: int

    @property
    def reclaimed(self) -> int:
        return max(0, self.bytes_before - self.bytes_after)


_SCHEMA = """
CREATE TABLE meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
) WITHOUT ROWID;
CREATE TABLE epochs (
    epoch_id          INTEGER PRIMARY KEY,
    ts                REAL NOT NULL,
    recorded_at       REAL NOT NULL,
    source            TEXT NOT NULL,
    mode              TEXT NOT NULL,
    backend           TEXT NOT NULL,
    sealed_by         TEXT NOT NULL,
    complete          INTEGER NOT NULL,
    updates           INTEGER NOT NULL,
    missing           INTEGER NOT NULL,
    elapsed_s         REAL NOT NULL,
    detected          INTEGER NOT NULL,
    violations        INTEGER NOT NULL,
    signals_confirmed INTEGER NOT NULL,
    signals_repaired  INTEGER NOT NULL,
    signals_raw       INTEGER NOT NULL,
    signals_unknown   INTEGER NOT NULL
);
CREATE INDEX epochs_by_ts ON epochs (ts);
CREATE TABLE verdicts (
    epoch_id       INTEGER NOT NULL REFERENCES epochs (epoch_id) ON DELETE CASCADE,
    input_name     TEXT NOT NULL,
    valid          INTEGER NOT NULL,
    num_violations INTEGER NOT NULL,
    num_evaluated  INTEGER NOT NULL,
    PRIMARY KEY (epoch_id, input_name)
) WITHOUT ROWID;
CREATE TABLE provenance (
    epoch_id   INTEGER NOT NULL REFERENCES epochs (epoch_id) ON DELETE CASCADE,
    input_name TEXT NOT NULL,
    payload    TEXT NOT NULL,
    PRIMARY KEY (epoch_id, input_name)
) WITHOUT ROWID;
CREATE TABLE counters (
    snapshot_id INTEGER NOT NULL,
    epoch_id    INTEGER NOT NULL REFERENCES epochs (epoch_id) ON DELETE CASCADE,
    name        TEXT NOT NULL,
    labels      TEXT NOT NULL,
    value       REAL NOT NULL,
    PRIMARY KEY (snapshot_id, name, labels)
) WITHOUT ROWID;
CREATE TABLE alerts (
    alert_id INTEGER PRIMARY KEY,
    epoch_id INTEGER NOT NULL REFERENCES epochs (epoch_id) ON DELETE CASCADE,
    ts       REAL NOT NULL,
    rule     TEXT NOT NULL,
    key      TEXT NOT NULL,
    severity TEXT NOT NULL,
    message  TEXT NOT NULL
);
"""


def _canonical_labels(labels: Dict[str, str]) -> str:
    """Label dict -> canonical JSON text (sorted, compact)."""
    return json.dumps(
        {str(k): str(v) for k, v in labels.items()},
        sort_keys=True,
        separators=(",", ":"),
    )


class HistoryStore:
    """Append-only epoch/verdict store over one sqlite file.

    Args:
        path: The database file.  A writer creates it (and the schema)
            when absent; a reader requires it to exist.
        writer: ``True`` (default) opens for appending and takes the
            single-writer lock; ``False`` opens read-only and never
            locks, so queries can run against a live store.
        clock: Wall-clock seconds source for the default
            ``recorded_at`` anchor and age retention; ``time.time``
            when omitted (this module is the sanctioned seam).  Tests
            inject a :class:`~repro.obs.clock.ManualClock`.
    """

    def __init__(
        self,
        path: str,
        writer: bool = True,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.path = str(path)
        self.writer = bool(writer)
        self._clock = clock if clock is not None else time.time
        self._lock_fd: Optional[int] = None
        self._conn: Optional[sqlite3.Connection] = None
        if self.writer:
            self._lock_fd = self._acquire_lock(self.path)
            try:
                self._conn = self._open_writer(self.path)
            except BaseException:
                self._release_lock()
                raise
        else:
            self._conn = self._open_reader(self.path)

    # -- open/close ----------------------------------------------------

    @staticmethod
    def _acquire_lock(path: str) -> Optional[int]:
        """Advisory single-writer lock on ``<path>.lock``.

        ``flock`` locks belong to the open file description, so two
        writers conflict even inside one process, and the lock
        evaporates when the holder's fd closes -- including on a crash
        -- so reopen-after-crash needs no stale-lock cleanup.
        """
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX fallback
            return None
        fd = os.open(path + ".lock", os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            raise ConcurrentWriterError(
                f"{path} already has a live writer (hold is advisory via "
                f"{path}.lock); open with writer=False to query it"
            ) from None
        return fd

    def _release_lock(self) -> None:
        if self._lock_fd is not None:
            os.close(self._lock_fd)
            self._lock_fd = None

    def _open_writer(self, path: str) -> sqlite3.Connection:
        exists = os.path.exists(path)
        conn = sqlite3.connect(path, timeout=0.0)
        conn.execute("PRAGMA foreign_keys = ON")
        if not exists:
            # auto_vacuum must be configured before the first table.
            conn.execute("PRAGMA auto_vacuum = INCREMENTAL")
            conn.execute("PRAGMA journal_mode = WAL")
            conn.execute("PRAGMA synchronous = NORMAL")
            try:
                conn.executescript(_SCHEMA)
                conn.execute(f"PRAGMA user_version = {int(SCHEMA_VERSION)}")
                conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
                conn.commit()
            except sqlite3.Error:
                conn.rollback()
                conn.close()
                raise
        else:
            conn.execute("PRAGMA journal_mode = WAL")
            conn.execute("PRAGMA synchronous = NORMAL")
            self._check_schema(conn, path)
        return conn

    def _open_reader(self, path: str) -> sqlite3.Connection:
        if not os.path.exists(path):
            raise HistoryError(f"history store not found: {path}")
        conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True, timeout=0.0)
        self._check_schema(conn, path)
        return conn

    @staticmethod
    def _check_schema(conn: sqlite3.Connection, path: str) -> None:
        try:
            (version,) = conn.execute("PRAGMA user_version").fetchone()
        except sqlite3.Error as exc:  # pragma: no cover - corrupt file
            conn.close()
            raise HistoryError(f"cannot read schema version from {path}: {exc}") from exc
        if version != SCHEMA_VERSION:
            conn.close()
            raise SchemaMismatchError(
                f"{path} has schema version {version}, this build writes "
                f"{SCHEMA_VERSION}; refusing to open (migrate or archive it)"
            )

    def close(self) -> None:
        """Checkpoint the WAL and release the writer lock."""
        if self._conn is not None:
            if self.writer:
                try:
                    self._conn.commit()
                    self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
                except sqlite3.Error:
                    self._conn.rollback()
            self._conn.close()
            self._conn = None
        self._release_lock()

    def __enter__(self) -> "HistoryStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    @property
    def _db(self) -> sqlite3.Connection:
        if self._conn is None:
            raise HistoryError("history store is closed")
        return self._conn

    def _require_writer(self) -> sqlite3.Connection:
        if not self.writer:
            raise HistoryError("history store opened read-only")
        return self._db

    # -- appends -------------------------------------------------------

    def append_epoch(
        self,
        ts: float,
        *,
        source: str = "engine",
        mode: str = "full",
        backend: str = "python",
        sealed_by: str = "batch",
        complete: bool = True,
        updates: int = 0,
        missing: int = 0,
        elapsed_s: float = 0.0,
        detected: bool = False,
        violations: int = 0,
        signals: Tuple[int, int, int, int] = (0, 0, 0, 0),
        verdicts: Sequence[Tuple[str, bool, int, int]] = (),
        provenance: Sequence[Tuple[str, str]] = (),
        recorded_at: Optional[float] = None,
    ) -> int:
        """Append one epoch with its verdict and provenance rows.

        Args:
            ts: The epoch's virtual (snapshot) timestamp.
            signals: ``(confirmed, repaired, raw, unknown)`` hardened
                signal disposition counts for the epoch.
            verdicts: ``(input_name, valid, num_violations,
                num_evaluated)`` per input, in a caller-fixed order.
            provenance: ``(input_name, compact_json_payload)`` rows;
                by convention only inputs that failed validation.
            recorded_at: Durable wall anchor; the store clock when
                omitted.  Deterministic writers pass the epoch ``ts``.

        Returns:
            The new epoch's ``epoch_id`` (monotonically increasing).
        """
        conn = self._require_writer()
        anchor = self._clock() if recorded_at is None else float(recorded_at)
        confirmed, repaired, raw, unknown = signals
        try:
            cursor = conn.execute(
                "INSERT INTO epochs (ts, recorded_at, source, mode, backend,"
                " sealed_by, complete, updates, missing, elapsed_s, detected,"
                " violations, signals_confirmed, signals_repaired,"
                " signals_raw, signals_unknown)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    float(ts), anchor, source, mode, backend, sealed_by,
                    int(bool(complete)), int(updates), int(missing),
                    float(elapsed_s), int(bool(detected)), int(violations),
                    int(confirmed), int(repaired), int(raw), int(unknown),
                ),
            )
            epoch_id = int(cursor.lastrowid)
            conn.executemany(
                "INSERT INTO verdicts (epoch_id, input_name, valid,"
                " num_violations, num_evaluated) VALUES (?, ?, ?, ?, ?)",
                [
                    (epoch_id, name, int(bool(valid)), int(nviol), int(neval))
                    for name, valid, nviol, neval in verdicts
                ],
            )
            conn.executemany(
                "INSERT INTO provenance (epoch_id, input_name, payload)"
                " VALUES (?, ?, ?)",
                [(epoch_id, name, payload) for name, payload in provenance],
            )
            conn.commit()
        except sqlite3.Error:
            conn.rollback()
            raise
        return epoch_id

    def append_counters(
        self, epoch_id: int, samples: Sequence[Tuple[str, Dict[str, str], float]]
    ) -> int:
        """Snapshot metric samples against an epoch; returns snapshot id."""
        conn = self._require_writer()
        (previous,) = conn.execute(
            "SELECT COALESCE(MAX(snapshot_id), 0) FROM counters"
        ).fetchone()
        snapshot_id = int(previous) + 1
        try:
            conn.executemany(
                "INSERT INTO counters (snapshot_id, epoch_id, name, labels, value)"
                " VALUES (?, ?, ?, ?, ?)",
                [
                    (snapshot_id, int(epoch_id), name, _canonical_labels(labels), float(value))
                    for name, labels, value in samples
                ],
            )
            conn.commit()
        except sqlite3.Error:
            conn.rollback()
            raise
        return snapshot_id

    def append_alert(
        self,
        epoch_id: int,
        ts: float,
        rule: str,
        key: str,
        severity: str,
        message: str,
    ) -> int:
        """Append one fired alert to the ledger."""
        conn = self._require_writer()
        try:
            cursor = conn.execute(
                "INSERT INTO alerts (epoch_id, ts, rule, key, severity, message)"
                " VALUES (?, ?, ?, ?, ?, ?)",
                (int(epoch_id), float(ts), rule, key, severity, message),
            )
            conn.commit()
        except sqlite3.Error:
            conn.rollback()
            raise
        return int(cursor.lastrowid)

    # -- shape ---------------------------------------------------------

    def epoch_count(self) -> int:
        (count,) = self._db.execute("SELECT COUNT(*) FROM epochs").fetchone()
        return int(count)

    def row_counts(self) -> Dict[str, int]:
        """Row count per table (the ``history_rows_total`` source)."""
        out: Dict[str, int] = {}
        for table in ("epochs",) + _EPOCH_TABLES:
            (count,) = self._db.execute(f"SELECT COUNT(*) FROM {table}").fetchone()
            out[table] = int(count)
        return out

    def store_bytes(self) -> int:
        """Bytes the main database file currently occupies."""
        row = self._db.execute(
            "SELECT page_count * page_size FROM pragma_page_count(),"
            " pragma_page_size()"
        ).fetchone()
        return int(row[0])

    def ts_range(self) -> Optional[Tuple[float, float]]:
        row = self._db.execute("SELECT MIN(ts), MAX(ts) FROM epochs").fetchone()
        if row is None or row[0] is None:
            return None
        return float(row[0]), float(row[1])

    # -- queries -------------------------------------------------------

    _EPOCH_COLUMNS = (
        "epoch_id, ts, recorded_at, source, mode, backend, sealed_by,"
        " complete, updates, missing, elapsed_s, detected, violations,"
        " signals_confirmed, signals_repaired, signals_raw, signals_unknown"
    )

    @staticmethod
    def _epoch_row(row: Tuple) -> EpochRow:
        return EpochRow(
            epoch_id=int(row[0]),
            ts=float(row[1]),
            recorded_at=float(row[2]),
            source=str(row[3]),
            mode=str(row[4]),
            backend=str(row[5]),
            sealed_by=str(row[6]),
            complete=bool(row[7]),
            updates=int(row[8]),
            missing=int(row[9]),
            elapsed_s=float(row[10]),
            detected=bool(row[11]),
            violations=int(row[12]),
            signals_confirmed=int(row[13]),
            signals_repaired=int(row[14]),
            signals_raw=int(row[15]),
            signals_unknown=int(row[16]),
        )

    def tail(self, n: int = 10) -> List[EpochRow]:
        """The newest ``n`` epochs, oldest of them first."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        rows = self._db.execute(
            f"SELECT {self._EPOCH_COLUMNS} FROM epochs"
            " ORDER BY epoch_id DESC LIMIT ?",
            (int(n),),
        ).fetchall()
        return [self._epoch_row(row) for row in reversed(rows)]

    def epochs(
        self,
        since: Optional[float] = None,
        until: Optional[float] = None,
        detected_only: bool = False,
        limit: Optional[int] = None,
    ) -> List[EpochRow]:
        """Epoch rows in append order, optionally filtered."""
        clauses: List[str] = []
        params: List[object] = []
        if since is not None:
            clauses.append("ts >= ?")
            params.append(float(since))
        if until is not None:
            clauses.append("ts <= ?")
            params.append(float(until))
        if detected_only:
            clauses.append("detected = 1")
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        tail = " LIMIT ?" if limit is not None else ""
        if limit is not None:
            params.append(int(limit))
        rows = self._db.execute(
            f"SELECT {self._EPOCH_COLUMNS} FROM epochs{where} ORDER BY epoch_id{tail}",
            tuple(params),
        ).fetchall()
        return [self._epoch_row(row) for row in rows]

    def verdicts_for(
        self, epoch_id: Optional[int] = None, input_name: Optional[str] = None
    ) -> List[VerdictRow]:
        clauses: List[str] = []
        params: List[object] = []
        if epoch_id is not None:
            clauses.append("epoch_id = ?")
            params.append(int(epoch_id))
        if input_name is not None:
            clauses.append("input_name = ?")
            params.append(input_name)
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        rows = self._db.execute(
            "SELECT epoch_id, input_name, valid, num_violations, num_evaluated"
            f" FROM verdicts{where} ORDER BY epoch_id, input_name",
            tuple(params),
        ).fetchall()
        return [
            VerdictRow(int(r[0]), str(r[1]), bool(r[2]), int(r[3]), int(r[4]))
            for r in rows
        ]

    def provenance_for(self, epoch_id: int) -> Dict[str, Dict[str, object]]:
        """Decoded provenance payloads for one epoch, keyed by input."""
        rows = self._db.execute(
            "SELECT input_name, payload FROM provenance WHERE epoch_id = ?"
            " ORDER BY input_name",
            (int(epoch_id),),
        ).fetchall()
        return {str(name): json.loads(payload) for name, payload in rows}

    def alerts(self, limit: Optional[int] = None) -> List[AlertRow]:
        tail = " LIMIT ?" if limit is not None else ""
        params: Tuple = (int(limit),) if limit is not None else ()
        rows = self._db.execute(
            "SELECT alert_id, epoch_id, ts, rule, key, severity, message"
            f" FROM alerts ORDER BY alert_id{tail}",
            params,
        ).fetchall()
        return [
            AlertRow(int(r[0]), int(r[1]), float(r[2]), str(r[3]), str(r[4]), str(r[5]), str(r[6]))
            for r in rows
        ]

    def counter_series(self, name: str) -> List[Tuple[int, Dict[str, str], float]]:
        """``(epoch_id, labels, value)`` per snapshot for one family."""
        rows = self._db.execute(
            "SELECT epoch_id, labels, value FROM counters WHERE name = ?"
            " ORDER BY snapshot_id, labels",
            (name,),
        ).fetchall()
        return [(int(r[0]), json.loads(r[1]), float(r[2])) for r in rows]

    # -- retention and compaction --------------------------------------

    def enforce_retention(
        self, policy: RetentionPolicy, now: Optional[float] = None
    ) -> int:
        """Delete the oldest epochs until the policy holds.

        Deletion is strictly oldest-first by ``epoch_id`` (append
        order), so retention can never punch holes in the middle of the
        history.  Returns the number of epoch rows deleted; cascading
        deletes remove their verdicts, provenance, counters and alerts
        in the same transaction.
        """
        if not policy.bounded:
            return 0
        conn = self._require_writer()
        cutoff_id = 0
        total = self.epoch_count()
        if policy.max_epochs is not None and total > policy.max_epochs:
            row = conn.execute(
                "SELECT epoch_id FROM epochs ORDER BY epoch_id LIMIT 1 OFFSET ?",
                (total - policy.max_epochs,),
            ).fetchone()
            if row is not None:
                cutoff_id = max(cutoff_id, int(row[0]))
        if policy.max_age_s is not None:
            horizon = (self._clock() if now is None else float(now)) - policy.max_age_s
            row = conn.execute(
                "SELECT MAX(epoch_id) FROM epochs WHERE recorded_at < ?",
                (horizon,),
            ).fetchone()
            if row is not None and row[0] is not None:
                cutoff_id = max(cutoff_id, int(row[0]) + 1)
        deleted = self._delete_below(cutoff_id)
        if policy.max_bytes is not None:
            deleted += self._shrink_to_bytes(policy.max_bytes)
        return deleted

    def _delete_below(self, cutoff_id: int) -> int:
        """Delete every epoch with ``epoch_id < cutoff_id``."""
        if cutoff_id <= 0:
            return 0
        conn = self._require_writer()
        try:
            cursor = conn.execute(
                "DELETE FROM epochs WHERE epoch_id < ?", (int(cutoff_id),)
            )
            conn.commit()
        except sqlite3.Error:
            conn.rollback()
            raise
        return int(cursor.rowcount)

    def _shrink_to_bytes(self, max_bytes: int) -> int:
        """Drop oldest epochs in batches until page usage fits."""
        deleted = 0
        while self.store_bytes() > max_bytes:
            rows = self._db.execute(
                "SELECT epoch_id FROM epochs ORDER BY epoch_id LIMIT 1 OFFSET 15"
            ).fetchone()
            oldest_batch_end = (
                int(rows[0])
                if rows is not None
                else None
            )
            if oldest_batch_end is None:
                row = self._db.execute(
                    "SELECT MAX(epoch_id) FROM epochs"
                ).fetchone()
                if row is None or row[0] is None:
                    break  # nothing left to delete
                oldest_batch_end = int(row[0]) + 1
            removed = self._delete_below(oldest_batch_end)
            if removed == 0:
                break
            deleted += removed
            self._db.execute("PRAGMA incremental_vacuum")
            self._db.commit()
        return deleted

    def compact(
        self,
        policy: Optional[RetentionPolicy] = None,
        now: Optional[float] = None,
    ) -> CompactionResult:
        """Enforce retention, checkpoint the WAL, and rewrite the file.

        ``VACUUM`` rebuilds the database into the minimum number of
        pages, returning every page freed by retention to the
        filesystem -- this is what keeps months-long stores sublinear
        in epochs streamed.
        """
        conn = self._require_writer()
        before = self.store_bytes()
        deleted = self.enforce_retention(policy, now=now) if policy is not None else 0
        try:
            conn.commit()
            conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            conn.execute("VACUUM")
            conn.commit()
        except sqlite3.Error:
            conn.rollback()
            raise
        return CompactionResult(
            bytes_before=before,
            bytes_after=self.store_bytes(),
            epochs_deleted=deleted,
        )
