"""Rolling analytics over the verdict history store.

Pure functions from ordered :class:`~repro.history.store.EpochRow`
sequences to windowed quality metrics -- detection / repair / unknown
rates, verdict-latency percentiles -- plus regression detection that
flags when a recent window drifts beyond a configurable band versus
its trailing baseline.  Everything here is deterministic and
side-effect free: the alert engine evaluates these against its rolling
window each epoch, and the ``repro history trends`` CLI evaluates them
over a stored run after the fact.  Both paths share one metric
vocabulary (:data:`METRICS`), so a trend an operator alerts on is the
same number the CLI prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.history.store import EpochRow

__all__ = [
    "METRICS",
    "TrendPoint",
    "RegressionFinding",
    "percentile",
    "window_metric",
    "compute_trends",
    "detect_regression",
]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    ``q`` is in ``[0, 100]``.  Raises on an empty sequence -- callers
    guard with window emptiness checks rather than inventing a zero.
    """
    if not values:
        raise ValueError("percentile of an empty window")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    # Nearest-rank: ceil(q/100 * N), 1-indexed.
    rank = max(1, -(-int(q * len(ordered)) // 100) if q > 0 else 1)
    rank = min(rank, len(ordered))
    return ordered[rank - 1]


def _rate(rows: Sequence[EpochRow], flag: Callable[[EpochRow], bool]) -> float:
    return sum(1 for row in rows if flag(row)) / len(rows)


def _signal_rate(rows: Sequence[EpochRow], pick: Callable[[EpochRow], int]) -> float:
    total = sum(
        row.signals_confirmed + row.signals_repaired + row.signals_raw + row.signals_unknown
        for row in rows
    )
    if total == 0:
        return 0.0
    return sum(pick(row) for row in rows) / total


def _latency(rows: Sequence[EpochRow], q: float) -> float:
    return percentile([row.elapsed_s for row in rows], q)


#: Windowed metric vocabulary: name -> fn(non-empty ordered window).
#: These names are what the alert grammar's ``trend:`` / ``regression:``
#: forms accept and what ``repro history trends`` prints.
METRICS: Mapping[str, Callable[[Sequence[EpochRow]], float]] = MappingProxyType(
    {
        "detection_rate": lambda rows: _rate(rows, lambda r: r.detected),
        "incomplete_rate": lambda rows: _rate(rows, lambda r: not r.complete),
        "repair_rate": lambda rows: _signal_rate(rows, lambda r: r.signals_repaired),
        "unknown_rate": lambda rows: _signal_rate(rows, lambda r: r.signals_unknown),
        "confirmed_rate": lambda rows: _signal_rate(rows, lambda r: r.signals_confirmed),
        "violations_per_epoch": lambda rows: sum(r.violations for r in rows) / len(rows),
        "updates_per_epoch": lambda rows: sum(r.updates for r in rows) / len(rows),
        "latency_p50": lambda rows: _latency(rows, 50.0),
        "latency_p95": lambda rows: _latency(rows, 95.0),
        "latency_p99": lambda rows: _latency(rows, 99.0),
    }
)


def _metric(name: str) -> Callable[[Sequence[EpochRow]], float]:
    try:
        return METRICS[name]
    except KeyError:
        raise ValueError(
            f"unknown history metric {name!r}; known: {', '.join(sorted(METRICS))}"
        ) from None


def window_metric(rows: Sequence[EpochRow], name: str) -> Optional[float]:
    """One metric over one window; ``None`` when the window is empty."""
    fn = _metric(name)
    if not rows:
        return None
    return fn(rows)


@dataclass(frozen=True)
class TrendPoint:
    """Metrics over one consecutive window of epochs."""

    first_epoch_id: int
    last_epoch_id: int
    last_ts: float
    epochs: int
    values: Dict[str, float]

    def to_dict(self) -> Dict[str, object]:
        return {
            "first_epoch_id": self.first_epoch_id,
            "last_epoch_id": self.last_epoch_id,
            "last_ts": self.last_ts,
            "epochs": self.epochs,
            "values": dict(self.values),
        }


def compute_trends(
    rows: Sequence[EpochRow],
    window: int,
    metrics: Optional[Sequence[str]] = None,
) -> List[TrendPoint]:
    """Split a run into consecutive windows and evaluate metrics on each.

    The final window may be shorter than ``window`` (partial tail);
    trailing partial windows are still reported so a live ``trends``
    call reflects the newest epochs.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    names: Tuple[str, ...] = tuple(metrics) if metrics is not None else tuple(sorted(METRICS))
    for name in names:
        if name not in METRICS:
            raise ValueError(
                f"unknown history metric {name!r}; known: {', '.join(sorted(METRICS))}"
            )
    points: List[TrendPoint] = []
    for start in range(0, len(rows), window):
        chunk = rows[start : start + window]
        points.append(
            TrendPoint(
                first_epoch_id=chunk[0].epoch_id,
                last_epoch_id=chunk[-1].epoch_id,
                last_ts=chunk[-1].ts,
                epochs=len(chunk),
                values={name: METRICS[name](chunk) for name in names},
            )
        )
    return points


@dataclass(frozen=True)
class RegressionFinding:
    """Outcome of one recent-vs-baseline drift check.

    ``breached`` is ``True`` when the recent window's value exceeded
    the trailing baseline by more than ``band_pct`` percent.  The check
    is one-sided -- for every metric in :data:`METRICS`, higher means
    worse (rates of bad outcomes, latencies) -- so improvement never
    alerts.
    """

    series: str
    recent: float
    baseline: float
    drift_pct: float
    band_pct: float
    breached: bool


def detect_regression(
    rows: Sequence[EpochRow],
    series: str,
    window: int,
    baseline: int,
    band_pct: float,
) -> Optional[RegressionFinding]:
    """Compare the last ``window`` epochs against the ``baseline`` before.

    Returns ``None`` until enough history exists (``window + baseline``
    epochs) -- a regression needs something to regress *from*.  A zero
    baseline with a positive recent value counts as infinite drift and
    breaches any band.
    """
    if window < 1 or baseline < 1:
        raise ValueError("window and baseline must both be >= 1")
    if band_pct < 0.0:
        raise ValueError(f"band_pct must be >= 0, got {band_pct}")
    if len(rows) < window + baseline:
        return None
    recent_rows = rows[-window:]
    baseline_rows = rows[-(window + baseline) : -window]
    recent = _metric(series)(recent_rows)
    base = _metric(series)(baseline_rows)
    if base <= 0.0:
        drift = float("inf") if recent > 0.0 else 0.0
    else:
        drift = 100.0 * (recent - base) / base
    return RegressionFinding(
        series=series,
        recent=recent,
        baseline=base,
        drift_pct=drift,
        band_pct=band_pct,
        breached=drift > band_pct,
    )
