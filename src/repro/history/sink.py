"""Write-through from validation to the history store.

:class:`HistorySink` is the seam :class:`~repro.engine.runner.ValidationEngine`
and :class:`~repro.stream.ingest.StreamPipeline` hold: each validated
epoch's :class:`~repro.core.report.ValidationReport` flows through
:meth:`HistorySink.record` and lands in the store as one transaction --
the epoch row with its signal-disposition counts, per-input verdict
rows, compacted provenance payloads (invalid inputs only; valid
verdicts carry no fired invariants, so storing their provenance would
be pure bloat at 1M-epoch scale), and, on a configurable cadence,
snapshots of the ``engine_registry`` counter families and retention
sweeps.

Determinism: with ``HistoryConfig.deterministic`` set, the store's
bytes depend only on the validated epochs -- ``recorded_at`` anchors
to the epoch's virtual timestamp instead of the wall clock, measured
latencies are recorded as zero, and timing-derived counter families
(anything whose name mentions seconds/ms/utilisation) are dropped from
snapshots.  Two identical seeded runs then produce byte-identical
store files, which is how the reproducibility test and the fuzz
harness can diff whole stores.

The sink also projects store/alert internals onto a shared
:class:`~repro.obs.metrics.MetricsRegistry` (``history_rows_total``,
``history_store_bytes``, ``history_compactions_total``, ...), so the
existing ``--metrics-prom`` export covers the history layer with no
new flags.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.report import ValidationReport
from repro.history.alerts import AlertEngine
from repro.history.store import HistoryStore, RetentionPolicy
from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import DISPOSITIONS

__all__ = ["HistoryConfig", "HistorySink"]

#: Name fragments marking counter families as timing-derived; these
#: are excluded from snapshots in deterministic mode (wall-time noise
#: would break byte-reproducibility of the store).
_TIMING_FRAGMENTS = ("seconds", "_ms", "utilisation", "latency")


@dataclass(frozen=True)
class HistoryConfig:
    """How a :class:`HistorySink` writes through to its store.

    Attributes:
        path: The sqlite store file.
        deterministic: Anchor ``recorded_at`` to epoch virtual time,
            zero out measured latencies, and drop timing-derived
            counter families -- byte-reproducible stores (see module
            docstring).  Off by default: live deployments want real
            wall anchors and latencies.
        counter_snapshot_every: Snapshot the engine counter families
            every N epochs (0 disables).  Snapshot cost is O(families),
            so the cadence bounds write-through overhead at soak scale.
        retention: Size/age/count bounds enforced during the run.
        retention_every: Enforce retention every N epochs (0 defers it
            all to an explicit ``compact``).
        compact_every: Full compaction (checkpoint + VACUUM rewrite)
            every N epochs (0 = only on close/CLI).  VACUUM rewrites
            the file, so this should be orders of magnitude rarer than
            retention sweeps.
    """

    path: str
    deterministic: bool = False
    counter_snapshot_every: int = 10
    retention: RetentionPolicy = field(default_factory=RetentionPolicy)
    retention_every: int = 50
    compact_every: int = 0

    def __post_init__(self) -> None:
        for name in ("counter_snapshot_every", "retention_every", "compact_every"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")


def _signal_dispositions(report: ValidationReport) -> Tuple[int, int, int, int]:
    """Count hardened signals by disposition for one epoch.

    Scalar signals carry the Confidence ladder directly; link and
    drain entries follow the provenance module's convention -- two or
    more independent evidence notes means cross-checked (confirmed),
    one means a single vantage point (raw).
    """
    counts = {"confirmed": 0, "repaired": 0, "raw": 0, "unknown": 0}
    hardened = report.hardened
    for table in (hardened.edge_flows, hardened.ext_in, hardened.ext_out, hardened.drops):
        for value in table.values():
            counts[DISPOSITIONS[value.confidence]] += 1
    for status in hardened.links.values():
        counts["confirmed" if len(status.evidence) >= 2 else "raw"] += 1
    for drains in (hardened.node_drains, hardened.link_drains):
        for drain in drains.values():
            counts["confirmed" if len(drain.evidence) >= 2 else "raw"] += 1
    return (counts["confirmed"], counts["repaired"], counts["raw"], counts["unknown"])


class HistorySink:
    """Durable write-through for validated epochs.

    Args:
        config: Write-through policy (:class:`HistoryConfig`).
        store: An already-open writer store; one is opened at
            ``config.path`` when omitted (and then owned -- closed by
            :meth:`close`).
        alerts: Optional :class:`~repro.history.alerts.AlertEngine`;
            fired events are appended to the store's alert ledger in
            addition to the engine's own sink fan-out.
        metrics: Optional shared registry for the ``history_*``
            families (pass the same registry the engine/pipeline use so
            one ``--metrics-prom`` export covers everything).
    """

    def __init__(
        self,
        config: HistoryConfig,
        store: Optional[HistoryStore] = None,
        alerts: Optional[AlertEngine] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self._owns_store = store is None
        self.store = store if store is not None else HistoryStore(config.path, writer=True)
        self.alerts = alerts
        registry = metrics if metrics is not None else MetricsRegistry()
        self._rows_total = registry.counter(
            "history_rows_total",
            "Rows currently retained in the history store, by table.",
            labels=("table",),
        )
        self._store_bytes = registry.gauge(
            "history_store_bytes",
            "Bytes the history store's main database file occupies.",
        )
        self._epochs_written = registry.counter(
            "history_epochs_written_total",
            "Epochs written through to the history store this run.",
        )
        self._compactions = registry.counter(
            "history_compactions_total",
            "Full store compactions (WAL checkpoint + VACUUM rewrite).",
        )
        self._retention_deleted = registry.counter(
            "history_retention_deleted_total",
            "Epoch rows deleted by retention sweeps this run.",
        )
        for counter in (self._epochs_written, self._compactions, self._retention_deleted):
            counter.inc(0.0)
        self._written = 0
        self._refresh_shape_metrics()

    # ------------------------------------------------------------------

    def record(
        self,
        report: ValidationReport,
        *,
        source: str = "engine",
        mode: str = "full",
        backend: str = "python",
        sealed_by: str = "batch",
        complete: bool = True,
        updates: int = 0,
        missing: int = 0,
        elapsed_s: float = 0.0,
        stats=None,
    ) -> int:
        """Write one validated epoch through to the store.

        Args:
            report: The validation pass outcome.
            source: ``"engine"`` (batch validate) or ``"stream"``.
            sealed_by: How the epoch sealed (``batch`` for direct
                engine calls, the assembler's ``watermark``/``drain``
                for streamed epochs).
            complete / updates / missing: Assembly coverage, where the
                caller has it (streamed epochs).
            elapsed_s: Measured verdict latency for the epoch (zeroed
                in deterministic mode).
            stats: Optional :class:`~repro.engine.stats.EngineStats`
                snapshot for the counter-snapshot cadence.

        Returns:
            The stored ``epoch_id``.
        """
        deterministic = self.config.deterministic
        verdict_rows = [
            (name, verdict.valid, verdict.num_violations, verdict.num_evaluated)
            for name, verdict in sorted(report.verdicts.items())
        ]
        provenance_rows = [
            (name, json.dumps(prov.to_dict(), sort_keys=True, separators=(",", ":")))
            for name, prov in sorted(report.provenance.items())
            if not prov.valid
        ]
        violations = sum(verdict.num_violations for verdict in report.verdicts.values())
        epoch_id = self.store.append_epoch(
            report.timestamp,
            source=source,
            mode=mode,
            backend=backend,
            sealed_by=sealed_by,
            complete=complete,
            updates=updates,
            missing=missing,
            elapsed_s=0.0 if deterministic else float(elapsed_s),
            detected=report.detected_anything(),
            violations=violations,
            signals=_signal_dispositions(report),
            verdicts=verdict_rows,
            provenance=provenance_rows,
            recorded_at=report.timestamp if deterministic else None,
        )
        self._written += 1
        self._epochs_written.inc()

        cadence = self.config.counter_snapshot_every
        if stats is not None and cadence and self._written % cadence == 0:
            self.store.append_counters(epoch_id, self._counter_samples(stats))

        if self.alerts is not None:
            valid_pairs = [(name, valid) for name, valid, _, _ in verdict_rows]
            for event in self.alerts.observe(self.store.tail(1)[0], valid_pairs):
                self.store.append_alert(
                    event.epoch_id, event.ts, event.rule, event.key,
                    event.severity, event.message,
                )

        sweep = self.config.retention_every
        if sweep and self._written % sweep == 0 and self.config.retention.bounded:
            now = report.timestamp if deterministic else None
            self._retention_deleted.inc(
                self.store.enforce_retention(self.config.retention, now=now)
            )
        rewrite = self.config.compact_every
        if rewrite and self._written % rewrite == 0:
            self.compact()
        self._refresh_shape_metrics()
        return epoch_id

    def _counter_samples(self, stats) -> List[Tuple[str, Dict[str, str], float]]:
        """Project engine stats into snapshot rows, sorted and filtered."""
        from repro.control.metrics import engine_registry

        samples: List[Tuple[str, Dict[str, str], float]] = []
        for name, labels, value in engine_registry(stats).samples():
            if self.config.deterministic and any(
                fragment in name for fragment in _TIMING_FRAGMENTS
            ):
                continue
            samples.append((name, labels, value))
        samples.sort(key=lambda sample: (sample[0], sorted(sample[1].items())))
        return samples

    def compact(self):
        """Retention + WAL checkpoint + VACUUM, with metrics updated.

        Returns the store's
        :class:`~repro.history.store.CompactionResult`.
        """
        policy = self.config.retention if self.config.retention.bounded else None
        now = None
        if self.config.deterministic:
            newest = self.store.ts_range()
            now = newest[1] if newest is not None else 0.0
        result = self.store.compact(policy, now=now)
        self._compactions.inc()
        self._retention_deleted.inc(result.epochs_deleted)
        self._refresh_shape_metrics()
        return result

    def _refresh_shape_metrics(self) -> None:
        for table, count in self.store.row_counts().items():
            self._rows_total.labels(table=table).set_to(float(count))
        self._store_bytes.set(float(self.store.store_bytes()))

    def close(self) -> None:
        """Flush shape metrics and close what the sink owns."""
        self._refresh_shape_metrics()
        if self.alerts is not None:
            self.alerts.close()
        if self._owns_store:
            self.store.close()

    def __enter__(self) -> "HistorySink":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
