"""Router-level telemetry faults (paper Section 2.1, "Telemetry Bugs").

Each fault class reproduces one bug family the paper reports from
production:

- :class:`ZeroedDuplicateTelemetry`: "one observed bug in the router OS
  caused certain telemetry messages to be duplicated, with one of the
  two messages reporting (at random) that the number of packets
  received on the router's interfaces was zero."
- :class:`MalformedTelemetry`: "OS-level bugs that led to malformed
  telemetry responses."
- :class:`FormatChangeTelemetry`: "changes in telemetry format (e.g.,
  from string to int)."
- :class:`DelayedTelemetry`: "delayed telemetry reporting" (stale
  readings from an earlier traffic epoch).
- :class:`MissingTelemetry`: signals missing entirely (e.g. dropped due
  to "incorrect QoS marking on telemetry packets").
- :class:`WrongLinkStatus`: an interface misreports its operational
  status.
- :class:`UnitChangeTelemetry`: rates reported in the wrong unit -- a
  magnitude-class corruption used in sensitivity studies.
- :class:`RandomCounterCorruption` / :class:`CorrelatedCounterFault`:
  parameterised corruption generators for the hardening-efficacy
  ablation (the Section 3.2 open question).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.faults.base import (
    InjectionRecord,
    SignalFault,
    decode_interface_keys,
    encode_interface_keys,
)
from repro.net.topology import EXTERNAL_PEER
from repro.telemetry.counters import MalformedValueError, coerce_rate
from repro.telemetry.snapshot import InterfaceKey, NetworkSnapshot


def _rate_or_none(raw: object) -> Optional[float]:
    """Coerce a possibly-already-corrupted value; None when hopeless.

    Faults stack (a scaling bug can hit an interface another bug already
    garbled), so fault mutation must tolerate any current value.
    """
    try:
        return coerce_rate(raw)  # type: ignore[arg-type]
    except MalformedValueError:
        return None

__all__ = [
    "ZeroedDuplicateTelemetry",
    "MalformedTelemetry",
    "FormatChangeTelemetry",
    "UnitChangeTelemetry",
    "DelayedTelemetry",
    "MissingTelemetry",
    "WrongLinkStatus",
    "ProbeOutage",
    "RandomCounterCorruption",
    "CorrelatedCounterFault",
]


def _eligible_keys(
    snapshot: NetworkSnapshot, include_external: bool
) -> List[InterfaceKey]:
    keys = sorted(snapshot.counters)
    if include_external:
        return keys
    return [key for key in keys if key[1] != EXTERNAL_PEER]


def _pick(
    keys: Sequence[InterfaceKey], count: int, rng: random.Random
) -> List[InterfaceKey]:
    if count >= len(keys):
        return list(keys)
    return rng.sample(list(keys), count)


class ZeroedDuplicateTelemetry(SignalFault):
    """Duplicate messages where one copy zeroes the received counters.

    Args:
        interfaces: Explicit interfaces to hit, or ``None`` to pick
            ``count`` random WAN interfaces.
        count: Number of random interfaces when ``interfaces`` is None.
    """

    def __init__(
        self,
        interfaces: Optional[Iterable[InterfaceKey]] = None,
        count: int = 1,
    ) -> None:
        self._interfaces = list(interfaces) if interfaces is not None else None
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self._count = count

    def to_params(self) -> Dict[str, object]:
        return {
            "interfaces": encode_interface_keys(self._interfaces),
            "count": self._count,
        }

    @classmethod
    def from_params(cls, params: Mapping[str, object]) -> "ZeroedDuplicateTelemetry":
        return cls(
            interfaces=decode_interface_keys(params.get("interfaces")),  # type: ignore[arg-type]
            count=int(params.get("count", 1)),  # type: ignore[arg-type]
        )

    def apply(self, snapshot: NetworkSnapshot, rng: random.Random) -> List[InjectionRecord]:
        targets = (
            self._interfaces
            if self._interfaces is not None
            else _pick(_eligible_keys(snapshot, include_external=False), self._count, rng)
        )
        records = []
        for key in targets:
            reading = snapshot.counters.get(key)
            if reading is None:
                continue
            reading.rx_rate = 0.0
            # The duplicate reuses the previous sequence number.
            reading.sequence = max(0, reading.sequence - 1)
            records.append(
                InjectionRecord(
                    fault=self.name,
                    signal="rx",
                    node=key[0],
                    peer=key[1],
                    detail="duplicated message zeroed rx counters",
                )
            )
        return records


class MalformedTelemetry(SignalFault):
    """Counter values replaced by unparseable garbage.

    Args:
        interfaces: Explicit targets, or ``None`` for random selection.
        count: Number of random interfaces when unspecified.
        garbage: The junk value to report.
    """

    def __init__(
        self,
        interfaces: Optional[Iterable[InterfaceKey]] = None,
        count: int = 1,
        garbage: object = "ERR:OVERFLOW",
    ) -> None:
        self._interfaces = list(interfaces) if interfaces is not None else None
        self._count = count
        self._garbage = garbage

    def to_params(self) -> Dict[str, object]:
        return {
            "interfaces": encode_interface_keys(self._interfaces),
            "count": self._count,
            "garbage": self._garbage,
        }

    @classmethod
    def from_params(cls, params: Mapping[str, object]) -> "MalformedTelemetry":
        return cls(
            interfaces=decode_interface_keys(params.get("interfaces")),  # type: ignore[arg-type]
            count=int(params.get("count", 1)),  # type: ignore[arg-type]
            garbage=params.get("garbage", "ERR:OVERFLOW"),
        )

    def apply(self, snapshot: NetworkSnapshot, rng: random.Random) -> List[InjectionRecord]:
        targets = (
            self._interfaces
            if self._interfaces is not None
            else _pick(_eligible_keys(snapshot, include_external=False), self._count, rng)
        )
        records = []
        for key in targets:
            reading = snapshot.counters.get(key)
            if reading is None:
                continue
            reading.rx_rate = self._garbage
            reading.tx_rate = self._garbage
            records.append(
                InjectionRecord(
                    fault=self.name,
                    signal="reading",
                    node=key[0],
                    peer=key[1],
                    detail=f"rates replaced with {self._garbage!r}",
                )
            )
        return records


class FormatChangeTelemetry(SignalFault):
    """Rates arrive as decimal strings, truncated to integers.

    Parseable -- coercion succeeds -- but precision is silently lost,
    modeling a rollout that changed the wire format.
    """

    def __init__(
        self, interfaces: Optional[Iterable[InterfaceKey]] = None, count: int = 1
    ) -> None:
        self._interfaces = list(interfaces) if interfaces is not None else None
        self._count = count

    def to_params(self) -> Dict[str, object]:
        return {
            "interfaces": encode_interface_keys(self._interfaces),
            "count": self._count,
        }

    @classmethod
    def from_params(cls, params: Mapping[str, object]) -> "FormatChangeTelemetry":
        return cls(
            interfaces=decode_interface_keys(params.get("interfaces")),  # type: ignore[arg-type]
            count=int(params.get("count", 1)),  # type: ignore[arg-type]
        )

    def apply(self, snapshot: NetworkSnapshot, rng: random.Random) -> List[InjectionRecord]:
        targets = (
            self._interfaces
            if self._interfaces is not None
            else _pick(_eligible_keys(snapshot, include_external=False), self._count, rng)
        )
        records = []
        for key in targets:
            reading = snapshot.counters.get(key)
            if reading is None:
                continue
            for attr in ("rx_rate", "tx_rate"):
                value = _rate_or_none(getattr(reading, attr))
                if value is not None:
                    setattr(reading, attr, str(int(value)))
            records.append(
                InjectionRecord(
                    fault=self.name,
                    signal="reading",
                    node=key[0],
                    peer=key[1],
                    detail="rates restated as truncated integer strings",
                )
            )
        return records


class UnitChangeTelemetry(SignalFault):
    """Rates reported in the wrong unit (scaled by a constant factor)."""

    def __init__(
        self,
        interfaces: Optional[Iterable[InterfaceKey]] = None,
        count: int = 1,
        factor: float = 1000.0,
    ) -> None:
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        self._interfaces = list(interfaces) if interfaces is not None else None
        self._count = count
        self._factor = factor

    def to_params(self) -> Dict[str, object]:
        return {
            "interfaces": encode_interface_keys(self._interfaces),
            "count": self._count,
            "factor": self._factor,
        }

    @classmethod
    def from_params(cls, params: Mapping[str, object]) -> "UnitChangeTelemetry":
        return cls(
            interfaces=decode_interface_keys(params.get("interfaces")),  # type: ignore[arg-type]
            count=int(params.get("count", 1)),  # type: ignore[arg-type]
            factor=float(params.get("factor", 1000.0)),  # type: ignore[arg-type]
        )

    def apply(self, snapshot: NetworkSnapshot, rng: random.Random) -> List[InjectionRecord]:
        targets = (
            self._interfaces
            if self._interfaces is not None
            else _pick(_eligible_keys(snapshot, include_external=False), self._count, rng)
        )
        records = []
        for key in targets:
            reading = snapshot.counters.get(key)
            if reading is None:
                continue
            for attr in ("rx_rate", "tx_rate"):
                value = _rate_or_none(getattr(reading, attr))
                if value is not None:
                    setattr(reading, attr, value * self._factor)
            records.append(
                InjectionRecord(
                    fault=self.name,
                    signal="reading",
                    node=key[0],
                    peer=key[1],
                    detail=f"rates scaled by x{self._factor:g} (unit bug)",
                )
            )
        return records


class DelayedTelemetry(SignalFault):
    """Stale readings from an earlier traffic epoch.

    The reading's timestamp is pushed into the past and its rates are
    scaled by ``drift`` (traffic has changed since the stale sample was
    taken).
    """

    def __init__(
        self,
        interfaces: Optional[Iterable[InterfaceKey]] = None,
        count: int = 1,
        delay_s: float = 300.0,
        drift: float = 0.5,
    ) -> None:
        if delay_s < 0:
            raise ValueError(f"delay_s must be non-negative, got {delay_s}")
        if drift < 0:
            raise ValueError(f"drift must be non-negative, got {drift}")
        self._interfaces = list(interfaces) if interfaces is not None else None
        self._count = count
        self._delay_s = delay_s
        self._drift = drift

    def to_params(self) -> Dict[str, object]:
        return {
            "interfaces": encode_interface_keys(self._interfaces),
            "count": self._count,
            "delay_s": self._delay_s,
            "drift": self._drift,
        }

    @classmethod
    def from_params(cls, params: Mapping[str, object]) -> "DelayedTelemetry":
        return cls(
            interfaces=decode_interface_keys(params.get("interfaces")),  # type: ignore[arg-type]
            count=int(params.get("count", 1)),  # type: ignore[arg-type]
            delay_s=float(params.get("delay_s", 300.0)),  # type: ignore[arg-type]
            drift=float(params.get("drift", 0.5)),  # type: ignore[arg-type]
        )

    def apply(self, snapshot: NetworkSnapshot, rng: random.Random) -> List[InjectionRecord]:
        targets = (
            self._interfaces
            if self._interfaces is not None
            else _pick(_eligible_keys(snapshot, include_external=False), self._count, rng)
        )
        records = []
        for key in targets:
            reading = snapshot.counters.get(key)
            if reading is None:
                continue
            reading.timestamp -= self._delay_s
            for attr in ("rx_rate", "tx_rate"):
                value = _rate_or_none(getattr(reading, attr))
                if value is not None:
                    setattr(reading, attr, value * self._drift)
            records.append(
                InjectionRecord(
                    fault=self.name,
                    signal="reading",
                    node=key[0],
                    peer=key[1],
                    detail=f"stale by {self._delay_s:g}s, drifted x{self._drift:g}",
                )
            )
        return records


class MissingTelemetry(SignalFault):
    """Signals vanish: whole routers go silent or readings are dropped.

    Args:
        nodes: Routers whose every signal disappears.
        interfaces: Individual interfaces whose counter reading is lost.
    """

    def __init__(
        self,
        nodes: Iterable[str] = (),
        interfaces: Iterable[InterfaceKey] = (),
    ) -> None:
        self._nodes = list(nodes)
        self._interfaces = list(interfaces)

    def to_params(self) -> Dict[str, object]:
        return {
            "nodes": list(self._nodes),
            "interfaces": encode_interface_keys(self._interfaces),
        }

    @classmethod
    def from_params(cls, params: Mapping[str, object]) -> "MissingTelemetry":
        return cls(
            nodes=[str(node) for node in params.get("nodes", [])],  # type: ignore[union-attr]
            interfaces=decode_interface_keys(params.get("interfaces")) or (),  # type: ignore[arg-type]
        )

    def apply(self, snapshot: NetworkSnapshot, rng: random.Random) -> List[InjectionRecord]:
        records = []
        for node in self._nodes:
            snapshot.drop_node(node)
            records.append(
                InjectionRecord(
                    fault=self.name, signal="reading", node=node, detail="router silent"
                )
            )
        for key in self._interfaces:
            if snapshot.counters.pop(key, None) is not None:
                records.append(
                    InjectionRecord(
                        fault=self.name,
                        signal="reading",
                        node=key[0],
                        peer=key[1],
                        detail="counter reading lost",
                    )
                )
        return records


class WrongLinkStatus(SignalFault):
    """One endpoint misreports its operational link status.

    Args:
        interfaces: The ``(node, peer)`` endpoints to corrupt.
        report_up: The (wrong) status to report.
    """

    def __init__(self, interfaces: Iterable[InterfaceKey], report_up: bool) -> None:
        self._interfaces = list(interfaces)
        self._report_up = report_up

    def to_params(self) -> Dict[str, object]:
        return {
            "interfaces": encode_interface_keys(self._interfaces),
            "report_up": self._report_up,
        }

    @classmethod
    def from_params(cls, params: Mapping[str, object]) -> "WrongLinkStatus":
        return cls(
            interfaces=decode_interface_keys(params.get("interfaces")) or (),  # type: ignore[arg-type]
            report_up=bool(params.get("report_up", True)),
        )

    def apply(self, snapshot: NetworkSnapshot, rng: random.Random) -> List[InjectionRecord]:
        records = []
        for key in self._interfaces:
            status = snapshot.link_status.get(key)
            if status is None:
                continue
            status.oper_up = self._report_up
            records.append(
                InjectionRecord(
                    fault=self.name,
                    signal="oper_status",
                    node=key[0],
                    peer=key[1],
                    detail=f"oper-status forced to {'up' if self._report_up else 'down'}",
                )
            )
        return records


class ProbeOutage(SignalFault):
    """The probe subsystem itself fails (a correlated R4 failure).

    The paper pitches manufactured signals as *additional* redundancy;
    Hodor's defense-in-depth stance requires that losing them degrades
    gracefully (counters and statuses still decide) rather than taking
    the validator down.  This fault makes probes report failure on the
    given routers' adjacencies -- or everywhere when ``nodes`` is empty
    -- modelling a broken probe agent rollout.

    Args:
        nodes: Routers whose outgoing probes all fail; empty = all.
    """

    def __init__(self, nodes: Iterable[str] = ()) -> None:
        self._nodes = set(nodes)

    def to_params(self) -> Dict[str, object]:
        return {"nodes": sorted(self._nodes)}

    @classmethod
    def from_params(cls, params: Mapping[str, object]) -> "ProbeOutage":
        return cls(nodes=[str(node) for node in params.get("nodes", [])])  # type: ignore[union-attr]

    def apply(self, snapshot: NetworkSnapshot, rng: random.Random) -> List[InjectionRecord]:
        from repro.telemetry.snapshot import ProbeResult

        records = []
        for key in sorted(snapshot.probes):
            if self._nodes and key[0] not in self._nodes:
                continue
            if not snapshot.probes[key].ok:
                continue
            snapshot.probes[key] = ProbeResult(ok=False, rtt_ms=None)
            records.append(
                InjectionRecord(
                    fault=self.name,
                    signal="probe",
                    node=key[0],
                    peer=key[1],
                    detail="probe agent down; probe falsely fails",
                )
            )
        return records


class RandomCounterCorruption(SignalFault):
    """Corrupt N random counters -- the hardening-study workhorse.

    Args:
        count: How many interface counters to corrupt.
        mode: ``"zero"`` (counter reads 0), ``"scale"`` (multiplied by
            ``factor``), or ``"missing"`` (value becomes None).
        side: ``"rx"``, ``"tx"``, or ``"both"``.
        factor: Multiplier for ``"scale"`` mode.
        include_external: Whether host-facing interfaces are eligible.
    """

    _MODES = ("zero", "scale", "missing")

    def __init__(
        self,
        count: int,
        mode: str = "zero",
        side: str = "rx",
        factor: float = 3.0,
        include_external: bool = False,
    ) -> None:
        if mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}, got {mode!r}")
        if side not in ("rx", "tx", "both"):
            raise ValueError(f"side must be rx/tx/both, got {side!r}")
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self._count = count
        self._mode = mode
        self._side = side
        self._factor = factor
        self._include_external = include_external

    def to_params(self) -> Dict[str, object]:
        return {
            "count": self._count,
            "mode": self._mode,
            "side": self._side,
            "factor": self._factor,
            "include_external": self._include_external,
        }

    @classmethod
    def from_params(cls, params: Mapping[str, object]) -> "RandomCounterCorruption":
        return cls(
            count=int(params["count"]),  # type: ignore[arg-type]
            mode=str(params.get("mode", "zero")),
            side=str(params.get("side", "rx")),
            factor=float(params.get("factor", 3.0)),  # type: ignore[arg-type]
            include_external=bool(params.get("include_external", False)),
        )

    def _corrupt(self, value: object) -> object:
        if self._mode == "zero":
            return 0.0
        if self._mode == "missing":
            return None
        rate = _rate_or_none(value)
        return value if rate is None else rate * self._factor

    def apply(self, snapshot: NetworkSnapshot, rng: random.Random) -> List[InjectionRecord]:
        keys = _eligible_keys(snapshot, self._include_external)
        records = []
        for key in _pick(keys, self._count, rng):
            reading = snapshot.counters.get(key)
            if reading is None:
                continue
            sides = ("rx", "tx") if self._side == "both" else (self._side,)
            for side in sides:
                attr = f"{side}_rate"
                setattr(reading, attr, self._corrupt(getattr(reading, attr)))
                records.append(
                    InjectionRecord(
                        fault=self.name,
                        signal=side,
                        node=key[0],
                        peer=key[1],
                        detail=f"{side} {self._mode}",
                    )
                )
        return records


class CorrelatedCounterFault(SignalFault):
    """The same corruption on every interface of a set of routers.

    Models the correlated vendor-OS bug from the paper's Section 3.2
    open question: "a bug in the vendor OS that causes multiple routers
    to report incorrect, but equal signal values."

    Args:
        nodes: The routers (e.g. everything from one vendor).
        factor: Multiplier applied to both counters of every interface
            those routers own (1.0 would be a no-op).
    """

    def __init__(self, nodes: Iterable[str], factor: float = 0.5) -> None:
        if factor < 0:
            raise ValueError(f"factor must be non-negative, got {factor}")
        self._nodes = set(nodes)
        self._factor = factor

    def to_params(self) -> Dict[str, object]:
        return {"nodes": sorted(self._nodes), "factor": self._factor}

    @classmethod
    def from_params(cls, params: Mapping[str, object]) -> "CorrelatedCounterFault":
        return cls(
            nodes=[str(node) for node in params.get("nodes", [])],  # type: ignore[union-attr]
            factor=float(params.get("factor", 0.5)),  # type: ignore[arg-type]
        )

    def apply(self, snapshot: NetworkSnapshot, rng: random.Random) -> List[InjectionRecord]:
        records = []
        for key in sorted(snapshot.counters):
            if key[0] not in self._nodes:
                continue
            reading = snapshot.counters[key]
            for attr, signal in (("rx_rate", "rx"), ("tx_rate", "tx")):
                value = _rate_or_none(getattr(reading, attr))
                if value is None:
                    continue
                setattr(reading, attr, value * self._factor)
                records.append(
                    InjectionRecord(
                        fault=self.name,
                        signal=signal,
                        node=key[0],
                        peer=key[1],
                        detail=f"correlated scale x{self._factor:g}",
                    )
                )
        return records
