"""Control-infrastructure aggregation bugs (paper Section 2.2).

These are *configurations*, not snapshot mutations: each dataclass
parameterises one bug in an instrumentation service, and the service in
:mod:`repro.control` interprets it while aggregating (correct) router
signals into a (now incorrect) controller input.  The paper's three
control-plane outages map directly:

- :class:`PartialTopologyStitch`: "a new rollout of the topology
  instrumentation service introduced a bug that did not wait for all
  routers to provide their link statuses before stitching together the
  topology."
- :class:`LivenessMisreport`: "a bug in a different instrumentation
  service caused it to misreport the liveness of particular links."
- :class:`IgnoredDrain`: "a router's (correct) drain signal was
  partially ignored by the topology instrumentation service."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from repro.faults.base import AggregationBug

__all__ = ["PartialTopologyStitch", "LivenessMisreport", "IgnoredDrain", "StaleTopology"]


@dataclass(frozen=True)
class PartialTopologyStitch(AggregationBug):
    """Stitch the topology before some routers have reported.

    Attributes:
        missing_nodes: Routers whose link reports are not waited for;
            every link with an endpoint here is absent from the
            controller's topology input.
    """

    missing_nodes: FrozenSet[str]

    def __init__(self, missing_nodes) -> None:  # type: ignore[no-untyped-def]
        object.__setattr__(self, "missing_nodes", frozenset(missing_nodes))


@dataclass(frozen=True)
class LivenessMisreport(AggregationBug):
    """Misreport the liveness of particular links.

    Attributes:
        links: Canonical link names to misreport.
        report_up: The wrong liveness to assign.  ``False`` reproduces
            the paper's outage (less bandwidth than actually available,
            causing sub-optimal placement); ``True`` is the overload
            direction.
    """

    links: FrozenSet[str]
    report_up: bool = False

    def __init__(self, links, report_up: bool = False) -> None:  # type: ignore[no-untyped-def]
        object.__setattr__(self, "links", frozenset(links))
        object.__setattr__(self, "report_up", report_up)


@dataclass(frozen=True)
class IgnoredDrain(AggregationBug):
    """Ignore (correct) drain signals for some routers during stitching.

    The drained gear's capacity is wrongly included in the topology
    the controller sees.

    Attributes:
        nodes: Routers whose drain signal the service ignores.
    """

    nodes: FrozenSet[str]

    def __init__(self, nodes) -> None:  # type: ignore[no-untyped-def]
        object.__setattr__(self, "nodes", frozenset(nodes))


@dataclass(frozen=True)
class StaleTopology(AggregationBug):
    """Serve a topology built from an earlier snapshot.

    A generic delayed-pipeline bug: the controller input reflects the
    network as of some past instant.  The service substitutes the
    provided stale snapshot timestamp's view; in this simulator, it
    simply reports every link up regardless of current status.
    """

    description: str = "topology built from a stale snapshot"
