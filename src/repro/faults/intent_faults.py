"""Incorrect-intent faults (paper Section 2.1, "Incorrect intent").

Drain status is an operator-intent signal, and the paper reports two
production outage shapes:

- a controller-restart/drain race left "an inconsistent view of the
  drain status of the router's links" (:class:`InconsistentLinkDrain`),
- "an incorrect drain condition ... erroneously drained a series of
  routers that were actually capable of carrying traffic"
  (:class:`SpuriousDrain`), and the mirror image where a router that
  must be avoided fails to report drained (:class:`MissedDrain`).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping

from repro.faults.base import (
    InjectionRecord,
    SignalFault,
    decode_interface_keys,
    encode_interface_keys,
)
from repro.telemetry.snapshot import InterfaceKey, NetworkSnapshot

__all__ = ["SpuriousDrain", "MissedDrain", "InconsistentLinkDrain"]


class SpuriousDrain(SignalFault):
    """Routers report drained although the operator intends them serving.

    The paper's outage: automation erroneously drained a series of
    healthy routers, concentrating traffic and congesting the rest.

    Args:
        nodes: Routers to mark drained.
        claimed_reason: Optional drain reason the bogus drain carries
            (Section 4.3 reasons extension).  Erroneous automation
            typically claims ``"faulty-link"`` -- which Hodor can then
            disprove against hardened link evidence.
    """

    def __init__(self, nodes: Iterable[str], claimed_reason: str = "") -> None:
        self._nodes = list(nodes)
        self._claimed_reason = claimed_reason

    def to_params(self) -> Dict[str, object]:
        return {"nodes": list(self._nodes), "claimed_reason": self._claimed_reason}

    @classmethod
    def from_params(cls, params: Mapping[str, object]) -> "SpuriousDrain":
        return cls(
            nodes=[str(node) for node in params.get("nodes", [])],  # type: ignore[union-attr]
            claimed_reason=str(params.get("claimed_reason", "")),
        )

    def apply(self, snapshot: NetworkSnapshot, rng: random.Random) -> List[InjectionRecord]:
        records = []
        for node in self._nodes:
            if node not in snapshot.drains:
                continue
            snapshot.drains[node] = True
            if self._claimed_reason:
                snapshot.drain_reasons[node] = self._claimed_reason
            records.append(
                InjectionRecord(
                    fault=self.name,
                    signal="drain",
                    node=node,
                    detail="reports drained against operator intent"
                    + (
                        f" (claiming {self._claimed_reason})"
                        if self._claimed_reason
                        else ""
                    ),
                )
            )
        return records


class MissedDrain(SignalFault):
    """Routers that should be drained report themselves serving.

    The controller keeps sending traffic into gear undergoing
    maintenance or known-faulty behaviour.
    """

    def __init__(self, nodes: Iterable[str]) -> None:
        self._nodes = list(nodes)

    def to_params(self) -> Dict[str, object]:
        return {"nodes": list(self._nodes)}

    @classmethod
    def from_params(cls, params: Mapping[str, object]) -> "MissedDrain":
        return cls(nodes=[str(node) for node in params.get("nodes", [])])  # type: ignore[union-attr]

    def apply(self, snapshot: NetworkSnapshot, rng: random.Random) -> List[InjectionRecord]:
        records = []
        for node in self._nodes:
            if node not in snapshot.drains:
                continue
            snapshot.drains[node] = False
            records.append(
                InjectionRecord(
                    fault=self.name,
                    signal="drain",
                    node=node,
                    detail="hides an intended drain",
                )
            )
        return records


class InconsistentLinkDrain(SignalFault):
    """One end of a link reports it drained, the other does not.

    Reproduces the controller-restart race outage.  Section 4.3 of the
    paper proposes exactly the symmetry this violates as the validation
    hook: "both sides must agree that the link is drained."

    Args:
        interfaces: The ``(node, peer)`` endpoints whose link-drain bit
            is flipped (only those endpoints; their peers keep the
            original value, creating the asymmetry).
    """

    def __init__(self, interfaces: Iterable[InterfaceKey]) -> None:
        self._interfaces = list(interfaces)

    def to_params(self) -> Dict[str, object]:
        return {"interfaces": encode_interface_keys(self._interfaces)}

    @classmethod
    def from_params(cls, params: Mapping[str, object]) -> "InconsistentLinkDrain":
        return cls(interfaces=decode_interface_keys(params.get("interfaces")) or ())  # type: ignore[arg-type]

    def apply(self, snapshot: NetworkSnapshot, rng: random.Random) -> List[InjectionRecord]:
        records = []
        for key in self._interfaces:
            current = snapshot.link_drains.get(key)
            if current is None:
                continue
            snapshot.link_drains[key] = not bool(current)
            records.append(
                InjectionRecord(
                    fault=self.name,
                    signal="link_drain",
                    node=key[0],
                    peer=key[1],
                    detail="link-drain bit flipped at one endpoint",
                )
            )
        return records
