"""Fault-injection framework.

The paper's Section 2 taxonomy splits incorrect inputs into two
families, and this framework mirrors that split:

- **Signal faults** (Section 2.1) corrupt what routers report.  They
  mutate a :class:`~repro.telemetry.snapshot.NetworkSnapshot` -- the
  corruption is visible to *everyone* downstream, including Hodor,
  whose hardening step must detect and repair it.
- **Aggregation bugs** (Section 2.2) corrupt how correct signals are
  processed into controller inputs.  They are configuration objects
  interpreted by the instrumentation services in :mod:`repro.control`;
  the snapshot stays clean, which is why Hodor's dynamic checking
  (comparing inputs against hardened signals) catches them.

Every injection produces :class:`InjectionRecord` entries naming the
exact signals corrupted, so experiments can score detection precision
and recall against injection ground truth.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.telemetry.snapshot import NetworkSnapshot

__all__ = [
    "InjectionRecord",
    "SignalFault",
    "AggregationBug",
    "FaultInjector",
    "encode_interface_keys",
    "decode_interface_keys",
]


def encode_interface_keys(
    keys: Optional[Iterable[Tuple[str, str]]],
) -> Optional[List[List[str]]]:
    """JSON-safe form of an interface-key list (``None`` passes through).

    Order is preserved: faults apply their targets in list order, so the
    encoding must not reorder them.
    """
    if keys is None:
        return None
    return [[node, peer] for node, peer in keys]


def decode_interface_keys(
    payload: Optional[Iterable[Sequence[str]]],
) -> Optional[List[Tuple[str, str]]]:
    """Inverse of :func:`encode_interface_keys`."""
    if payload is None:
        return None
    return [(str(node), str(peer)) for node, peer in payload]


@dataclass(frozen=True)
class InjectionRecord:
    """Ground truth about one corrupted signal.

    Attributes:
        fault: Name of the fault that did the corrupting.
        signal: Which signal family was touched (``"rx"``, ``"tx"``,
            ``"oper_status"``, ``"drain"``, ``"link_drain"``,
            ``"drops"``, ``"reading"``).
        node: Reporting router.
        peer: Facing peer for interface-scoped signals, else ``None``.
        detail: Free-form description of the corruption.
    """

    fault: str
    signal: str
    node: str
    peer: Optional[str] = None
    detail: str = ""

    @property
    def interface_key(self) -> Optional[Tuple[str, str]]:
        if self.peer is None:
            return None
        return (self.node, self.peer)


class SignalFault(abc.ABC):
    """A router-level telemetry/intent bug (paper Section 2.1).

    Subclasses mutate the snapshot in place inside :meth:`apply` and
    return records of everything they corrupted.
    """

    #: Human-readable fault name; defaults to the class name.
    name: str = ""

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        if not cls.name:
            cls.name = cls.__name__

    @abc.abstractmethod
    def apply(self, snapshot: NetworkSnapshot, rng: random.Random) -> List[InjectionRecord]:
        """Corrupt ``snapshot`` in place; return what was corrupted."""

    def to_params(self) -> Dict[str, object]:
        """JSON-safe constructor kwargs that reproduce this fault.

        The contract the fuzzer's reproducer files rely on:
        ``type(f).from_params(f.to_params())`` builds an equivalent
        fault, and ``to_params`` output is deterministic (set-backed
        parameters come out sorted) so serialized timelines are
        byte-stable.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support parameter serialization"
        )

    @classmethod
    def from_params(cls, params: Mapping[str, object]) -> "SignalFault":
        """Rebuild a fault from :meth:`to_params` output."""
        return cls(**dict(params))  # type: ignore[call-arg]

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


@dataclass(frozen=True)
class AggregationBug:
    """Marker base for control-infrastructure bug configurations.

    Instances carry the parameters of one Section 2.2 bug; the
    instrumentation service that recognises the bug type interprets it
    while building its controller input.  Services raise on bug types
    they do not recognise, so a misrouted bug config is loud.
    """


class FaultInjector:
    """Applies an ordered list of signal faults to snapshots.

    Faults are applied in the order given (later faults can stack on
    earlier ones, as in production where independent bugs co-occur).
    The injector never mutates the input snapshot.

    Example:
        >>> injector = FaultInjector([], seed=7)
        >>> snapshot2, records = injector.inject(NetworkSnapshot())
        >>> records
        []
    """

    def __init__(self, faults: Sequence[SignalFault] = (), seed: int = 0) -> None:
        self._faults = list(faults)
        self._seed = seed

    @property
    def faults(self) -> List[SignalFault]:
        return list(self._faults)

    def add(self, fault: SignalFault) -> None:
        self._faults.append(fault)

    def inject(
        self, snapshot: NetworkSnapshot
    ) -> Tuple[NetworkSnapshot, List[InjectionRecord]]:
        """Return a corrupted copy of ``snapshot`` plus injection records."""
        rng = random.Random(self._seed)
        corrupted = snapshot.copy()
        records: List[InjectionRecord] = []
        for fault in self._faults:
            records.extend(fault.apply(corrupted, rng))
        return corrupted, records
