"""Fault injection reproducing the paper's Section 2 outage taxonomy."""

from repro.faults.aggregation_faults import (
    IgnoredDrain,
    LivenessMisreport,
    PartialTopologyStitch,
    StaleTopology,
)
from repro.faults.base import AggregationBug, FaultInjector, InjectionRecord, SignalFault
from repro.faults.external_faults import (
    DoubleCountedDemand,
    PartialDemandAggregation,
    ThrottledDemandMismatch,
)
from repro.faults.intent_faults import InconsistentLinkDrain, MissedDrain, SpuriousDrain
from repro.faults.router_faults import (
    CorrelatedCounterFault,
    DelayedTelemetry,
    FormatChangeTelemetry,
    MalformedTelemetry,
    MissingTelemetry,
    ProbeOutage,
    RandomCounterCorruption,
    UnitChangeTelemetry,
    WrongLinkStatus,
    ZeroedDuplicateTelemetry,
)

__all__ = [
    "AggregationBug",
    "CorrelatedCounterFault",
    "DelayedTelemetry",
    "DoubleCountedDemand",
    "FaultInjector",
    "FormatChangeTelemetry",
    "IgnoredDrain",
    "InconsistentLinkDrain",
    "InjectionRecord",
    "LivenessMisreport",
    "MalformedTelemetry",
    "MissedDrain",
    "MissingTelemetry",
    "PartialDemandAggregation",
    "PartialTopologyStitch",
    "ProbeOutage",
    "RandomCounterCorruption",
    "SignalFault",
    "SpuriousDrain",
    "StaleTopology",
    "ThrottledDemandMismatch",
    "UnitChangeTelemetry",
    "WrongLinkStatus",
    "ZeroedDuplicateTelemetry",
]
