"""External-input bugs (paper Section 2.2, "External Input").

Demand is measured at end hosts, outside the network, so the demand
input can be wrong "despite everything in the network working
correctly".  The paper's two production outages:

- :class:`PartialDemandAggregation`: "a new rollout of the demand
  instrumentation system introduced a bug that incorrectly aggregated
  demand at the end hosts ... the SDN controller received a partial
  view of the demand."
- :class:`ThrottledDemandMismatch`: "traffic was incorrectly throttled
  at the end hosts causing the measured demand to differ from the
  traffic that was allowed onto the network."

plus :class:`DoubleCountedDemand`, the over-reporting mirror image of
partial aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.faults.base import AggregationBug

__all__ = [
    "PartialDemandAggregation",
    "DoubleCountedDemand",
    "ThrottledDemandMismatch",
]


@dataclass(frozen=True)
class PartialDemandAggregation(AggregationBug):
    """Silently drop a subset of demand records during aggregation.

    Attributes:
        drop_fraction: Fraction of (src, dst) records dropped, chosen
            deterministically from ``seed``.
        drop_pairs: Explicit pairs to drop (unioned with the random
            selection; use alone with ``drop_fraction=0`` for exact
            control).
        seed: Selection seed.
    """

    drop_fraction: float = 0.0
    drop_pairs: FrozenSet[Tuple[str, str]] = frozenset()
    seed: int = 0

    def __init__(self, drop_fraction: float = 0.0, drop_pairs=(), seed: int = 0) -> None:  # type: ignore[no-untyped-def]
        if not 0 <= drop_fraction <= 1:
            raise ValueError(f"drop_fraction must be in [0, 1], got {drop_fraction}")
        object.__setattr__(self, "drop_fraction", drop_fraction)
        object.__setattr__(self, "drop_pairs", frozenset(tuple(p) for p in drop_pairs))
        object.__setattr__(self, "seed", seed)


@dataclass(frozen=True)
class DoubleCountedDemand(AggregationBug):
    """Count a subset of demand records more than once.

    Attributes:
        fraction: Fraction of records affected.
        multiplier: How many times each affected record is counted.
        seed: Selection seed.
    """

    fraction: float = 0.1
    multiplier: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.fraction <= 1:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")
        if self.multiplier < 0:
            raise ValueError(f"multiplier must be non-negative, got {self.multiplier}")


@dataclass(frozen=True)
class ThrottledDemandMismatch(AggregationBug):
    """Hosts admit only a fraction of what the instrumentation measured.

    This bug is special: the *measurement* is correct; the *network*
    carries less.  The demand service reports the measured (higher)
    matrix while the scenario runs the throttled traffic, so interface
    counters and the demand input disagree -- exactly the mismatch
    Hodor's dynamic demand checks surface.

    Attributes:
        admitted_fraction: Fraction of measured demand actually allowed
            onto the network.
    """

    admitted_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0 <= self.admitted_fraction <= 1:
            raise ValueError(
                f"admitted_fraction must be in [0, 1], got {self.admitted_fraction}"
            )
