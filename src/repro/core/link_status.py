"""Hardened link status: the Section 4.2 truth table.

Combines three kinds of evidence about one link:

- **R1, status symmetry**: the oper-status reported at the two ends
  must agree;
- **R3, alternative signals**: interface counters -- a link whose
  counters show substantial traffic is evidently passing traffic
  regardless of what the status bits claim;
- **R4, manufactured signals**: active neighbor probes, which also
  catch dataplane-level "up but not forwarding" semantic failures.

The paper leaves the full truth table operator-tunable ("it can be
adjusted based on risk tolerance"); we implement the three profiles of
:class:`~repro.core.config.RiskProfile` and keep the combination logic
in one pure function so tests can enumerate it exhaustively.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.config import HodorConfig, RiskProfile
from repro.core.signals import HardenedLinkStatus, LinkVerdict

__all__ = ["LinkEvidence", "combine_link_evidence", "combine_codes"]


class LinkEvidence:
    """Raw evidence about one link, as collected from both ends.

    Attributes:
        status_a: Oper-status reported by endpoint A (None = missing).
        status_b: Oper-status reported by endpoint B.
        rates: All counter rates observed on the link's interfaces
            (rx and tx at both ends), ``None`` entries for missing.
        probe_ab: Probe result A -> B (None = not probed).
        probe_ba: Probe result B -> A.
    """

    def __init__(
        self,
        status_a: Optional[bool],
        status_b: Optional[bool],
        rates: Tuple[Optional[float], ...] = (),
        probe_ab: Optional[bool] = None,
        probe_ba: Optional[bool] = None,
    ) -> None:
        self.status_a = status_a
        self.status_b = status_b
        self.rates = rates
        self.probe_ab = probe_ab
        self.probe_ba = probe_ba

    def status_consensus(self) -> str:
        """``"up"``, ``"down"``, ``"conflict"``, or ``"unknown"``."""
        a, b = self.status_a, self.status_b
        if a is None and b is None:
            return "unknown"
        if a is None or b is None:
            known = a if a is not None else b
            return "up" if known else "down"
        if a and b:
            return "up"
        if not a and not b:
            return "down"
        return "conflict"

    def counters_active(self, threshold: float) -> Optional[bool]:
        """True when any counter shows real traffic; None if all missing."""
        known = [rate for rate in self.rates if rate is not None]
        if not known:
            return None
        return any(rate > threshold for rate in known)

    def probe_consensus(self) -> str:
        """``"ok"`` (all present probes pass), ``"fail"``, or ``"unknown"``."""
        probes = [p for p in (self.probe_ab, self.probe_ba) if p is not None]
        if not probes:
            return "unknown"
        return "ok" if all(probes) else "fail"


def combine_link_evidence(
    evidence: LinkEvidence, config: Optional[HodorConfig] = None
) -> HardenedLinkStatus:
    """Apply the truth table to one link's evidence.

    Returns a :class:`HardenedLinkStatus` whose ``verdict`` reflects
    physical usability and whose ``forwarding`` reflects whether the
    dataplane demonstrably moves traffic.
    """
    config = config or HodorConfig()
    status = evidence.status_consensus()
    active = (
        evidence.counters_active(config.active_threshold)
        if config.use_counters_for_status
        else None
    )
    probe = evidence.probe_consensus() if config.use_probes else "unknown"
    return combine_codes(status, active, probe, config)


def combine_codes(
    status: str, active: Optional[bool], probe: str, config: HodorConfig
) -> HardenedLinkStatus:
    """The truth-table tail on already-summarised evidence codes.

    ``status`` is a consensus code (``up``/``down``/``conflict``/
    ``unknown``), ``active`` a tri-state counter summary, ``probe`` a
    probe-consensus code.  Factored out of
    :func:`combine_link_evidence` so backends that summarise evidence
    differently (e.g. the array-compiled vector backend, which interns
    one :class:`HardenedLinkStatus` per distinct code triple) share the
    exact combination logic rather than re-deriving it.
    """
    notes: List[str] = [f"status:{status}"]
    if active is not None:
        notes.append("counters:active" if active else "counters:idle")
    if probe != "unknown":
        notes.append(f"probe:{probe}")

    forwarding = _forwarding_verdict(probe, active)
    verdict = _physical_verdict(status, active, probe, config.risk_profile)

    return HardenedLinkStatus(
        verdict=verdict, forwarding=forwarding, evidence=tuple(notes)
    )


def _forwarding_verdict(probe: str, active: Optional[bool]) -> Optional[bool]:
    """Does the dataplane demonstrably forward traffic?

    Idle counters are NOT evidence of non-forwarding -- an unused link
    forwards fine; only a failed probe (or active counters, which prove
    forwarding) decides.  Without probes an idle link's forwarding is
    unknown.
    """
    if probe == "ok":
        return True
    if probe == "fail":
        # Active counters can outvote a single lost probe; with idle
        # counters a failed probe is decisive.
        return True if active else False
    return True if active else None  # no probe: idle proves nothing


def _physical_verdict(
    status: str, active: Optional[bool], probe: str, risk_profile: str
) -> LinkVerdict:
    positive_evidence = bool(active) or probe == "ok"

    if status == "up":
        if risk_profile == RiskProfile.CONSERVATIVE and probe == "fail" and not active:
            return LinkVerdict.SUSPECT
        return LinkVerdict.UP

    if status == "down":
        # Paper's example: both ends may report down while counters and
        # probes prove traffic flows (misreported status).
        if positive_evidence:
            if risk_profile == RiskProfile.PERMISSIVE:
                return LinkVerdict.UP
            return LinkVerdict.SUSPECT
        return LinkVerdict.DOWN

    if status == "conflict":
        # "If one side of a link reports up and the other down, but rate
        # counters are all large and a probe succeeds, the link is
        # likely up."
        if positive_evidence:
            if risk_profile == RiskProfile.CONSERVATIVE:
                return LinkVerdict.SUSPECT
            return LinkVerdict.UP
        if active is False or probe == "fail":
            return LinkVerdict.DOWN
        return LinkVerdict.SUSPECT

    # status unknown entirely
    if positive_evidence:
        return LinkVerdict.UP if risk_profile != RiskProfile.CONSERVATIVE else LinkVerdict.SUSPECT
    if active is False or probe == "fail":
        return LinkVerdict.DOWN
    return LinkVerdict.SUSPECT
