"""Dynamic checking of the topology input (paper Section 4.2).

"Once we have a hardened view of link status, dynamic checking is
straightforward: we compare our hardened link status directly with the
topology view at the SDN controller."

Violations come in both directions plus the semantic case:

- the controller believes a link exists/is live, but hardened evidence
  says it is down (the overload direction),
- the controller is missing a link that hardened evidence says is up
  (the lost-capacity direction, as in the partial-stitch outage),
- the controller includes a link that is physically up but demonstrably
  not forwarding (the design-time semantic bug hardening is meant to
  re-enforce).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.config import HodorConfig
from repro.core.invariants import CheckResult, Invariant, InvariantResult, InvariantStatus
from repro.core.signals import HardenedState, LinkVerdict
from repro.net.topology import Topology

__all__ = ["TopologyChecker"]


def _condition(name: str, description: str, holds: Optional[bool]) -> InvariantResult:
    """A boolean invariant; ``None`` means not decidable -> skipped."""
    invariant = Invariant(
        name=name,
        description=description,
        lhs=None if holds is None else 1.0,
        rhs=None if holds is None else (1.0 if holds else 0.0),
        tolerance=0.0,
    )
    if holds is None:
        return InvariantResult(invariant, InvariantStatus.SKIPPED, error=None)
    status = InvariantStatus.PASSED if holds else InvariantStatus.VIOLATED
    return InvariantResult(invariant, status, error=0.0 if holds else 1.0)


class TopologyChecker:
    """Validates the controller's topology input against hardened links."""

    def __init__(self, config: Optional[HodorConfig] = None) -> None:
        self._config = config or HodorConfig()

    def check(self, topology_input: Topology, hardened: HardenedState) -> CheckResult:
        """One invariant per link in the union of both views."""
        result = CheckResult(input_name="topology")

        believed_links = {link.name for link in topology_input.links()}
        for link_name in sorted(set(hardened.links) | believed_links):
            conditions, notes = self.check_link_entity(
                link_name, link_name in believed_links, hardened.links.get(link_name)
            )
            result.results.extend(conditions)
            result.notes.extend(notes)
        return result

    def check_link_entity(
        self,
        link_name: str,
        believed_live: bool,
        status,
    ) -> Tuple[Tuple[InvariantResult, ...], Tuple[str, ...]]:
        """Topology conditions for one link (pure per-entity unit).

        Depends only on whether the controller believes the link live
        and on its hardened status (``None`` when hardening knows
        nothing about it).
        """
        if status is None:
            return (
                (
                    _condition(
                        f"topology/unknown-link/{link_name}",
                        f"{link_name} appears in the controller topology but "
                        "hardening knows nothing about it",
                        holds=not believed_live,
                    ),
                ),
                (),
            )

        if status.verdict == LinkVerdict.SUSPECT:
            return (
                (
                    _condition(
                        f"topology/live-iff-up/{link_name}",
                        f"{link_name}: hardened status is suspect; cannot decide",
                        holds=None,
                    ),
                ),
                (f"{link_name}: hardened verdict suspect, skipped",),
            )

        hardened_up = status.verdict == LinkVerdict.UP
        conditions = [
            _condition(
                f"topology/live-iff-up/{link_name}",
                (
                    f"{link_name}: controller believes "
                    f"{'live' if believed_live else 'absent'}, hardened says "
                    f"{'up' if hardened_up else 'down'}"
                ),
                holds=believed_live == hardened_up,
            )
        ]
        if believed_live and hardened_up and status.forwarding is False:
            conditions.append(
                _condition(
                    f"topology/forwarding/{link_name}",
                    f"{link_name}: in controller topology, status up, but the "
                    "dataplane does not forward (semantic failure)",
                    holds=False,
                )
            )
        return tuple(conditions), ()
