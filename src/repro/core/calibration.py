"""Threshold calibration from clean telemetry history.

Footnote 2 of the paper: "This threshold depends on the network
sampling frequency and traffic patterns.  Based on production logs, we
find 2% to be an appropriate threshold."

This module is that procedure: feed it a window of known-good
snapshots, and it measures the empirical distribution of R1 pairwise
disagreement (the natural cross-window noise of rolling counters) and
recommends a tau_h just above its tail.  Calibrating on a simulator
run with ~1% per-reading jitter recovers the paper's 2% -- see the
tests -- and operators with quieter or noisier telemetry get the
threshold *their* network needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List

from repro.net.topology import Topology
from repro.telemetry.counters import MalformedValueError, coerce_rate
from repro.telemetry.snapshot import NetworkSnapshot

__all__ = ["CalibrationResult", "calibrate_tau_h"]


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of one tau_h calibration.

    Attributes:
        recommended_tau_h: The threshold to configure (tail quantile of
            observed disagreement times the safety margin).
        quantile_gap: The raw disagreement value at the requested
            quantile.
        max_gap: The largest disagreement seen in the history.
        samples: Number of counter pairs measured.
        quantile: The quantile that was requested.
        safety_margin: The multiplier applied on top of the quantile.
    """

    recommended_tau_h: float
    quantile_gap: float
    max_gap: float
    samples: int
    quantile: float
    safety_margin: float


def calibrate_tau_h(
    snapshots: Iterable[NetworkSnapshot],
    topology: Topology,
    quantile: float = 0.999,
    safety_margin: float = 1.25,
    rate_floor: float = 1e-6,
) -> CalibrationResult:
    """Recommend tau_h from known-good history.

    Args:
        snapshots: Clean (trusted-good) snapshots, e.g. a quiet week.
        topology: The reference model (defines which counters pair up).
        quantile: Tail quantile of pairwise disagreement to clear;
            0.999 keeps the expected false-flag rate around one per
            thousand healthy pairs.
        safety_margin: Multiplier on the quantile gap.
        rate_floor: Pairs whose both readings are below this are skipped
            (relative gaps around zero are meaningless).

    Returns:
        A :class:`CalibrationResult`.

    Raises:
        ValueError: On empty history / no measurable pairs or bad
            parameters.
    """
    if not 0 < quantile <= 1:
        raise ValueError(f"quantile must be in (0, 1], got {quantile}")
    if safety_margin < 1:
        raise ValueError(f"safety_margin must be >= 1, got {safety_margin}")

    gaps: List[float] = []
    for snapshot in snapshots:
        for src, dst in topology.directed_edges():
            tx_reading = snapshot.counter(src, dst)
            rx_reading = snapshot.counter(dst, src)
            if tx_reading is None or rx_reading is None:
                continue
            try:
                tx = coerce_rate(tx_reading.tx_rate)
                rx = coerce_rate(rx_reading.rx_rate)
            except MalformedValueError:
                continue
            if tx is None or rx is None:
                continue
            magnitude = max(abs(tx), abs(rx))
            if magnitude <= rate_floor:
                continue
            gaps.append(abs(tx - rx) / magnitude)

    if not gaps:
        raise ValueError("no measurable counter pairs in the calibration history")

    gaps.sort()
    index = min(len(gaps) - 1, max(0, math.ceil(quantile * len(gaps)) - 1))
    quantile_gap = gaps[index]
    return CalibrationResult(
        recommended_tau_h=quantile_gap * safety_margin,
        quantile_gap=quantile_gap,
        max_gap=gaps[-1],
        samples=len(gaps),
        quantile=quantile,
        safety_margin=safety_margin,
    )
