"""The Hodor pipeline: collect, harden, dynamically check.

:class:`Hodor` is the library's main entry point.  It is designed to
run always-on: every epoch, feed it the current router snapshot and the
controller inputs the control infrastructure produced, and it returns a
:class:`~repro.core.report.ValidationReport` (optionally applying a
response policy and tracking last-known-good inputs).

Example:
    >>> from repro.topologies import fig3_network, fig3_demand
    >>> from repro.net import NetworkSimulator
    >>> from repro.telemetry import TelemetryCollector, Jitter
    >>> topo = fig3_network()
    >>> truth = NetworkSimulator(topo, fig3_demand(), strategy="single").run()
    >>> snapshot = TelemetryCollector(Jitter(0.0)).collect(truth)
    >>> hodor = Hodor(topo)
    >>> report = hodor.validate_demand(snapshot, fig3_demand())
    >>> report.all_valid
    True
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.control.inputs import ControllerInputs, DrainView
from repro.core.collection import SignalCollector
from repro.core.config import HodorConfig
from repro.core.demand_check import DemandChecker
from repro.core.drain_check import DrainChecker
from repro.core.hardening import Hardener
from repro.core.invariants import CheckResult
from repro.core.policy import Policy, PolicyDecision
from repro.core.report import InputVerdict, ValidationReport
from repro.core.signals import CollectedState, HardenedState
from repro.core.topology_check import TopologyChecker
from repro.net.demand import DemandMatrix
from repro.net.topology import Topology

# Module-object import (not ``from ... import build_provenance``): the
# obs package imports leaf core modules, so during a circular package
# load only the module object is guaranteed to resolve; its attributes
# are looked up at call time, after both packages finished loading.
from repro.obs import provenance as _provenance
from repro.telemetry.snapshot import NetworkSnapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.cache import TopologyCache

__all__ = ["Hodor"]


class Hodor:
    """Input validation for an SDN WAN controller.

    Args:
        reference: The design-time network model (router and link
            inventory with capacities).
        config: Thresholds and options; defaults follow the paper.
        policy: Optional response policy applied by
            :meth:`validate_and_decide`.
        cache: Prebuilt :class:`~repro.engine.cache.TopologyCache` for
            ``reference``; built on the spot when omitted.  The
            always-on engine passes memoized caches in so repeat epochs
            on an unchanged topology skip all topology setup.
    """

    def __init__(
        self,
        reference: Topology,
        config: Optional[HodorConfig] = None,
        policy: Optional[Policy] = None,
        cache: Optional["TopologyCache"] = None,
    ) -> None:
        self._reference = reference
        self._config = config or HodorConfig()
        self._policy = policy
        if cache is None:
            from repro.engine.cache import TopologyCache

            cache = TopologyCache.from_topology(reference)
        self._cache = cache
        self._collector = SignalCollector(self._config)
        self._hardener = Hardener(reference, self._config, cache=cache)
        self._demand_checker = DemandChecker(self._config, cache=cache)
        self._topology_checker = TopologyChecker(self._config)
        self._drain_checker = DrainChecker(self._config, cache=cache)
        self._last_good: Optional[ControllerInputs] = None

    @property
    def config(self) -> HodorConfig:
        return self._config

    @property
    def last_good(self) -> Optional[ControllerInputs]:
        return self._last_good

    # ------------------------------------------------------------------
    # Step-wise API (useful for studies and debugging)
    # ------------------------------------------------------------------

    def collect(self, snapshot: NetworkSnapshot) -> CollectedState:
        """Step 1 only: typed collection of all signals."""
        return self._collector.collect(snapshot)

    def harden(self, snapshot: NetworkSnapshot) -> HardenedState:
        """Steps 1 + 2: the trusted low-level view of the network."""
        return self._hardener.harden(self._collector.collect(snapshot))

    # ------------------------------------------------------------------
    # Full validation
    # ------------------------------------------------------------------

    def validate(self, snapshot: NetworkSnapshot, inputs: ControllerInputs) -> ValidationReport:
        """Validate all three controller inputs against one snapshot."""
        hardened = self.harden(snapshot)
        report = ValidationReport(timestamp=snapshot.timestamp, hardened=hardened)
        self._record(report, self._demand_checker.check(inputs.demand, hardened))
        self._record(report, self._topology_checker.check(inputs.topology, hardened))
        self._record(report, self._drain_checker.check(inputs.drains, hardened))
        return report

    def validate_demand(self, snapshot: NetworkSnapshot, demand: DemandMatrix) -> ValidationReport:
        """Validate only the demand input (Section 4.1 studies)."""
        hardened = self.harden(snapshot)
        report = ValidationReport(timestamp=snapshot.timestamp, hardened=hardened)
        self._record(report, self._demand_checker.check(demand, hardened))
        return report

    def validate_topology(
        self, snapshot: NetworkSnapshot, topology_input: Topology
    ) -> ValidationReport:
        """Validate only the topology input (Section 4.2 studies)."""
        hardened = self.harden(snapshot)
        report = ValidationReport(timestamp=snapshot.timestamp, hardened=hardened)
        self._record(report, self._topology_checker.check(topology_input, hardened))
        return report

    def validate_drains(self, snapshot: NetworkSnapshot, drains: DrainView) -> ValidationReport:
        """Validate only the drain input (Section 4.3 studies)."""
        hardened = self.harden(snapshot)
        report = ValidationReport(timestamp=snapshot.timestamp, hardened=hardened)
        self._record(report, self._drain_checker.check(drains, hardened))
        return report

    def validate_and_decide(
        self, snapshot: NetworkSnapshot, inputs: ControllerInputs
    ) -> PolicyDecision:
        """Validate, apply the configured policy, track last-known-good.

        Raises:
            ValueError: If no policy was configured.
        """
        if self._policy is None:
            raise ValueError("no policy configured; pass policy= to Hodor()")
        report = self.validate(snapshot, inputs)
        decision = self._policy.decide(inputs, report, self._last_good)
        if report.all_valid:
            self._last_good = inputs
        return decision

    # ------------------------------------------------------------------

    @staticmethod
    def _record(report: ValidationReport, check: CheckResult) -> None:
        violations = check.violations
        report.checks[check.input_name] = check
        report.verdicts[check.input_name] = InputVerdict(
            input_name=check.input_name,
            valid=not violations,
            num_violations=len(violations),
            num_evaluated=check.num_evaluated,
        )
        report.provenance[check.input_name] = _provenance.build_provenance(
            check, report.hardened, violations=violations
        )
