"""Hodor step 1: collecting input signals.

Turns a raw :class:`~repro.telemetry.snapshot.NetworkSnapshot` into a
typed :class:`~repro.core.signals.CollectedState`.  The relevant
signals were "chosen once at system design time" (Section 3.2) -- here,
that design-time choice is the set of
:class:`~repro.telemetry.paths.SignalKind` families this collector
reads.

Collection is deliberately defensive but lossless in intent: a value
that cannot be interpreted (malformed type, unparseable string,
negative rate) becomes ``None`` *plus a finding*, never an exception --
production telemetry bugs must degrade Hodor's knowledge, not crash it.
Stale readings (delayed-telemetry bugs) are likewise dropped with a
finding.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import HodorConfig
from repro.core.drain_reasons import parse_reason
from repro.core.parallel import SliceParallel, map_slices
from repro.core.signals import (
    CollectedCounter,
    CollectedState,
    CollectedStatus,
    Finding,
    FindingSeverity,
)
from repro.telemetry.counters import MalformedValueError, coerce_rate
from repro.telemetry.snapshot import NetworkSnapshot

__all__ = ["SignalCollector"]


def _coerce_bool(raw: object) -> Optional[bool]:
    """Interpret a raw boolean-ish telemetry value, or None if hopeless."""
    if isinstance(raw, bool):
        return raw
    if isinstance(raw, str):
        lowered = raw.strip().lower()
        if lowered in ("up", "true", "1", "drained"):
            return True
        if lowered in ("down", "false", "0", "undrained"):
            return False
        return None
    if isinstance(raw, (int, float)) and raw in (0, 1):
        return bool(raw)
    return None


class SignalCollector:
    """Hodor's collection step.

    Args:
        config: Pipeline configuration (staleness bound is used here).
    """

    def __init__(self, config: Optional[HodorConfig] = None) -> None:
        self._config = config or HodorConfig()

    def collect(
        self, snapshot: NetworkSnapshot, parallel: SliceParallel = None
    ) -> CollectedState:
        """Coerce every signal in the snapshot into typed form.

        Args:
            snapshot: The raw telemetry snapshot.
            parallel: Optional slice-parallel executor (see
                :mod:`repro.core.parallel`); ``None`` runs the serial
                reference path.
        """
        state = CollectedState(timestamp=snapshot.timestamp)
        self._collect_counters(snapshot, state, parallel)
        self._collect_statuses(snapshot, state)
        self._collect_drains(snapshot, state)
        self._collect_drops(snapshot, state)
        state.probes = {key: result.ok for key, result in snapshot.probes.items()}
        return state

    # ------------------------------------------------------------------

    def _collect_counters(
        self,
        snapshot: NetworkSnapshot,
        state: CollectedState,
        parallel: SliceParallel = None,
    ) -> None:
        keys = sorted(snapshot.counters)
        for counters, findings in map_slices(
            parallel,
            lambda slice_keys: self.collect_counter_slice(snapshot, slice_keys),
            keys,
        ):
            state.counters.update(counters)
            state.findings.extend(findings)

    def collect_counter_slice(
        self, snapshot: NetworkSnapshot, keys: Sequence[Tuple[str, str]]
    ) -> Tuple[Dict[Tuple[str, str], CollectedCounter], List[Finding]]:
        """Counter coercion over one contiguous slice of counter keys.

        The slice worker behind :meth:`collect`; the serial path calls
        it once with every (sorted) key, the engine once per shard.
        """
        counters: Dict[Tuple[str, str], CollectedCounter] = {}
        findings: List[Finding] = []
        for key in keys:
            counter, counter_findings = self.collect_counter_entity(
                snapshot.timestamp, key, snapshot.counters[key]
            )
            counters[key] = counter
            findings.extend(counter_findings)
        return counters, findings

    def collect_counter_entity(
        self,
        snapshot_timestamp: float,
        key: Tuple[str, str],
        reading,
    ) -> Tuple[CollectedCounter, Tuple[Finding, ...]]:
        """Coerce one interface's counter reading (pure per-entity unit).

        Depends only on the snapshot timestamp and this one reading, so
        the incremental engine reuses its output verbatim whenever the
        :class:`~repro.telemetry.delta.SnapshotDelta` says the reading
        did not change.
        """
        subject = f"{key[0]}->{key[1]}"
        if snapshot_timestamp - reading.timestamp > self._config.max_staleness_s:
            finding = Finding(
                code="STALE_READING",
                severity=FindingSeverity.WARNING,
                subject=subject,
                detail=(
                    f"reading is {snapshot_timestamp - reading.timestamp:.0f}s "
                    "old; treated as missing"
                ),
            )
            return (
                CollectedCounter(rx=None, tx=None, timestamp=reading.timestamp),
                (finding,),
            )

        findings: List[Finding] = []
        rx = self._coerce_counter(reading.rx_rate, subject, "rx", findings)
        tx = self._coerce_counter(reading.tx_rate, subject, "tx", findings)
        return (
            CollectedCounter(rx=rx, tx=tx, timestamp=reading.timestamp),
            tuple(findings),
        )

    def _coerce_counter(
        self, raw: object, subject: str, side: str, findings: List[Finding]
    ) -> Optional[float]:
        try:
            return coerce_rate(raw)  # type: ignore[arg-type]
        except MalformedValueError as exc:
            findings.append(
                Finding(
                    code="MALFORMED_COUNTER",
                    severity=FindingSeverity.WARNING,
                    subject=subject,
                    detail=f"{side} counter malformed: {exc}",
                )
            )
            return None

    def _collect_statuses(self, snapshot: NetworkSnapshot, state: CollectedState) -> None:
        for key in sorted(snapshot.link_status):
            status, findings = self.collect_status_entity(key, snapshot.link_status[key])
            state.statuses[key] = status
            state.findings.extend(findings)

    def collect_status_entity(
        self, key: Tuple[str, str], report
    ) -> Tuple[CollectedStatus, Tuple[Finding, ...]]:
        """Coerce one interface's status report (pure per-entity unit)."""
        subject = f"{key[0]}->{key[1]}"
        oper = _coerce_bool(report.oper_up)
        admin = _coerce_bool(report.admin_up)
        findings: Tuple[Finding, ...] = ()
        if oper is None and report.oper_up is not None:
            findings = (
                Finding(
                    code="MALFORMED_STATUS",
                    severity=FindingSeverity.WARNING,
                    subject=subject,
                    detail=f"uninterpretable oper-status {report.oper_up!r}",
                ),
            )
        return CollectedStatus(oper_up=oper, admin_up=admin), findings

    def _collect_drains(self, snapshot: NetworkSnapshot, state: CollectedState) -> None:
        for node in sorted(snapshot.drains):
            value, findings = self.collect_drain_entity(node, snapshot.drains[node])
            state.drains[node] = value
            state.findings.extend(findings)
        for node in sorted(snapshot.drain_reasons):
            reason, findings = self.collect_drain_reason_entity(
                node, snapshot.drain_reasons[node]
            )
            state.drain_reasons[node] = reason
            state.findings.extend(findings)
        for key in sorted(snapshot.link_drains):
            value, findings = self.collect_link_drain_entity(
                key, snapshot.link_drains[key]
            )
            state.link_drains[key] = value
            state.findings.extend(findings)

    def collect_drain_entity(
        self, node: str, raw: object
    ) -> Tuple[Optional[bool], Tuple[Finding, ...]]:
        """Coerce one router's drain bit (pure per-entity unit)."""
        value = _coerce_bool(raw)
        if value is None and raw is not None:
            return value, (
                Finding(
                    code="MALFORMED_DRAIN",
                    severity=FindingSeverity.WARNING,
                    subject=node,
                    detail=f"uninterpretable drain bit {raw!r}",
                ),
            )
        return value, ()

    def collect_drain_reason_entity(
        self, node: str, raw: object
    ) -> Tuple[object, Tuple[Finding, ...]]:
        """Coerce one router's drain reason (pure per-entity unit)."""
        reason = parse_reason(raw)
        if reason is None:
            return reason, (
                Finding(
                    code="MALFORMED_DRAIN_REASON",
                    severity=FindingSeverity.WARNING,
                    subject=node,
                    detail=f"uninterpretable drain reason {raw!r}",
                ),
            )
        return reason, ()

    def collect_link_drain_entity(
        self, _key: Tuple[str, str], raw: object
    ) -> Tuple[Optional[bool], Tuple[Finding, ...]]:
        """Coerce one interface's link-drain bit (pure per-entity unit)."""
        return _coerce_bool(raw), ()

    def _collect_drops(self, snapshot: NetworkSnapshot, state: CollectedState) -> None:
        for node in sorted(snapshot.drops):
            value, findings = self.collect_drop_entity(node, snapshot.drops[node])
            state.drops[node] = value
            state.findings.extend(findings)

    def collect_drop_entity(
        self, node: str, raw: object
    ) -> Tuple[Optional[float], Tuple[Finding, ...]]:
        """Coerce one router's drop counter (pure per-entity unit)."""
        try:
            return coerce_rate(raw), ()  # type: ignore[arg-type]
        except MalformedValueError as exc:
            return None, (
                Finding(
                    code="MALFORMED_DROPS",
                    severity=FindingSeverity.WARNING,
                    subject=node,
                    detail=f"drop counter malformed: {exc}",
                ),
            )
