"""Response policies: what to do when validation fails.

Paper, Section 3.2 step 3: "Hodor can reject inputs that fail
validation and fall back temporarily to the last input state, or
trigger an alert for a reliability engineer to intervene.  We leave
this policy for operators to configure based on their operational
model."  Both policies are implemented; operators plug either (or a
custom subclass) into the pipeline.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional

from repro.control.inputs import ControllerInputs
from repro.core.report import ValidationReport

__all__ = ["PolicyDecision", "Policy", "AlertOnlyPolicy", "RejectAndFallbackPolicy"]


@dataclass
class PolicyDecision:
    """What the policy decided for one epoch.

    Attributes:
        inputs: The inputs the controller should actually consume.
        accepted: True when the fresh inputs were used as-is.
        fell_back: True when last-known-good inputs were substituted.
        alerts: Messages for the operator alerting pipeline.
    """

    inputs: ControllerInputs
    accepted: bool
    fell_back: bool = False
    alerts: List[str] = field(default_factory=list)


class Policy(abc.ABC):
    """Decides what happens to inputs given a validation report."""

    @abc.abstractmethod
    def decide(
        self,
        inputs: ControllerInputs,
        report: ValidationReport,
        last_good: Optional[ControllerInputs],
    ) -> PolicyDecision:
        """Return the decision for this epoch."""


class AlertOnlyPolicy(Policy):
    """Never blocks inputs; raises alerts on failed validation."""

    def decide(
        self,
        inputs: ControllerInputs,
        report: ValidationReport,
        last_good: Optional[ControllerInputs],
    ) -> PolicyDecision:
        alerts = [
            f"input '{name}' failed validation" for name in report.invalid_inputs()
        ]
        alerts.extend(
            f"critical hardening finding: {finding.code} at {finding.subject}"
            for finding in report.critical_findings()
        )
        return PolicyDecision(inputs=inputs, accepted=True, alerts=alerts)


class RejectAndFallbackPolicy(Policy):
    """Rejects invalid inputs, substituting the last validated ones.

    When no last-known-good inputs exist yet, the fresh inputs are used
    regardless (blocking the controller entirely is worse than using a
    suspect input on day one), with an alert saying so.
    """

    def decide(
        self,
        inputs: ControllerInputs,
        report: ValidationReport,
        last_good: Optional[ControllerInputs],
    ) -> PolicyDecision:
        if report.all_valid:
            return PolicyDecision(inputs=inputs, accepted=True)

        invalid = ", ".join(report.invalid_inputs())
        if last_good is None:
            return PolicyDecision(
                inputs=inputs,
                accepted=True,
                alerts=[
                    f"inputs failed validation ({invalid}) but no last-known-good "
                    "state exists; using them anyway"
                ],
            )
        return PolicyDecision(
            inputs=last_good,
            accepted=False,
            fell_back=True,
            alerts=[f"inputs rejected ({invalid}); fell back to last validated state"],
        )
