"""Array-compiled validation backend.

``model`` compiles a topology once into indexed numpy/scipy arrays;
``backend`` evaluates epochs on the compiled model with the serial
per-entity units as exception path and differential oracle.
"""

from repro.core.vector.backend import VectorValidator
from repro.core.vector.model import VectorModel

__all__ = ["VectorModel", "VectorValidator"]
