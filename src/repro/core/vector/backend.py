"""Epoch-time array evaluation for the vector backend.

:class:`VectorValidator` re-expresses the core pipeline stages on the
compiled :class:`~repro.core.vector.model.VectorModel` arrays:

- **collect** packs each snapshot family into dense slot arrays with a
  ``np.fromiter`` fast path (NaN codes missing rates, small ints code
  tri-state booleans); any entry the fast path cannot prove benign --
  malformed, stale, boolean-typed, out of universe -- is routed
  through the corresponding serial per-entity unit so coercion
  findings and crash behavior stay byte-identical;
- **R1 symmetry** is one paired-column comparison (``tx[edge]`` vs
  ``rx[edge_rev[edge]]``) plus vectorized relative-gap math that
  reproduces the scalar arithmetic bit for bit;
- **R2 conservation** keeps the serial solver (component solves are
  cached bitwise in :class:`ConservationSolveCache`); the vector layer
  contributes the gate (an ``isnan``-any over the flow arrays) and
  scatter-updates of the post-repair value arrays;
- **link status / drains** reduce each entity to a small integer
  category; one hardened object per distinct category is interned and
  findings are memoized per ``(slot, category)``, so steady-state
  epochs allocate almost nothing;
- **dynamic checks** gather per-entity signature arrays in the
  checkers' sorted orders and call the serial per-entity check units
  only for entities whose signature moved.

Parity contract (enforced by ``tests/engine/test_vector.py`` and the
fuzz oracle's ``vector`` mode): reports -- findings, invariants,
notes, and :class:`~repro.obs.provenance.VerdictProvenance` -- are
identical to the per-entity path's.  The per-entity units this module
is the array twin of: ``collect_counter_entity``,
``collect_status_entity``, ``collect_drain_entity``,
``collect_drain_reason_entity``, ``collect_link_drain_entity``,
``collect_drop_entity`` (exception path + oracle),
``harden_edge_entity`` / ``harden_external_entity`` /
``harden_node_drain_entity`` / ``harden_link_drain_entity``
(replicated as array math), ``repair_flows`` (delegated),
``harden_link_status_entity`` (interned via
:func:`~repro.core.link_status.combine_codes`; serial on exceptional
probes), and ``check_node_entity`` / ``check_link_entity`` of the
demand/topology/drain checkers (called on signature change).
"""

from __future__ import annotations

import math
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.demand_check import DemandChecker
from repro.core.drain_reasons import DrainReason
from repro.core.flow_repair import ConservationSolveCache
from repro.core.invariants import CheckResult
from repro.core.link_status import combine_codes
from repro.core.pipeline import Hodor
from repro.core.report import ValidationReport
from repro.core.signals import (
    CollectedCounter,
    CollectedStatus,
    Confidence,
    DrainVerdict,
    Finding,
    FindingSeverity,
    HardenedDrain,
    HardenedState,
    HardenedValue,
    LinkVerdict,
)
from repro.core.vector.model import VectorModel
from repro.obs.trace import NullTracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.control.inputs import ControllerInputs
    from repro.core.config import HodorConfig
    from repro.engine.cache import TopologyCache
    from repro.engine.stats import EngineStats
    from repro.telemetry.snapshot import NetworkSnapshot

__all__ = ["VectorValidator"]

_INF = float("inf")
#: Largest int magnitude float64 represents exactly; bigger timestamps
#: go through the serial unit so staleness math never loses precision.
_EXACT_INT = 2**52

# Code tables (plain immutable literals only; all arrays and interned
# objects live on the validator instance).
_STATUS_STRS = ("up", "down", "conflict", "unknown")
_ACTIVE_VALS = (False, True, None)
_PROBE_STRS = ("ok", "fail", "unknown")
_TRI = (None, False, True)


def _neq(a: Optional[np.ndarray], b: Optional[np.ndarray]) -> Optional[np.ndarray]:
    """Elementwise "signature moved" mask; NaN equals NaN.

    Exact bit comparison is the reuse guard's contract (see the
    incremental validator): a spurious difference costs a recompute,
    a tolerance could reuse stale output and break parity.  Returns
    ``None`` (nothing moved) when both operands are the same array.
    """
    if a is b:
        return None
    return ~((a == b) | (np.isnan(a) & np.isnan(b)))


class _PackedStatuses:
    """``collected.statuses``-shaped read view over the packed arrays."""

    __slots__ = ("_v",)

    def __init__(self, validator: "VectorValidator") -> None:
        self._v = validator

    def get(self, key, default=None):
        v = self._v
        obj = v._extra_statuses.get(key)
        if obj is not None:
            return obj
        idx = v._model.edge_index.get(key)
        if idx is None or not v._st_present[idx]:
            return default
        code = v._st_oper[idx]
        # admin_up is never read downstream of collection.
        return CollectedStatus(oper_up=None if code < 0 else bool(code), admin_up=None)


class _PackedProbes:
    """``collected.probes``-shaped read view over the packed arrays."""

    __slots__ = ("_v",)

    def __init__(self, validator: "VectorValidator") -> None:
        self._v = validator

    def get(self, key, default=None):
        v = self._v
        if key in v._extra_probes:
            return v._extra_probes[key]
        idx = v._model.edge_index.get(key)
        if idx is None:
            return default
        code = v._pr[idx]
        return default if code < 0 else bool(code)


class _CollectedView:
    """Lazy ``CollectedState`` facade for the serial units we delegate to.

    Only the accessors the delegated units actually touch exist:
    ``counter()`` (R2 arbitration, link-status fallback),
    ``statuses.get`` and ``probes.get`` (link-status fallback).
    """

    __slots__ = ("_v", "statuses", "probes")

    def __init__(self, validator: "VectorValidator") -> None:
        self._v = validator
        self.statuses = _PackedStatuses(validator)
        self.probes = _PackedProbes(validator)

    def counter(self, node: str, peer: str) -> Optional[CollectedCounter]:
        v = self._v
        obj = v._counter_objs.get((node, peer))
        if obj is not None:
            return obj
        idx = v._model.counter_slot.get((node, peer))
        if idx is None or not v._cnt_present[idx]:
            return None
        rx = v._cnt_rx[idx]
        tx = v._cnt_tx[idx]
        return CollectedCounter(
            rx=None if math.isnan(rx) else float(rx),
            tx=None if math.isnan(tx) else float(tx),
            timestamp=float(v._cnt_ts[idx]),
        )


class VectorValidator:
    """Array-compiled epoch validation for one topology fingerprint.

    Drop-in sibling of :class:`~repro.engine.incremental.IncrementalValidator`:
    same constructor shape, same ``validate``/``reset`` surface, same
    stage spans and stats, identical reports.  Internally every epoch
    is evaluated on the compiled arrays with cross-epoch object reuse
    keyed on exact value signatures, so cost tracks churn regardless
    of the engine mode it is mounted under.

    Args:
        config: Pipeline configuration.
        cache: The topology cache shared with the serial path.
        components: The per-topology pipeline components (collector,
            hardener, checkers) -- the serial units double as the
            exception path and the differential oracle.
        stats: Engine counters; stage timings and reuse counts land here.
        tracer: Optional tracer; stage spans are annotated with
            recomputed/reused entity counts like the incremental path.
        model: Precompiled :class:`VectorModel` (from
            :class:`~repro.engine.cache.VectorModelStore`); compiled
            on the spot when omitted.
    """

    def __init__(
        self,
        config: HodorConfig,
        cache: TopologyCache,
        components,
        stats: EngineStats,
        tracer=None,
        model: Optional[VectorModel] = None,
    ) -> None:
        self._config = config
        self._cache = cache
        self._components = components
        self._stats = stats
        self._tracer = tracer if tracer is not None else NullTracer()
        self._model = model if model is not None else VectorModel.from_cache(cache)
        self._solver_cache = ConservationSolveCache()

        m = self._model
        self._link_name_set = frozenset(m.link_names)
        # edge index -> owning link index (marks exceptional-probe links).
        edge_link = np.empty(m.num_edges, dtype=np.int64)
        edge_link[m.link_ab] = np.arange(m.num_links, dtype=np.int64)
        edge_link[m.link_ba] = np.arange(m.num_links, dtype=np.int64)
        self._edge_link = edge_link
        self._reason_code = {reason: i for i, reason in enumerate(tuple(DrainReason))}

        # Interned shared objects (frozen dataclasses; one per disposition).
        self._hv_both = HardenedValue(None, Confidence.UNKNOWN, "no measurements")
        self._hv_one = HardenedValue(None, Confidence.UNKNOWN, "one measurement missing")
        self._hv_mismatch = HardenedValue(None, Confidence.UNKNOWN, "R1 mismatch")
        self._edge_fnd_memo: Dict[Tuple[int, int], Tuple[Finding, ...]] = {}
        self._ext_fnd_memo: Dict[int, Tuple[Finding, ...]] = {}
        self._ls_intern: Dict[int, object] = {}
        self._ls_usable = np.zeros(36, dtype=bool)
        self._ls_fnd_memo: Dict[Tuple[int, int], Tuple[Finding, ...]] = {}
        self._nd_intern: Dict[int, HardenedDrain] = {}
        self._nd_fnd_memo: Dict[Tuple[int, int], Tuple[Finding, ...]] = {}
        self._ld_intern: Dict[int, HardenedDrain] = {}
        self._ld_fnd_memo: Dict[Tuple[int, int], Tuple[Finding, ...]] = {}

        # Per-family (keys, slots) layout caches for the pack stage.
        self._lay_counters: Optional[Tuple[tuple, np.ndarray]] = None
        self._lay_statuses: Optional[Tuple[tuple, np.ndarray]] = None
        self._lay_drains: Optional[Tuple[tuple, np.ndarray]] = None
        self._lay_link_drains: Optional[Tuple[tuple, np.ndarray]] = None
        self._lay_drops: Optional[Tuple[tuple, np.ndarray]] = None
        self._lay_probes: Optional[Tuple[tuple, np.ndarray]] = None

        self.reset()

    def reset(self) -> None:
        """Drop all epoch state (the next epoch primes from scratch)."""
        m = self._model
        self._primed = False
        self._prev_snapshot: Optional[NetworkSnapshot] = None
        self._state: Optional[HardenedState] = None

        # -- collect (rebound per epoch)
        self._cnt_rx = np.full(m.num_counter_slots, np.nan)
        self._cnt_tx = np.full(m.num_counter_slots, np.nan)
        self._cnt_ts = np.zeros(m.num_counter_slots)
        self._cnt_present = np.zeros(m.num_counter_slots, dtype=bool)
        self._st_oper = np.full(m.num_edges, -1, dtype=np.int8)
        self._st_present = np.zeros(m.num_edges, dtype=bool)
        self._pr = np.full(m.num_edges, -1, dtype=np.int8)
        self._nd_bit = np.full(m.num_nodes, -1, dtype=np.int8)
        self._nd_reason = np.full(m.num_nodes, -1, dtype=np.int8)
        self._ld_code = np.full(m.num_edges, -1, dtype=np.int8)
        self._dp = np.full(m.num_nodes, np.nan)
        self._counter_objs: Dict[Tuple[str, str], CollectedCounter] = {}
        self._extra_statuses: Dict[Tuple[str, str], CollectedStatus] = {}
        self._extra_probes: Dict[Tuple[str, str], object] = {}
        self._serial_links: List[int] = []
        self._collected_findings: List[Finding] = []
        self._pack_total = 0
        self._pack_recomputed = 0

        # -- harden signatures + object/finding arrays (mutated in place)
        self._TX: Optional[np.ndarray] = None
        self._RX: Optional[np.ndarray] = None
        self._edge_objs = np.empty(m.num_edges, dtype=object)
        self._edge_fnds = np.empty(m.num_edges, dtype=object)
        self._edge_has = np.zeros(m.num_edges, dtype=bool)
        self._ex_rx: Optional[np.ndarray] = None
        self._ex_tx: Optional[np.ndarray] = None
        self._ex_dp: Optional[np.ndarray] = None
        self._ex_pres: Optional[np.ndarray] = None
        self._ext_in_objs = np.empty(m.num_nodes, dtype=object)
        self._ext_out_objs = np.empty(m.num_nodes, dtype=object)
        self._drop_objs = np.empty(m.num_nodes, dtype=object)
        self._ext_fnds = np.empty(m.num_nodes, dtype=object)
        self._ext_has = np.zeros(m.num_nodes, dtype=bool)
        self._EV: Optional[np.ndarray] = None
        self._EI: Optional[np.ndarray] = None
        self._EO: Optional[np.ndarray] = None
        self._DR: Optional[np.ndarray] = None
        self._ei_rep = np.zeros(m.num_nodes, dtype=bool)
        self._eo_rep = np.zeros(m.num_nodes, dtype=bool)
        self._ls_cats = np.full(m.num_links, -1, dtype=np.int64)
        self._ls_objs = np.empty(m.num_links, dtype=object)
        self._ls_fnds = np.empty(m.num_links, dtype=object)
        self._ls_has = np.zeros(m.num_links, dtype=bool)
        self._nd_cats: Optional[np.ndarray] = None
        self._nd_objs = np.empty(m.num_nodes, dtype=object)
        self._nd_fnds = np.empty(m.num_nodes, dtype=object)
        self._nd_has = np.zeros(m.num_nodes, dtype=bool)
        self._ld_cats: Optional[np.ndarray] = None
        self._ld_objs = np.empty(m.num_links, dtype=object)
        self._ld_fnds = np.empty(m.num_links, dtype=object)
        self._ld_has = np.zeros(m.num_links, dtype=bool)

        # -- check signatures + entry arrays (sorted orders)
        self._dem_nodes: Optional[tuple] = None
        self._dem_arr: Optional[np.ndarray] = None
        self._dem_member: Optional[np.ndarray] = None
        self._dem_pos: Optional[np.ndarray] = None
        self._dem_ei: Optional[np.ndarray] = None
        self._dem_eo: Optional[np.ndarray] = None
        self._dem_eirep: Optional[np.ndarray] = None
        self._dem_eorep: Optional[np.ndarray] = None
        self._prev_total_dropped: Optional[float] = None
        self._demand_entries = np.empty(m.num_nodes, dtype=object)
        self._topo_bits: Optional[np.ndarray] = None
        self._topo_cats_sig: Optional[np.ndarray] = None
        self._topo_entries = np.empty(m.num_links, dtype=object)
        self._topo_serial = False
        self._dn_bits: Optional[np.ndarray] = None
        self._dn_cats_sig: Optional[np.ndarray] = None
        self._dn_cc_sig: Optional[np.ndarray] = None
        self._dn_hf_sig: Optional[np.ndarray] = None
        self._dn_entries = np.empty(m.num_nodes, dtype=object)
        self._dl_bits: Optional[np.ndarray] = None
        self._dl_cats_sig: Optional[np.ndarray] = None
        self._dl_entries = np.empty(m.num_links, dtype=object)

    # ------------------------------------------------------------------

    def validate(
        self, snapshot: NetworkSnapshot, inputs: ControllerInputs
    ) -> ValidationReport:
        """Validate one epoch on the compiled arrays."""
        tracer = self._tracer
        m = self._model
        same = self._primed and snapshot is self._prev_snapshot
        if tracer.enabled:
            tracer.instant("vector", priming=not self._primed, replay=same)

        try:
            with tracer.span("collect", category="stage") as span:
                reuse_before = self._reuse_totals("collect") if tracer.enabled else None
                stage_start = time.perf_counter()
                if same:
                    self._stats.record_reuse("collect", 0, self._pack_total)
                else:
                    self._pack(snapshot)
                self._stats.record_stage("collect", time.perf_counter() - stage_start)
                self._annotate_reuse(span, "collect", reuse_before)

            with tracer.span("harden", category="stage") as span:
                reuse_before = self._reuse_totals("harden") if tracer.enabled else None
                stage_start = time.perf_counter()
                if same:
                    state = self._state
                    self._stats.record_reuse("harden.flows", 0, m.num_edges)
                    self._stats.record_reuse("harden.external", 0, m.num_nodes)
                    self._stats.record_reuse("harden.links", 0, m.num_links)
                    self._stats.record_reuse("harden.drains", 0, m.num_nodes)
                    self._stats.record_reuse("harden.drains", 0, m.num_links)
                else:
                    state = self._harden(snapshot)
                self._stats.record_stage("harden", time.perf_counter() - stage_start)
                self._annotate_reuse(span, "harden", reuse_before)

            with tracer.span("check", category="stage") as span:
                reuse_before = self._reuse_totals("check") if tracer.enabled else None
                stage_start = time.perf_counter()
                report = ValidationReport(timestamp=snapshot.timestamp, hardened=state)
                Hodor._record(report, self._check_demand(inputs, state))
                Hodor._record(report, self._check_topology(inputs, state))
                Hodor._record(report, self._check_drain(inputs, state))
                self._stats.record_stage("check", time.perf_counter() - stage_start)
                self._annotate_reuse(span, "check", reuse_before)
        except BaseException:
            self.reset()
            raise

        self._state = state
        self._prev_snapshot = snapshot
        self._primed = True
        return report

    def _reuse_totals(self, prefix: str) -> Tuple[int, int]:
        """(recomputed, reused) totals across a stage's entity families."""
        recomputed = sum(
            count
            for stage, count in self._stats.entities_recomputed.items()
            if stage.startswith(prefix)
        )
        reused = sum(
            count
            for stage, count in self._stats.entities_reused.items()
            if stage.startswith(prefix)
        )
        return recomputed, reused

    def _annotate_reuse(self, span, prefix: str, before: Optional[Tuple[int, int]]) -> None:
        if before is None:
            return
        recomputed, reused = self._reuse_totals(prefix)
        span.annotate(recomputed=recomputed - before[0], reused=reused - before[1])

    # ------------------------------------------------------------------
    # Stage 1: pack (collection)
    # ------------------------------------------------------------------

    def _layout(self, cached, mapping, slot_map) -> Tuple[tuple, np.ndarray]:
        """Key->slot gather for one family, revalidated by key tuple."""
        keys = tuple(mapping)
        if cached is not None and cached[0] == keys:
            return cached
        slots = np.fromiter(
            (slot_map.get(key, -1) for key in keys), np.int64, count=len(keys)
        )
        return (keys, slots)

    def _pack(self, snapshot: NetworkSnapshot) -> None:
        """Pack every snapshot family into the dense slot arrays.

        Fast paths cover exactly the values whose serial coercion is
        the identity with no finding; everything else goes through the
        serial ``collect_*_entity`` units (crash/finding parity) and is
        scattered into the arrays afterwards.  Family findings are
        emitted in sorted-key order, matching serial collection.
        """
        m = self._model
        collector = self._components.collector
        config = self._config
        snap_ts = snapshot.timestamp
        findings: List[Finding] = []
        self._counter_objs = {}
        self._extra_statuses = {}
        self._extra_probes = {}
        serial_links: Set[int] = set()
        total = 0
        recomputed = 0

        # -- interface counters -------------------------------------------------
        counters = snapshot.counters
        n = len(counters)
        total += n
        self._lay_counters = self._layout(self._lay_counters, counters, m.counter_slot)
        keys, slots = self._lay_counters
        crx = np.full(m.num_counter_slots, np.nan)
        ctx = np.full(m.num_counter_slots, np.nan)
        cts = np.zeros(m.num_counter_slots)
        cpres = np.zeros(m.num_counter_slots, dtype=bool)
        if n:
            rx = np.fromiter(
                (
                    v
                    if type(v := r.rx_rate) is float and 0.0 <= v < _INF
                    else (np.nan if v is None else -1.0)
                    for r in counters.values()
                ),
                np.float64,
                count=n,
            )
            tx = np.fromiter(
                (
                    v
                    if type(v := r.tx_rate) is float and 0.0 <= v < _INF
                    else (np.nan if v is None else -1.0)
                    for r in counters.values()
                ),
                np.float64,
                count=n,
            )
            ts = np.fromiter(
                (
                    t
                    if type(t := r.timestamp) is float
                    else (
                        float(t)
                        if type(t) is int and -_EXACT_INT < t < _EXACT_INT
                        else -_INF
                    )
                    for r in counters.values()
                ),
                np.float64,
                count=n,
            )
            # -1.0 flags a rate the fast path could not clear (valid rates
            # are >= 0); -inf timestamps force the stale branch, whose
            # serial unit reproduces exact serial behavior (including the
            # TypeError a non-numeric timestamp raises there).
            exc = (
                (rx == -1.0)  # lint: ignore[F1]
                | (tx == -1.0)  # lint: ignore[F1]
                | ((snap_ts - ts) > config.max_staleness_s)
                | (slots < 0)
            )
            ok = ~exc
            sl = slots[ok]
            crx[sl] = rx[ok]
            ctx[sl] = tx[ok]
            cts[sl] = ts[ok]
            cpres[sl] = True
            if exc.any():
                fmap: Dict[Tuple[str, str], Tuple[Finding, ...]] = {}
                for i in np.nonzero(exc)[0].tolist():
                    key = keys[i]
                    obj, fnds = collector.collect_counter_entity(
                        snap_ts, key, counters[key]
                    )
                    recomputed += 1
                    self._counter_objs[key] = obj
                    slot = slots[i]
                    if slot >= 0:
                        crx[slot] = np.nan if obj.rx is None else obj.rx
                        ctx[slot] = np.nan if obj.tx is None else obj.tx
                        cpres[slot] = True
                    if fnds:
                        fmap[key] = fnds
                for key in sorted(fmap):
                    findings.extend(fmap[key])
        self._cnt_rx, self._cnt_tx, self._cnt_ts, self._cnt_present = crx, ctx, cts, cpres

        # -- link status --------------------------------------------------------
        statuses = snapshot.link_status
        n = len(statuses)
        total += n
        self._lay_statuses = self._layout(self._lay_statuses, statuses, m.edge_index)
        keys, slots = self._lay_statuses
        st = np.full(m.num_edges, -1, dtype=np.int8)
        spres = np.zeros(m.num_edges, dtype=bool)
        if n:
            codes = np.fromiter(
                (
                    1
                    if (o := rep.oper_up) is True
                    else (0 if o is False else (-1 if o is None else -2))
                    for rep in statuses.values()
                ),
                np.int8,
                count=n,
            )
            exc = (codes == -2) | (slots < 0)
            ok = ~exc
            sl = slots[ok]
            st[sl] = codes[ok]
            spres[sl] = True
            if exc.any():
                fmap = {}
                for i in np.nonzero(exc)[0].tolist():
                    key = keys[i]
                    obj, fnds = collector.collect_status_entity(key, statuses[key])
                    recomputed += 1
                    slot = slots[i]
                    if slot >= 0:
                        oper = obj.oper_up
                        st[slot] = -1 if oper is None else int(oper)
                        spres[slot] = True
                    self._extra_statuses[key] = obj
                    if fnds:
                        fmap[key] = fnds
                for key in sorted(fmap):
                    findings.extend(fmap[key])
        self._st_oper, self._st_present = st, spres

        # -- node drains --------------------------------------------------------
        drains = snapshot.drains
        n = len(drains)
        total += n
        self._lay_drains = self._layout(self._lay_drains, drains, m.node_slot)
        keys, slots = self._lay_drains
        nd = np.full(m.num_nodes, -1, dtype=np.int8)
        if n:
            codes = np.fromiter(
                (
                    1
                    if (o := raw) is True
                    else (0 if o is False else (-1 if o is None else -2))
                    for raw in drains.values()
                ),
                np.int8,
                count=n,
            )
            exc = codes == -2
            ok = ~exc & (slots >= 0)
            nd[slots[ok]] = codes[ok]
            if exc.any():
                fmap = {}
                for i in np.nonzero(exc)[0].tolist():
                    key = keys[i]
                    value, fnds = collector.collect_drain_entity(key, drains[key])
                    recomputed += 1
                    slot = slots[i]
                    if slot >= 0:
                        nd[slot] = -1 if value is None else int(value)
                    if fnds:
                        fmap[key] = fnds
                for key in sorted(fmap):
                    findings.extend(fmap[key])
        self._nd_bit = nd

        # -- drain reasons (small family; parsed inline) ------------------------
        reasons = snapshot.drain_reasons
        total += len(reasons)
        rs = np.full(m.num_nodes, -1, dtype=np.int8)
        if reasons:
            fmap = {}
            reason_code = self._reason_code
            for key, raw in reasons.items():
                value, fnds = collector.collect_drain_reason_entity(key, raw)
                recomputed += 1
                slot = m.node_slot.get(key)
                if slot is not None and value is not None:
                    rs[slot] = reason_code[value]
                if fnds:
                    fmap[key] = fnds
            for key in sorted(fmap):
                findings.extend(fmap[key])
        self._nd_reason = rs

        # -- link drains --------------------------------------------------------
        link_drains = snapshot.link_drains
        n = len(link_drains)
        total += n
        self._lay_link_drains = self._layout(
            self._lay_link_drains, link_drains, m.edge_index
        )
        keys, slots = self._lay_link_drains
        ld = np.full(m.num_edges, -1, dtype=np.int8)
        if n:
            codes = np.fromiter(
                (
                    1
                    if (o := raw) is True
                    else (0 if o is False else (-1 if o is None else -2))
                    for raw in link_drains.values()
                ),
                np.int8,
                count=n,
            )
            exc = codes == -2
            ok = ~exc & (slots >= 0)
            ld[slots[ok]] = codes[ok]
            if exc.any():
                # collect_link_drain_entity never emits findings.
                for i in np.nonzero(exc)[0].tolist():
                    key = keys[i]
                    value, _fnds = collector.collect_link_drain_entity(
                        key, link_drains[key]
                    )
                    recomputed += 1
                    slot = slots[i]
                    if slot >= 0:
                        ld[slot] = -1 if value is None else int(value)
        self._ld_code = ld

        # -- drop counters ------------------------------------------------------
        drops = snapshot.drops
        n = len(drops)
        total += n
        self._lay_drops = self._layout(self._lay_drops, drops, m.node_slot)
        keys, slots = self._lay_drops
        dp = np.full(m.num_nodes, np.nan)
        if n:
            vals = np.fromiter(
                (
                    v
                    if type(v := raw) is float and 0.0 <= v < _INF
                    else (np.nan if v is None else -1.0)
                    for raw in drops.values()
                ),
                np.float64,
                count=n,
            )
            exc = vals == -1.0  # lint: ignore[F1]
            ok = ~exc & (slots >= 0)
            dp[slots[ok]] = vals[ok]
            if exc.any():
                fmap = {}
                for i in np.nonzero(exc)[0].tolist():
                    key = keys[i]
                    value, fnds = collector.collect_drop_entity(key, drops[key])
                    recomputed += 1
                    slot = slots[i]
                    if slot >= 0:
                        dp[slot] = np.nan if value is None else value
                    if fnds:
                        fmap[key] = fnds
                for key in sorted(fmap):
                    findings.extend(fmap[key])
        self._dp = dp

        # -- probes (raw booleans; no collection unit, no findings) -------------
        probes = snapshot.probes
        n = len(probes)
        self._lay_probes = self._layout(self._lay_probes, probes, m.edge_index)
        keys, slots = self._lay_probes
        pr = np.full(m.num_edges, -1, dtype=np.int8)
        if n:
            codes = np.fromiter(
                (
                    1
                    if (o := result.ok) is True
                    else (0 if o is False else -2)
                    for result in probes.values()
                ),
                np.int8,
                count=n,
            )
            exc = codes == -2
            ok = ~exc & (slots >= 0)
            pr[slots[ok]] = codes[ok]
            if exc.any():
                # A probe whose .ok is not a plain bool routes its link's
                # status hardening through the serial unit.
                for i in np.nonzero(exc)[0].tolist():
                    key = keys[i]
                    self._extra_probes[key] = probes[key].ok
                    slot = slots[i]
                    if slot >= 0:
                        serial_links.add(int(self._edge_link[slot]))
        self._pr = pr

        self._serial_links = sorted(serial_links)
        self._collected_findings = findings
        self._pack_total = total
        self._pack_recomputed = recomputed
        self._stats.record_reuse("collect", recomputed, total - recomputed)

    # ------------------------------------------------------------------
    # Stage 2: hardening
    # ------------------------------------------------------------------

    def _harden(self, snapshot: NetworkSnapshot) -> HardenedState:
        m = self._model
        cache = self._cache
        config = self._config
        primed = self._primed
        state = HardenedState()
        state.findings.extend(self._collected_findings)

        # -- R1 symmetry: paired-column comparison over all edges --------------
        E = m.num_edges
        tx = self._cnt_tx[:E]
        rx = self._cnt_rx[m.edge_rev]
        tx_nan = np.isnan(tx)
        rx_nan = np.isnan(rx)
        both = tx_nan & rx_nan
        one = tx_nan ^ rx_nan
        known2 = ~(tx_nan | rx_nan)
        mag = np.maximum(np.abs(tx), np.abs(rx))
        gaps = np.divide(
            np.abs(tx - rx),
            mag,
            out=np.zeros(E),
            where=known2 & (mag > config.rate_floor),
        )
        mismatch = known2 & (gaps > config.tau_h)
        cats = np.select([both, one, mismatch], [1, 2, 3], default=0).astype(np.int8)
        vals = (tx + rx) / 2.0

        if primed:
            moved_tx = _neq(tx, self._TX)
            moved_rx = _neq(rx, self._RX)
            if moved_tx is None and moved_rx is None:
                changed_e: List[int] = []
            else:
                mask = moved_tx if moved_tx is not None else moved_rx
                if moved_tx is not None and moved_rx is not None:
                    mask = moved_tx | moved_rx
                changed_e = np.nonzero(mask)[0].tolist()
        else:
            changed_e = list(range(E))
        for e in changed_e:
            cat = cats[e]
            if cat == 0:
                obj = HardenedValue(
                    float(vals[e]), Confidence.CORROBORATED, "avg of both ends"
                )
                fnds: Tuple[Finding, ...] = ()
            elif cat == 3:
                obj = self._hv_mismatch
                src, dst = cache.directed_edges[e]
                fnds = (
                    Finding(
                        code="R1_COUNTER_MISMATCH",
                        severity=FindingSeverity.WARNING,
                        subject=m.edge_subjects[e],
                        detail=(
                            f"tx@{src}={float(tx[e]):.6g} vs rx@{dst}={float(rx[e]):.6g} "
                            f"differ by {float(gaps[e]):.1%} (> tau_h={config.tau_h:.1%})"
                        ),
                        redundancy="R1",
                    ),
                )
            else:
                obj = self._hv_both if cat == 1 else self._hv_one
                fnds = self._edge_missing_findings(e, int(cat))
            self._edge_objs[e] = obj
            self._edge_fnds[e] = fnds
            self._edge_has[e] = bool(fnds)
        self._TX, self._RX = tx, rx
        self._stats.record_reuse("harden.flows", len(changed_e), E - len(changed_e))

        state.edge_flows = dict(zip(cache.directed_edges, self._edge_objs.tolist()))
        for e in np.nonzero(self._edge_has)[0].tolist():
            state.findings.extend(self._edge_fnds[e])

        # -- external counters and drops ---------------------------------------
        N = m.num_nodes
        ex_rx = self._cnt_rx[m.ext_slots]
        ex_tx = self._cnt_tx[m.ext_slots]
        ex_pres = self._cnt_present[m.ext_slots]
        dp = self._dp
        if primed:
            moved = None
            for pair in (
                _neq(ex_rx, self._ex_rx),
                _neq(ex_tx, self._ex_tx),
                _neq(dp, self._ex_dp),
            ):
                if pair is not None:
                    moved = pair if moved is None else (moved | pair)
            pres_moved = (
                None if ex_pres is self._ex_pres else (ex_pres != self._ex_pres)
            )
            if pres_moved is not None:
                moved = pres_moved if moved is None else (moved | pres_moved)
            changed_n = [] if moved is None else np.nonzero(moved)[0].tolist()
        else:
            changed_n = list(range(N))
        nodes = cache.nodes
        for i in changed_n:
            node = nodes[i]
            rxv = ex_rx[i]
            txv = ex_tx[i]
            dv = dp[i]
            self._ext_in_objs[i] = (
                HardenedValue(None, Confidence.UNKNOWN, f"{node}:ext rx: missing")
                if math.isnan(rxv)
                else HardenedValue(float(rxv), Confidence.REPORTED, f"{node}:ext rx")
            )
            self._ext_out_objs[i] = (
                HardenedValue(None, Confidence.UNKNOWN, f"{node}:ext tx: missing")
                if math.isnan(txv)
                else HardenedValue(float(txv), Confidence.REPORTED, f"{node}:ext tx")
            )
            self._drop_objs[i] = (
                HardenedValue(None, Confidence.UNKNOWN, f"{node} drops: missing")
                if math.isnan(dv)
                else HardenedValue(float(dv), Confidence.REPORTED, f"{node} drops")
            )
            fnds = () if ex_pres[i] else self._ext_missing_findings(i)
            self._ext_fnds[i] = fnds
            self._ext_has[i] = bool(fnds)
        self._ex_rx, self._ex_tx, self._ex_dp, self._ex_pres = ex_rx, ex_tx, dp, ex_pres
        self._stats.record_reuse("harden.external", len(changed_n), N - len(changed_n))

        state.ext_in = dict(zip(nodes, self._ext_in_objs.tolist()))
        state.ext_out = dict(zip(nodes, self._ext_out_objs.tolist()))
        state.drops = dict(zip(nodes, self._drop_objs.tolist()))
        for i in np.nonzero(self._ext_has)[0].tolist():
            state.findings.extend(self._ext_fnds[i])

        # -- R2 conservation repair (delegated; vector supplies the gate) ------
        EV_pre = np.where(cats == 0, vals, np.nan)
        EI_pre = ex_rx
        EO_pre = ex_tx
        DR_pre = dp
        unknown = (
            np.isnan(EV_pre).any()
            or np.isnan(EI_pre).any()
            or np.isnan(EO_pre).any()
            or np.isnan(DR_pre).any()
        )
        ei_rep = np.zeros(N, dtype=bool)
        eo_rep = np.zeros(N, dtype=bool)
        if config.enable_repair and unknown:
            if self._tracer.enabled:
                self._tracer.instant(
                    "repair_gate",
                    unknown_vars=int(
                        np.isnan(
                            np.concatenate((EV_pre, EI_pre, EO_pre, DR_pre))
                        ).sum()
                    ),
                )
            view = _CollectedView(self)
            hits_before = self._solver_cache.hits
            misses_before = self._solver_cache.misses
            repaired = self._components.hardener.repair_flows(
                view, state, solver_cache=self._solver_cache
            )
            self._stats.repair_reuses += self._solver_cache.hits - hits_before
            self._stats.repair_solves += self._solver_cache.misses - misses_before
        else:
            repaired = ()
        if repaired:
            EV = EV_pre.copy()
            EI = EI_pre.copy()
            EO = EO_pre.copy()
            DR = DR_pre.copy()
            for key in repaired:
                kind = key[0]
                if kind == "edge":
                    edge = (key[1], key[2])
                    EV[m.edge_index[edge]] = state.edge_flows[edge].value
                elif kind == "ext_in":
                    i = m.node_slot[key[1]]
                    EI[i] = state.ext_in[key[1]].value
                    ei_rep[i] = True
                elif kind == "ext_out":
                    i = m.node_slot[key[1]]
                    EO[i] = state.ext_out[key[1]].value
                    eo_rep[i] = True
                elif kind == "drop":
                    DR[m.node_slot[key[1]]] = state.drops[key[1]].value
        else:
            EV, EI, EO, DR = EV_pre, EI_pre, EO_pre, DR_pre
        self._EV, self._EI, self._EO, self._DR = EV, EI, EO, DR
        self._ei_rep, self._eo_rep = ei_rep, eo_rep

        self._harden_link_status(state)
        self._harden_node_drains(state)
        self._harden_link_drains(state)
        return state

    def _edge_missing_findings(self, e: int, cat: int) -> Tuple[Finding, ...]:
        key = (e, cat)
        fnds = self._edge_fnd_memo.get(key)
        if fnds is None:
            if cat == 1:
                code, detail = "R1_BOTH_MISSING", "no measurement from either end"
            else:
                code, detail = "R1_ONE_MISSING", "only one end reported; flagged for repair"
            fnds = (
                Finding(
                    code=code,
                    severity=FindingSeverity.WARNING,
                    subject=self._model.edge_subjects[e],
                    detail=detail,
                    redundancy="R1",
                ),
            )
            self._edge_fnd_memo[key] = fnds
        return fnds

    def _ext_missing_findings(self, i: int) -> Tuple[Finding, ...]:
        fnds = self._ext_fnd_memo.get(i)
        if fnds is None:
            fnds = (
                Finding(
                    code="MISSING_EXTERNAL_COUNTERS",
                    severity=FindingSeverity.WARNING,
                    subject=self._cache.nodes[i],
                    detail="no external interface reading; left unknown",
                ),
            )
            self._ext_fnd_memo[i] = fnds
        return fnds

    # -- link status --------------------------------------------------------

    def _harden_link_status(self, state: HardenedState) -> None:
        m = self._model
        config = self._config
        L = m.num_links
        sa = self._st_oper[m.link_ab]
        sb = self._st_oper[m.link_ba]
        both_missing = (sa == -1) & (sb == -1)
        conflict = (sa >= 0) & (sb >= 0) & (sa != sb)
        up = ~both_missing & (sa != 0) & (sb != 0)
        scode = np.select([both_missing, conflict, up], [3, 2, 0], default=1)

        if config.use_counters_for_status:
            r1 = self._cnt_rx[m.link_ab]
            r2 = self._cnt_tx[m.link_ab]
            r3 = self._cnt_rx[m.link_ba]
            r4 = self._cnt_tx[m.link_ba]
            known_any = ~(
                np.isnan(r1) & np.isnan(r2) & np.isnan(r3) & np.isnan(r4)
            )
            thr = config.active_threshold
            act = (r1 > thr) | (r2 > thr) | (r3 > thr) | (r4 > thr)
            acode = np.where(known_any, np.where(act, 1, 0), 2)
        else:
            acode = np.full(L, 2, dtype=np.int64)

        if config.use_probes:
            pa = self._pr[m.link_ab]
            pb = self._pr[m.link_ba]
            has = (pa >= 0) | (pb >= 0)
            fail = (pa == 0) | (pb == 0)
            pcode = np.where(has, np.where(fail, 1, 0), 2)
        else:
            pcode = np.full(L, 2, dtype=np.int64)

        cats = scode * 9 + acode * 3 + pcode
        serial = self._serial_links
        if serial:
            cats[serial] = -1

        prev = self._ls_cats
        if self._primed:
            moved = (cats != prev) | (cats == -1) | (prev == -1)
            changed = np.nonzero(moved)[0].tolist()
        else:
            changed = list(range(L))
        view: Optional[_CollectedView] = None
        hardener = self._components.hardener
        for li in changed:
            cat = int(cats[li])
            if cat < 0:
                if view is None:
                    view = _CollectedView(self)
                obj, fnds = hardener.harden_link_status_entity(
                    view, self._cache.links[li]
                )
            else:
                obj = self._ls_object(cat)
                fnds = self._ls_findings(li, cat, obj)
            self._ls_objs[li] = obj
            self._ls_fnds[li] = fnds
            self._ls_has[li] = bool(fnds)
        self._ls_cats = cats
        self._stats.record_reuse("harden.links", len(changed), L - len(changed))

        state.links = dict(zip(m.link_names, self._ls_objs.tolist()))
        for li in np.nonzero(self._ls_has)[0].tolist():
            state.findings.extend(self._ls_fnds[li])

    def _ls_object(self, cat: int):
        obj = self._ls_intern.get(cat)
        if obj is None:
            scode, rem = divmod(cat, 9)
            acode, pcode = divmod(rem, 3)
            obj = combine_codes(
                _STATUS_STRS[scode],
                _ACTIVE_VALS[acode],
                _PROBE_STRS[pcode],
                self._config,
            )
            self._ls_intern[cat] = obj
            self._ls_usable[cat] = obj.usable
        return obj

    def _ls_findings(self, li: int, cat: int, obj) -> Tuple[Finding, ...]:
        key = (li, cat)
        fnds = self._ls_fnd_memo.get(key)
        if fnds is None:
            name = self._model.link_names[li]
            out: List[Finding] = []
            if cat // 9 == 2:
                out.append(
                    Finding(
                        code="R1_STATUS_MISMATCH",
                        severity=FindingSeverity.WARNING,
                        subject=name,
                        detail="endpoints disagree on oper-status",
                        redundancy="R1",
                    )
                )
            if obj.verdict == LinkVerdict.SUSPECT:
                out.append(
                    Finding(
                        code="LINK_SUSPECT",
                        severity=FindingSeverity.WARNING,
                        subject=name,
                        detail=f"evidence unresolved: {', '.join(obj.evidence)}",
                        redundancy="R3",
                    )
                )
            if obj.verdict == LinkVerdict.UP and obj.forwarding is False:
                out.append(
                    Finding(
                        code="SEMANTIC_LINK_FAILURE",
                        severity=FindingSeverity.CRITICAL,
                        subject=name,
                        detail="status up but dataplane does not forward",
                        redundancy="R4",
                    )
                )
            fnds = tuple(out)
            self._ls_fnd_memo[key] = fnds
        return fnds

    # -- node drains --------------------------------------------------------

    def _harden_node_drains(self, state: HardenedState) -> None:
        m = self._model
        config = self._config
        N = m.num_nodes
        EV, EI, EO = self._EV, self._EI, self._EO
        thr = config.active_threshold
        known_counts = (
            m.edge_incidence_abs.dot((~np.isnan(EV)).astype(np.float64))
            + ~np.isnan(EI)
            + ~np.isnan(EO)
        )
        active_counts = (
            m.edge_incidence_abs.dot((EV > thr).astype(np.float64))
            + (EI > thr)
            + (EO > thr)
        )
        # Counts are exact small integers, so == 0 is an exact emptiness
        # test, not a float tolerance decision.
        k = np.where(
            known_counts == 0,
            -1,
            (active_counts > 0).astype(np.int64),
        )
        cats = ((self._nd_bit.astype(np.int64) + 1) * 5 + (self._nd_reason + 1)) * 3 + (
            k + 1
        )

        prev = self._nd_cats
        if self._primed and prev is not None:
            changed = np.nonzero(cats != prev)[0].tolist()
        else:
            changed = list(range(N))
        nodes = self._cache.nodes
        for i in changed:
            cat = int(cats[i])
            self._nd_objs[i] = self._nd_object(cat)
            fnds = self._nd_findings(i, cat)
            self._nd_fnds[i] = fnds
            self._nd_has[i] = bool(fnds)
        self._nd_cats = cats
        self._stats.record_reuse("harden.drains", len(changed), N - len(changed))

        for i in np.nonzero(self._nd_has)[0].tolist():
            state.findings.extend(self._nd_fnds[i])
        state.node_drains = dict(zip(nodes, self._nd_objs.tolist()))

    @staticmethod
    def _nd_decode(cat: int) -> Tuple[int, int, int]:
        """(drain bit, reason code, carrying code), each ``-1`` unknown."""
        k = cat % 3 - 1
        rest = cat // 3
        rc = rest % 5 - 1
        dr = rest // 5 - 1
        return dr, rc, k

    def _nd_object(self, cat: int) -> HardenedDrain:
        obj = self._nd_intern.get(cat)
        if obj is None:
            dr, rc, k = self._nd_decode(cat)
            reason = None if rc < 0 else tuple(DrainReason)[rc]
            carrying = None if k < 0 else bool(k)
            if dr < 0:
                verdict = DrainVerdict.CONFLICTED
            elif dr == 1:
                verdict = DrainVerdict.DRAINED
            else:
                verdict = DrainVerdict.SERVING
            evidence: List[str] = []
            if carrying is not None:
                evidence.append("traffic:active" if carrying else "traffic:idle")
            if reason is not None:
                evidence.append(f"reason:{reason.value}")
            obj = HardenedDrain(
                verdict=verdict,
                carrying_traffic=carrying,
                reason=reason,
                evidence=tuple(evidence),
            )
            self._nd_intern[cat] = obj
        return obj

    def _nd_findings(self, i: int, cat: int) -> Tuple[Finding, ...]:
        key = (i, cat)
        fnds = self._nd_fnd_memo.get(key)
        if fnds is None:
            dr, rc, k = self._nd_decode(cat)
            node = self._cache.nodes[i]
            if dr < 0:
                fnds = (
                    Finding(
                        code="DRAIN_MISSING",
                        severity=FindingSeverity.WARNING,
                        subject=node,
                        detail="no usable drain report",
                    ),
                )
            elif dr == 1 and k == 1:
                reason = None if rc < 0 else tuple(DrainReason)[rc]
                fnds = (
                    self._components.hardener._drained_but_carrying_finding(
                        node, reason
                    ),
                )
            else:
                fnds = ()
            self._nd_fnd_memo[key] = fnds
        return fnds

    # -- link drains --------------------------------------------------------

    def _harden_link_drains(self, state: HardenedState) -> None:
        m = self._model
        L = m.num_links
        ba = self._ld_code[m.link_ab].astype(np.int64)
        bb = self._ld_code[m.link_ba].astype(np.int64)
        cats = (ba + 1) * 3 + (bb + 1)

        prev = self._ld_cats
        if self._primed and prev is not None:
            changed = np.nonzero(cats != prev)[0].tolist()
        else:
            changed = list(range(L))
        for li in changed:
            cat = int(cats[li])
            self._ld_objs[li] = self._ld_object(cat)
            fnds = self._ld_findings(li, cat)
            self._ld_fnds[li] = fnds
            self._ld_has[li] = bool(fnds)
        self._ld_cats = cats
        self._stats.record_reuse("harden.drains", len(changed), L - len(changed))

        for li in np.nonzero(self._ld_has)[0].tolist():
            state.findings.extend(self._ld_fnds[li])
        state.link_drains = dict(zip(m.link_names, self._ld_objs.tolist()))

    @staticmethod
    def _ld_verdict(cat: int) -> DrainVerdict:
        bits = [_TRI[cat // 3], _TRI[cat % 3]]
        known = [bit for bit in bits if bit is not None]
        if known and all(known) and len(known) == 2:
            return DrainVerdict.DRAINED
        if known and not any(known):
            return DrainVerdict.SERVING
        return DrainVerdict.CONFLICTED

    def _ld_object(self, cat: int) -> HardenedDrain:
        obj = self._ld_intern.get(cat)
        if obj is None:
            obj = HardenedDrain(verdict=self._ld_verdict(cat))
            self._ld_intern[cat] = obj
        return obj

    def _ld_findings(self, li: int, cat: int) -> Tuple[Finding, ...]:
        key = (li, cat)
        fnds = self._ld_fnd_memo.get(key)
        if fnds is None:
            if self._ld_verdict(cat) == DrainVerdict.CONFLICTED:
                bits = [_TRI[cat // 3], _TRI[cat % 3]]
                fnds = (
                    Finding(
                        code="R1_DRAIN_MISMATCH",
                        severity=FindingSeverity.WARNING,
                        subject=self._model.link_names[li],
                        detail=f"link-drain bits disagree across endpoints: {bits}",
                        redundancy="R1",
                    ),
                )
            else:
                fnds = ()
            self._ld_fnd_memo[key] = fnds
        return fnds

    # ------------------------------------------------------------------
    # Stage 3: dynamic checks
    # ------------------------------------------------------------------

    def _check_demand(self, inputs: ControllerInputs, state: HardenedState):
        m = self._model
        cache = self._cache
        checker = self._components.demand
        N = m.num_nodes
        total_dropped = DemandChecker.total_dropped(state)
        demand = inputs.demand
        dnodes = demand.nodes
        arr = demand.to_array()

        ei_s = self._EI[m.sorted_node_idx]
        eo_s = self._EO[m.sorted_node_idx]
        eirep_s = self._ei_rep[m.sorted_node_idx]
        eorep_s = self._eo_rep[m.sorted_node_idx]

        all_dirty = (
            not self._primed
            or self._dem_nodes != dnodes
            or self._dem_arr is None
            or self._dem_arr.shape != arr.shape
            or self._prev_total_dropped is None
            # Exact identity is the reuse guard's contract (the drop
            # total widens every egress tolerance).
            or total_dropped != self._prev_total_dropped  # lint: ignore[F1]
        )
        if all_dirty:
            index = {node: i for i, node in enumerate(dnodes)}
            self._dem_member = np.fromiter(
                (node in index for node in cache.sorted_nodes), bool, count=N
            )
            self._dem_pos = np.fromiter(
                (index.get(node, 0) for node in cache.sorted_nodes),
                np.int64,
                count=N,
            )
            dirty_idx = list(range(N))
        else:
            data_moved = _neq(arr, self._dem_arr)
            mask = np.zeros(N, dtype=bool)
            if data_moved is not None and data_moved.any():
                rows_ch = data_moved.any(axis=1)
                cols_ch = data_moved.any(axis=0)
                mask |= self._dem_member & (
                    rows_ch[self._dem_pos] | cols_ch[self._dem_pos]
                )
            for pair in (_neq(ei_s, self._dem_ei), _neq(eo_s, self._dem_eo)):
                if pair is not None:
                    mask |= pair
            mask |= eirep_s != self._dem_eirep
            mask |= eorep_s != self._dem_eorep
            dirty_idx = np.nonzero(mask)[0].tolist()

        sorted_nodes = cache.sorted_nodes
        for i in dirty_idx:
            self._demand_entries[i] = checker.check_node_entity(
                demand, state, sorted_nodes[i], total_dropped
            )
        self._stats.record_reuse("check.demand", len(dirty_idx), N - len(dirty_idx))

        self._dem_nodes = dnodes
        self._dem_arr = arr
        self._dem_ei, self._dem_eo = ei_s, eo_s
        self._dem_eirep, self._dem_eorep = eirep_s, eorep_s
        self._prev_total_dropped = total_dropped

        result = CheckResult(input_name="demand")
        floor = max(self._config.rate_floor, self._config.active_threshold)
        if total_dropped > floor:
            result.notes.append(DemandChecker.dropped_note(total_dropped))
        for invariants, notes in self._demand_entries.tolist():
            result.results.extend(invariants)
            result.notes.extend(notes)
        skipped = result.num_skipped
        if skipped:
            result.notes.append(DemandChecker.skipped_note(skipped))
        return result

    def _check_topology(self, inputs: ControllerInputs, state: HardenedState):
        m = self._model
        cache = self._cache
        checker = self._components.topology
        believed = frozenset(link.name for link in inputs.topology.links())

        if not believed <= self._link_name_set:
            # Believed links outside the hardened universe: the key
            # universe no longer matches the compiled link order, so run
            # the whole serial check (rare -- a topology/cache mismatch
            # is itself a finding-worthy condition the checker handles).
            self._topo_serial = True
            universe = set(state.links) | believed
            self._stats.record_reuse("check.topology", len(universe), 0)
            return checker.check(inputs.topology, state)

        L = m.num_links
        bits = np.fromiter(
            (name in believed for name in cache.sorted_link_names), bool, count=L
        )
        cats_s = self._ls_cats[m.sorted_link_idx]
        if self._primed and not self._topo_serial and self._topo_bits is not None:
            moved = (
                (bits != self._topo_bits)
                | (cats_s != self._topo_cats_sig)
                | (cats_s == -1)
                | (self._topo_cats_sig == -1)
            )
            dirty_idx = np.nonzero(moved)[0].tolist()
        else:
            dirty_idx = list(range(L))
        sorted_names = cache.sorted_link_names
        for i in dirty_idx:
            name = sorted_names[i]
            self._topo_entries[i] = checker.check_link_entity(
                name, bool(bits[i]), state.links.get(name)
            )
        self._stats.record_reuse("check.topology", len(dirty_idx), L - len(dirty_idx))
        self._topo_bits = bits
        self._topo_cats_sig = cats_s
        self._topo_serial = False

        result = CheckResult(input_name="topology")
        for conditions, notes in self._topo_entries.tolist():
            result.results.extend(conditions)
            result.notes.extend(notes)
        return result

    def _check_drain(self, inputs: ControllerInputs, state: HardenedState):
        m = self._model
        cache = self._cache
        checker = self._components.drain
        N, L = m.num_nodes, m.num_links

        node_bits = np.fromiter(
            (bool(inputs.drains.is_node_drained(node)) for node in cache.sorted_nodes),
            bool,
            count=N,
        )
        link_bits = np.fromiter(
            (
                bool(inputs.drains.is_link_drained(name))
                for name in cache.sorted_link_names
            ),
            bool,
            count=L,
        )

        usable = np.zeros(L, dtype=bool)
        normal = self._ls_cats >= 0
        usable[normal] = self._ls_usable[self._ls_cats[normal]]
        for li in np.nonzero(~normal)[0].tolist():
            usable[li] = state.links[m.link_names[li]].usable
        usable_counts = m.link_incidence_abs.dot(usable.astype(np.float64))
        # node_degree and usable_counts are exact small integers.
        can_carry = (m.node_degree == 0) | (usable_counts > 0)
        has_faulty = (m.node_degree - usable_counts) > 0

        nc_s = self._nd_cats[m.sorted_node_idx]
        cc_s = can_carry[m.sorted_node_idx]
        hf_s = has_faulty[m.sorted_node_idx]
        lc_s = self._ld_cats[m.sorted_link_idx]

        if self._primed and self._dn_bits is not None:
            node_moved = (
                (node_bits != self._dn_bits)
                | (nc_s != self._dn_cats_sig)
                | (cc_s != self._dn_cc_sig)
                | (hf_s != self._dn_hf_sig)
            )
            link_moved = (link_bits != self._dl_bits) | (lc_s != self._dl_cats_sig)
            dirty_nodes = np.nonzero(node_moved)[0].tolist()
            dirty_links = np.nonzero(link_moved)[0].tolist()
        else:
            dirty_nodes = list(range(N))
            dirty_links = list(range(L))

        for i in dirty_nodes:
            self._dn_entries[i] = checker.check_node_entity(
                inputs.drains, state, cache.node_links, cache.sorted_nodes[i]
            )
        for i in dirty_links:
            self._dl_entries[i] = checker.check_link_entity(
                inputs.drains, state, cache.sorted_link_names[i]
            )
        recomputed = len(dirty_nodes) + len(dirty_links)
        self._stats.record_reuse("check.drain", recomputed, N + L - recomputed)

        self._dn_bits, self._dl_bits = node_bits, link_bits
        self._dn_cats_sig, self._dn_cc_sig, self._dn_hf_sig = nc_s, cc_s, hf_s
        self._dl_cats_sig = lc_s

        result = CheckResult(input_name="drain")
        for conditions, notes in self._dn_entries.tolist():
            result.results.extend(conditions)
            result.notes.extend(notes)
        for conditions in self._dl_entries.tolist():
            result.results.extend(conditions)
        return result
