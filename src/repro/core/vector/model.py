"""Array-compiled topology model for the vector backend.

A :class:`VectorModel` is the one-time compilation of a
:class:`~repro.engine.cache.TopologyCache` into indexed numpy/scipy
structures, built once per topology fingerprint and reused every epoch
(see :class:`~repro.engine.cache.VectorModelStore`):

- **slot maps**: every signal family the pipeline reads gets a dense
  integer slot universe -- interface counters are laid out as the
  directed edges followed by one external slot per router, so the two
  measurements of one traffic direction (tx at the source, rx at the
  reverse interface) become a *paired-column* gather
  (``cnt_tx[edge]`` vs ``cnt_rx[edge_rev[edge]]``) and R1 symmetry is
  one elementwise comparison over all edges at once;
- **incidence matrices in CSR form**: the prebuilt
  :class:`~repro.core.flow_repair.ConservationSystem` is lowered to a
  sparse ``(routers x variables)`` incidence matrix over the canonical
  variable layout ``[edges | ext_in | ext_out | drops]``; its
  absolute-value form (and the edge/link restrictions of it) turns the
  per-router reductions of the serial path -- "does this router carry
  traffic", "how many usable links touch it" -- into sparse
  matrix-vector products;
- **iteration-order indices**: gather arrays mapping the checker's
  sorted orders onto the insertion-order arrays, so assembly can walk
  the exact serial orders without per-entity dict lookups.

The model holds *structure only* -- no per-epoch values and no
references to the per-entity units; the epoch-time array work lives in
:mod:`repro.core.vector.backend`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

import numpy as np
from scipy import sparse

from repro.net.topology import EXTERNAL_PEER

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.cache import TopologyCache

__all__ = ["VectorModel"]


@dataclass(frozen=True)
class VectorModel:
    """Every topology-derived array structure one vector epoch needs.

    Attributes:
        cache: The source topology cache (shared with the serial path).
        num_nodes: Router count ``N``.
        num_links: Link count ``L``.
        num_edges: Directed-edge count ``E`` (``2 * L``).
        counter_slot: Interface-counter key -> dense slot.  The first
            ``E`` slots are the directed edges in cache order; the next
            ``N`` slots are the routers' external interfaces.
        num_counter_slots: ``E + N``.
        ext_slots: Per router (insertion order), the slot of its
            external-interface counter.
        edge_index: Directed edge -> edge index (cache order).
        edge_rev: Per directed edge, the index of the reversed edge
            (the paired column for R1 symmetry).
        node_slot: Router name -> node index (insertion order).
        link_ab: Per link (cache order), the edge index of ``(a, b)``.
        link_ba: Per link, the edge index of ``(b, a)``.
        link_names: Canonical link names in cache order.
        edge_subjects: ``"src->dst"`` per directed edge (finding
            subjects, precomputed once).
        edge_incidence_abs: CSR ``(N, E)``; entry 1 when the edge
            touches the router (both endpoints).  The edge-column
            restriction of ``|conservation_abs|``.
        link_incidence_abs: CSR ``(N, L)``; entry 1 when the link
            touches the router.
        node_degree: Per router, how many links touch it.
        conservation_abs: CSR ``(N, E + 3N)`` -- the conservation
            incidence matrix ``|M|`` over the canonical variable layout
            ``[edges | ext_in | ext_out | drops]``, lowered from
            :class:`~repro.core.flow_repair.ConservationSystem`.
        sorted_node_idx: Per sorted router, its insertion-order index.
        sorted_link_idx: Per sorted link name, its cache-order index.
    """

    cache: "TopologyCache"
    num_nodes: int
    num_links: int
    num_edges: int
    counter_slot: Dict[Tuple[str, str], int]
    num_counter_slots: int
    ext_slots: np.ndarray
    edge_index: Dict[Tuple[str, str], int]
    edge_rev: np.ndarray
    node_slot: Dict[str, int]
    link_ab: np.ndarray
    link_ba: np.ndarray
    link_names: Tuple[str, ...]
    edge_subjects: Tuple[str, ...]
    edge_incidence_abs: sparse.csr_matrix
    link_incidence_abs: sparse.csr_matrix
    node_degree: np.ndarray
    conservation_abs: sparse.csr_matrix
    sorted_node_idx: np.ndarray
    sorted_link_idx: np.ndarray

    @classmethod
    def from_cache(cls, cache: "TopologyCache") -> "VectorModel":
        """Compile one topology cache into the array model."""
        nodes = cache.nodes
        edges = cache.directed_edges
        links = cache.links
        num_nodes = len(nodes)
        num_edges = len(edges)
        num_links = len(links)

        node_slot = {node: i for i, node in enumerate(nodes)}
        edge_index = {edge: i for i, edge in enumerate(edges)}
        edge_rev = np.array(
            [edge_index[(dst, src)] for src, dst in edges], dtype=np.int64
        ).reshape(num_edges)

        counter_slot: Dict[Tuple[str, str], int] = dict(edge_index)
        ext_slots = np.empty(num_nodes, dtype=np.int64)
        for i, node in enumerate(nodes):
            slot = num_edges + i
            counter_slot[(node, EXTERNAL_PEER)] = slot
            ext_slots[i] = slot

        link_ab = np.array(
            [edge_index[(link.a, link.b)] for link in links], dtype=np.int64
        ).reshape(num_links)
        link_ba = np.array(
            [edge_index[(link.b, link.a)] for link in links], dtype=np.int64
        ).reshape(num_links)

        # |M| restricted to edge columns: each directed edge touches the
        # equations of both its endpoints.
        edge_rows = np.empty(2 * num_edges, dtype=np.int64)
        edge_cols = np.empty(2 * num_edges, dtype=np.int64)
        for e, (src, dst) in enumerate(edges):
            edge_rows[2 * e] = node_slot[src]
            edge_rows[2 * e + 1] = node_slot[dst]
            edge_cols[2 * e] = e
            edge_cols[2 * e + 1] = e
        edge_incidence_abs = sparse.csr_matrix(
            (np.ones(2 * num_edges), (edge_rows, edge_cols)),
            shape=(num_nodes, num_edges),
        )

        link_rows = np.empty(2 * num_links, dtype=np.int64)
        link_cols = np.empty(2 * num_links, dtype=np.int64)
        for li, link in enumerate(links):
            link_rows[2 * li] = node_slot[link.a]
            link_rows[2 * li + 1] = node_slot[link.b]
            link_cols[2 * li] = li
            link_cols[2 * li + 1] = li
        link_incidence_abs = sparse.csr_matrix(
            (np.ones(2 * num_links), (link_rows, link_cols)),
            shape=(num_nodes, num_links),
        )
        node_degree = np.asarray(link_incidence_abs.sum(axis=1)).reshape(num_nodes)

        # Lower the prebuilt conservation system to CSR over the
        # canonical variable layout [edges | ext_in | ext_out | drops].
        var_index: Dict[Tuple[str, ...], int] = {}
        for e, (src, dst) in enumerate(edges):
            var_index[("edge", src, dst)] = e
        for i, node in enumerate(nodes):
            var_index[("ext_in", node)] = num_edges + i
            var_index[("ext_out", node)] = num_edges + num_nodes + i
            var_index[("drop", node)] = num_edges + 2 * num_nodes + i
        rows, cols, data = [], [], []
        for key, _field_id, _lookup, entry_rows in cache.conservation.entries:
            col = var_index[key]
            for row, coefficient in entry_rows:
                rows.append(row)
                cols.append(col)
                data.append(abs(coefficient))
        conservation_abs = sparse.csr_matrix(
            (data, (rows, cols)),
            shape=(num_nodes, num_edges + 3 * num_nodes),
        )

        sorted_node_idx = np.array(
            [node_slot[node] for node in cache.sorted_nodes], dtype=np.int64
        ).reshape(num_nodes)
        link_pos = {link.name: i for i, link in enumerate(links)}
        sorted_link_idx = np.array(
            [link_pos[name] for name in cache.sorted_link_names], dtype=np.int64
        ).reshape(num_links)

        return cls(
            cache=cache,
            num_nodes=num_nodes,
            num_links=num_links,
            num_edges=num_edges,
            counter_slot=counter_slot,
            num_counter_slots=num_edges + num_nodes,
            ext_slots=ext_slots,
            edge_index=edge_index,
            edge_rev=edge_rev,
            node_slot=node_slot,
            link_ab=link_ab,
            link_ba=link_ba,
            link_names=tuple(link.name for link in links),
            edge_subjects=tuple(f"{src}->{dst}" for src, dst in edges),
            edge_incidence_abs=edge_incidence_abs,
            link_incidence_abs=link_incidence_abs,
            node_degree=node_degree,
            conservation_abs=conservation_abs,
            sorted_node_idx=sorted_node_idx,
            sorted_link_idx=sorted_link_idx,
        )
