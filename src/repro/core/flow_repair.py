"""Flow-conservation repair (the paper's R2 redundancy).

Section 4.1: "Formulating this as a dot product between the incidence
matrix M and v_partial, we can solve for up to |V| - 1 unknowns, the
rank of M, to recover missing/corrupted values."

We build exactly that system.  One conservation equation per router::

    sum(in-edges) + ext_in  =  sum(out-edges) + ext_out + dropped

Unknowns (flagged or missing values -- the "variables" in the paper's
flow vector) move to the left-hand side of ``A x = b``; knowns fold
into ``b``.  The least-squares solution gives candidate repairs, and an
SVD null-space test tells us *which* unknowns are uniquely determined
-- an unknown whose value can trade off against another along a null
direction is not recoverable and must stay unknown rather than be
"repaired" with an arbitrary minimum-norm guess.

The solve is *component-scoped*: two unknowns interact only when they
touch a common conservation equation, so the unknown-coefficient
matrix is block-diagonal over the connected components of that
interaction graph.  Each component is solved independently (the
minimum-norm solution, residual, and null-space verdicts of the block
decomposition coincide with the global system's), which keeps a solve
on an epoch with localized corruption proportional to the corrupted
region rather than the whole WAN -- and makes individual component
solutions cacheable across epochs (:class:`ConservationSolveCache`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "VarKey",
    "edge_var",
    "ext_in_var",
    "ext_out_var",
    "drop_var",
    "RepairResult",
    "ConservationSolveCache",
    "ConservationSystem",
    "solve_flow_conservation",
]

#: Variable identifiers in the conservation system.
VarKey = Tuple[str, ...]


def edge_var(src: str, dst: str) -> VarKey:
    return ("edge", src, dst)


def ext_in_var(node: str) -> VarKey:
    return ("ext_in", node)


def ext_out_var(node: str) -> VarKey:
    return ("ext_out", node)


def drop_var(node: str) -> VarKey:
    return ("drop", node)


#: Null-space components smaller than this count as zero (an unknown is
#: uniquely determined when every null vector is ~zero at its index).
_NULLSPACE_TOL = 1e-8


@dataclass
class RepairResult:
    """Outcome of one conservation solve.

    Attributes:
        values: Solved value per unknown; ``None`` when the unknown is
            not uniquely determined by the system.
        residual: Relative residual of the least-squares solution
            (``||Ax - b|| / max(1, ||b||)``); a large residual means
            the *known* values already violate conservation, i.e. more
            corruption than the unknowns can explain.
        rank: Rank of the unknown-coefficient matrix.
        num_unknowns: How many unknowns the system had.
    """

    values: Dict[VarKey, Optional[float]] = field(default_factory=dict)
    residual: float = 0.0
    rank: int = 0
    num_unknowns: int = 0

    def solved(self) -> Dict[VarKey, float]:
        """Only the uniquely determined unknowns."""
        return {key: value for key, value in self.values.items() if value is not None}

    def is_consistent(self, tolerance: float) -> bool:
        return self.residual <= tolerance


#: One solved component: ``((var_key, value_or_None), ...)`` in member
#: order, the component's squared residual, and its effective rank.
_ComponentSolution = Tuple[Tuple[Tuple[VarKey, Optional[float]], ...], float, int]


class ConservationSolveCache:
    """LRU memo of per-component conservation solves.

    A component's solution is fully determined by its unknown keys, the
    equation rows it touches, and the folded-in right-hand side on
    those rows -- all of which the cache key captures exactly.  Because
    ``numpy.linalg.lstsq``/``svd`` are deterministic for identical
    inputs, a cache hit returns a *bitwise-identical* solution to a
    fresh solve, so cached and uncached passes stay differentially
    indistinguishable.

    Across epochs with low churn, the folded right-hand side of an
    untouched corrupted region repeats verbatim, so the incremental
    engine's R2 stage degenerates to dictionary lookups.

    Args:
        max_entries: Evict least-recently-used solutions beyond this.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._max_entries = max_entries
        self._entries: "OrderedDict[Tuple, _ComponentSolution]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Tuple) -> Optional[_ComponentSolution]:
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        return None

    def put(self, key: Tuple, solution: _ComponentSolution) -> None:
        self._entries[key] = solution
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)


#: Which value mapping each conservation variable reads from.
_FIELD_EDGE, _FIELD_EXT_IN, _FIELD_EXT_OUT, _FIELD_DROP = range(4)


@dataclass(frozen=True)
class ConservationSystem:
    """The topology-derived structure of the conservation system.

    Everything about ``A x = b`` that does not depend on this epoch's
    measured values: which variable touches which node equation with
    which coefficient.  Building it costs one pass over the topology;
    :meth:`solve` then only has to fold in per-epoch values, so an
    always-on caller (see :mod:`repro.engine.cache`) can reuse one
    system across every epoch on an unchanged topology.

    Attributes:
        nodes: Every router, one conservation equation each.
        edges: Every directed edge.
        entries: Per variable (in canonical order): its key, which
            mapping supplies its value (``_FIELD_*``), the lookup key
            into that mapping, and the ``(row, coefficient)`` pairs it
            contributes to.
    """

    nodes: Tuple[str, ...]
    edges: Tuple[Tuple[str, str], ...]
    entries: Tuple[Tuple[VarKey, int, Hashable, Tuple[Tuple[int, float], ...]], ...]

    @classmethod
    def build(
        cls, nodes: Sequence[str], edges: Sequence[Tuple[str, str]]
    ) -> "ConservationSystem":
        """Derive the system structure for one topology.

        One equation per router, written as
        ``sum(in) + ext_in - sum(out) - ext_out - drop = 0``.
        """
        node_index = {node: i for i, node in enumerate(nodes)}
        entries: List[Tuple[VarKey, int, Hashable, Tuple[Tuple[int, float], ...]]] = []
        for src, dst in edges:
            rows: List[Tuple[int, float]] = []
            if dst in node_index:
                rows.append((node_index[dst], 1.0))
            if src in node_index:
                rows.append((node_index[src], -1.0))
            entries.append((edge_var(src, dst), _FIELD_EDGE, (src, dst), tuple(rows)))
        for node in nodes:
            row = node_index[node]
            entries.append((ext_in_var(node), _FIELD_EXT_IN, node, ((row, 1.0),)))
            entries.append((ext_out_var(node), _FIELD_EXT_OUT, node, ((row, -1.0),)))
            entries.append((drop_var(node), _FIELD_DROP, node, ((row, -1.0),)))
        return cls(nodes=tuple(nodes), edges=tuple(tuple(e) for e in edges), entries=tuple(entries))

    def solve(
        self,
        edge_values: Mapping[Tuple[str, str], Optional[float]],
        ext_in: Mapping[str, Optional[float]],
        ext_out: Mapping[str, Optional[float]],
        drops: Mapping[str, Optional[float]],
        cache: Optional[ConservationSolveCache] = None,
    ) -> RepairResult:
        """Solve for all ``None`` values given this epoch's knowns.

        The system decomposes into independent blocks over the
        connected components of the unknown-interaction graph (two
        unknowns interact when they touch a common equation); each
        block is solved on its own submatrix.  Equations touching no
        unknown contribute their imbalance directly to the residual.

        Args:
            cache: Optional :class:`ConservationSolveCache`; component
                solutions are looked up / stored there.  Hits are
                bitwise-identical to fresh solves.
        """
        mappings = (edge_values, ext_in, ext_out, drops)
        rhs = np.zeros(len(self.nodes))
        unknown_entries: List[
            Tuple[VarKey, int, Hashable, Tuple[Tuple[int, float], ...]]
        ] = []
        for entry in self.entries:
            _key, field_id, lookup, rows = entry
            value = mappings[field_id].get(lookup)
            if value is None:
                unknown_entries.append(entry)
            else:
                for row, coefficient in rows:
                    rhs[row] -= coefficient * value

        scale = max(1.0, _system_scale(edge_values, ext_in, ext_out))
        if not unknown_entries:
            residual = float(np.linalg.norm(rhs)) / scale
            return RepairResult(values={}, residual=residual, rank=0, num_unknowns=0)

        solved: Dict[VarKey, Optional[float]] = {}
        residual_sq = 0.0
        total_rank = 0
        touched_rows: set = set()
        for members in _interaction_components(unknown_entries):
            component_rows = sorted(
                {row for j in members for row, _coeff in unknown_entries[j][3]}
            )
            touched_rows.update(component_rows)
            key = (
                tuple(unknown_entries[j][0] for j in members),
                tuple(unknown_entries[j][3] for j in members),
                tuple(float(rhs[row]) for row in component_rows),
            )
            solution = cache.get(key) if cache is not None else None
            if solution is None:
                solution = _solve_component(unknown_entries, members, component_rows, rhs)
                if cache is not None:
                    cache.put(key, solution)
            component_values, component_residual_sq, component_rank = solution
            residual_sq += component_residual_sq
            total_rank += component_rank
            solved.update(component_values)

        for row, imbalance in enumerate(rhs):
            if row not in touched_rows:
                residual_sq += float(imbalance) ** 2
        residual = float(np.sqrt(residual_sq)) / scale

        # Reassemble in global entries order so downstream finding
        # emission is independent of the component partition.
        values: Dict[VarKey, Optional[float]] = {
            entry[0]: solved[entry[0]] for entry in unknown_entries
        }
        return RepairResult(
            values=values,
            residual=residual,
            rank=total_rank,
            num_unknowns=len(unknown_entries),
        )


def _interaction_components(
    unknown_entries: Sequence[Tuple[VarKey, int, Hashable, Tuple[Tuple[int, float], ...]]],
) -> List[List[int]]:
    """Connected components of the unknown-interaction graph.

    Two unknowns interact when they touch a common equation row.
    Components are returned with members in entry order, ordered by
    their first member, so the partition is deterministic.
    """
    parent = list(range(len(unknown_entries)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    row_owner: Dict[int, int] = {}
    for j, (_key, _field, _lookup, rows) in enumerate(unknown_entries):
        for row, _coeff in rows:
            owner = row_owner.get(row)
            if owner is None:
                row_owner[row] = j
            else:
                root_a, root_b = find(j), find(owner)
                if root_a != root_b:
                    parent[root_a] = root_b

    groups: Dict[int, List[int]] = {}
    for j in range(len(unknown_entries)):
        groups.setdefault(find(j), []).append(j)
    return sorted(groups.values(), key=lambda members: members[0])


def _solve_component(
    unknown_entries: Sequence[Tuple[VarKey, int, Hashable, Tuple[Tuple[int, float], ...]]],
    members: Sequence[int],
    component_rows: Sequence[int],
    rhs: np.ndarray,
) -> _ComponentSolution:
    """Least-squares + null-space analysis for one component block."""
    row_position = {row: i for i, row in enumerate(component_rows)}
    matrix = np.zeros((len(component_rows), len(members)))
    for column, j in enumerate(members):
        for row, coefficient in unknown_entries[j][3]:
            matrix[row_position[row], column] += coefficient
    b = rhs[list(component_rows)]

    solution, _residuals, _rank, _singular = np.linalg.lstsq(matrix, b, rcond=None)
    fitted = matrix @ solution
    residual_sq = float(np.dot(fitted - b, fitted - b))

    # Null-space analysis: which unknowns are uniquely determined?
    _u, singular, vt = np.linalg.svd(matrix)
    tol = max(matrix.shape) * (singular[0] if singular.size else 0.0) * np.finfo(float).eps
    effective_rank = int((singular > tol).sum()) if singular.size else 0
    null_vectors = vt[effective_rank:]

    values: List[Tuple[VarKey, Optional[float]]] = []
    for column, j in enumerate(members):
        key = unknown_entries[j][0]
        if null_vectors.size and np.any(np.abs(null_vectors[:, column]) > _NULLSPACE_TOL):
            values.append((key, None))  # underdetermined
            continue
        value = float(solution[column])
        if -1e-6 < value < 0:
            value = 0.0
        values.append((key, value))
    return tuple(values), residual_sq, effective_rank


def solve_flow_conservation(
    nodes: Sequence[str],
    edges: Sequence[Tuple[str, str]],
    edge_values: Mapping[Tuple[str, str], Optional[float]],
    ext_in: Mapping[str, Optional[float]],
    ext_out: Mapping[str, Optional[float]],
    drops: Mapping[str, Optional[float]],
) -> RepairResult:
    """Solve the conservation system for all ``None`` values.

    One-shot convenience wrapper: builds the
    :class:`ConservationSystem` for this topology and solves it.
    Callers with a stable topology should build (or cache) the system
    once and call :meth:`ConservationSystem.solve` per epoch.

    Args:
        nodes: Every router (one equation each).
        edges: Every directed edge in the network.
        edge_values: Known hardened flow per directed edge, ``None``
            for unknowns.
        ext_in: Known external ingress per router, ``None`` unknown.
        ext_out: Known external egress per router, ``None`` unknown.
        drops: Known dropped rate per router, ``None`` unknown.

    Returns:
        A :class:`RepairResult`; values are clamped at zero when the
        solve lands a hair negative (rates cannot be negative), but
        meaningfully negative solutions are preserved so callers can
        flag the inconsistency.
    """
    return ConservationSystem.build(nodes, edges).solve(edge_values, ext_in, ext_out, drops)


def _system_scale(
    edge_values: Mapping[Tuple[str, str], Optional[float]],
    ext_in: Mapping[str, Optional[float]],
    ext_out: Mapping[str, Optional[float]],
) -> float:
    """Typical magnitude of the system, for relative residuals."""
    known = [
        value
        for mapping in (edge_values, ext_in, ext_out)
        for value in mapping.values()
        if value is not None
    ]
    return max(known) if known else 1.0
