"""Flow-conservation repair (the paper's R2 redundancy).

Section 4.1: "Formulating this as a dot product between the incidence
matrix M and v_partial, we can solve for up to |V| - 1 unknowns, the
rank of M, to recover missing/corrupted values."

We build exactly that system.  One conservation equation per router::

    sum(in-edges) + ext_in  =  sum(out-edges) + ext_out + dropped

Unknowns (flagged or missing values -- the "variables" in the paper's
flow vector) move to the left-hand side of ``A x = b``; knowns fold
into ``b``.  The least-squares solution gives candidate repairs, and an
SVD null-space test tells us *which* unknowns are uniquely determined
-- an unknown whose value can trade off against another along a null
direction is not recoverable and must stay unknown rather than be
"repaired" with an arbitrary minimum-norm guess.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["VarKey", "edge_var", "ext_in_var", "ext_out_var", "drop_var", "RepairResult", "solve_flow_conservation"]

#: Variable identifiers in the conservation system.
VarKey = Tuple[str, ...]


def edge_var(src: str, dst: str) -> VarKey:
    return ("edge", src, dst)


def ext_in_var(node: str) -> VarKey:
    return ("ext_in", node)


def ext_out_var(node: str) -> VarKey:
    return ("ext_out", node)


def drop_var(node: str) -> VarKey:
    return ("drop", node)


#: Null-space components smaller than this count as zero (an unknown is
#: uniquely determined when every null vector is ~zero at its index).
_NULLSPACE_TOL = 1e-8


@dataclass
class RepairResult:
    """Outcome of one conservation solve.

    Attributes:
        values: Solved value per unknown; ``None`` when the unknown is
            not uniquely determined by the system.
        residual: Relative residual of the least-squares solution
            (``||Ax - b|| / max(1, ||b||)``); a large residual means
            the *known* values already violate conservation, i.e. more
            corruption than the unknowns can explain.
        rank: Rank of the unknown-coefficient matrix.
        num_unknowns: How many unknowns the system had.
    """

    values: Dict[VarKey, Optional[float]] = field(default_factory=dict)
    residual: float = 0.0
    rank: int = 0
    num_unknowns: int = 0

    def solved(self) -> Dict[VarKey, float]:
        """Only the uniquely determined unknowns."""
        return {key: value for key, value in self.values.items() if value is not None}

    def is_consistent(self, tolerance: float) -> bool:
        return self.residual <= tolerance


def solve_flow_conservation(
    nodes: Sequence[str],
    edges: Sequence[Tuple[str, str]],
    edge_values: Mapping[Tuple[str, str], Optional[float]],
    ext_in: Mapping[str, Optional[float]],
    ext_out: Mapping[str, Optional[float]],
    drops: Mapping[str, Optional[float]],
) -> RepairResult:
    """Solve the conservation system for all ``None`` values.

    Args:
        nodes: Every router (one equation each).
        edges: Every directed edge in the network.
        edge_values: Known hardened flow per directed edge, ``None``
            for unknowns.
        ext_in: Known external ingress per router, ``None`` unknown.
        ext_out: Known external egress per router, ``None`` unknown.
        drops: Known dropped rate per router, ``None`` unknown.

    Returns:
        A :class:`RepairResult`; values are clamped at zero when the
        solve lands a hair negative (rates cannot be negative), but
        meaningfully negative solutions are preserved so callers can
        flag the inconsistency.
    """
    node_index = {node: i for i, node in enumerate(nodes)}
    unknowns: List[VarKey] = []

    def classify(key: VarKey, value: Optional[float]) -> Optional[float]:
        if value is None:
            unknowns.append(key)
        return value

    # Coefficient of each variable in each node equation, written as
    # LHS = sum(in) + ext_in - sum(out) - ext_out - drop = 0.
    terms: List[Tuple[VarKey, int, float, Optional[float]]] = []
    for src, dst in edges:
        value = classify(edge_var(src, dst), edge_values.get((src, dst)))
        if dst in node_index:
            terms.append((edge_var(src, dst), node_index[dst], 1.0, value))
        if src in node_index:
            terms.append((edge_var(src, dst), node_index[src], -1.0, value))
    for node in nodes:
        row = node_index[node]
        terms.append((ext_in_var(node), row, 1.0, classify(ext_in_var(node), ext_in.get(node))))
        terms.append(
            (ext_out_var(node), row, -1.0, classify(ext_out_var(node), ext_out.get(node)))
        )
        terms.append((drop_var(node), row, -1.0, classify(drop_var(node), drops.get(node))))

    # classify() may record the same unknown twice (edges touch two
    # equations); dedupe preserving order.
    seen = set()
    unique_unknowns = []
    for key in unknowns:
        if key not in seen:
            seen.add(key)
            unique_unknowns.append(key)
    unknown_index = {key: j for j, key in enumerate(unique_unknowns)}

    num_equations = len(nodes)
    num_unknowns = len(unique_unknowns)
    matrix = np.zeros((num_equations, num_unknowns))
    rhs = np.zeros(num_equations)

    for key, row, coefficient, value in terms:
        if value is None:
            matrix[row, unknown_index[key]] += coefficient
        else:
            rhs[row] -= coefficient * value

    if num_unknowns == 0:
        residual = float(np.linalg.norm(rhs)) / max(
            1.0, _system_scale(edge_values, ext_in, ext_out)
        )
        return RepairResult(values={}, residual=residual, rank=0, num_unknowns=0)

    solution, _residuals, rank, _singular = np.linalg.lstsq(matrix, rhs, rcond=None)
    fitted = matrix @ solution
    scale = max(1.0, _system_scale(edge_values, ext_in, ext_out))
    residual = float(np.linalg.norm(fitted - rhs)) / scale

    # Null-space analysis: which unknowns are uniquely determined?
    _u, singular, vt = np.linalg.svd(matrix)
    tol = max(matrix.shape) * (singular[0] if singular.size else 0.0) * np.finfo(float).eps
    effective_rank = int((singular > tol).sum()) if singular.size else 0
    null_vectors = vt[effective_rank:]

    values: Dict[VarKey, Optional[float]] = {}
    for key, j in unknown_index.items():
        if null_vectors.size and np.any(np.abs(null_vectors[:, j]) > _NULLSPACE_TOL):
            values[key] = None  # underdetermined
            continue
        value = float(solution[j])
        if -1e-6 < value < 0:
            value = 0.0
        values[key] = value

    return RepairResult(
        values=values, residual=residual, rank=effective_rank, num_unknowns=num_unknowns
    )


def _system_scale(
    edge_values: Mapping[Tuple[str, str], Optional[float]],
    ext_in: Mapping[str, Optional[float]],
    ext_out: Mapping[str, Optional[float]],
) -> float:
    """Typical magnitude of the system, for relative residuals."""
    known = [
        value
        for mapping in (edge_values, ext_in, ext_out)
        for value in mapping.values()
        if value is not None
    ]
    return max(known) if known else 1.0
