"""Flow-conservation repair (the paper's R2 redundancy).

Section 4.1: "Formulating this as a dot product between the incidence
matrix M and v_partial, we can solve for up to |V| - 1 unknowns, the
rank of M, to recover missing/corrupted values."

We build exactly that system.  One conservation equation per router::

    sum(in-edges) + ext_in  =  sum(out-edges) + ext_out + dropped

Unknowns (flagged or missing values -- the "variables" in the paper's
flow vector) move to the left-hand side of ``A x = b``; knowns fold
into ``b``.  The least-squares solution gives candidate repairs, and an
SVD null-space test tells us *which* unknowns are uniquely determined
-- an unknown whose value can trade off against another along a null
direction is not recoverable and must stay unknown rather than be
"repaired" with an arbitrary minimum-norm guess.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "VarKey",
    "edge_var",
    "ext_in_var",
    "ext_out_var",
    "drop_var",
    "RepairResult",
    "ConservationSystem",
    "solve_flow_conservation",
]

#: Variable identifiers in the conservation system.
VarKey = Tuple[str, ...]


def edge_var(src: str, dst: str) -> VarKey:
    return ("edge", src, dst)


def ext_in_var(node: str) -> VarKey:
    return ("ext_in", node)


def ext_out_var(node: str) -> VarKey:
    return ("ext_out", node)


def drop_var(node: str) -> VarKey:
    return ("drop", node)


#: Null-space components smaller than this count as zero (an unknown is
#: uniquely determined when every null vector is ~zero at its index).
_NULLSPACE_TOL = 1e-8


@dataclass
class RepairResult:
    """Outcome of one conservation solve.

    Attributes:
        values: Solved value per unknown; ``None`` when the unknown is
            not uniquely determined by the system.
        residual: Relative residual of the least-squares solution
            (``||Ax - b|| / max(1, ||b||)``); a large residual means
            the *known* values already violate conservation, i.e. more
            corruption than the unknowns can explain.
        rank: Rank of the unknown-coefficient matrix.
        num_unknowns: How many unknowns the system had.
    """

    values: Dict[VarKey, Optional[float]] = field(default_factory=dict)
    residual: float = 0.0
    rank: int = 0
    num_unknowns: int = 0

    def solved(self) -> Dict[VarKey, float]:
        """Only the uniquely determined unknowns."""
        return {key: value for key, value in self.values.items() if value is not None}

    def is_consistent(self, tolerance: float) -> bool:
        return self.residual <= tolerance


#: Which value mapping each conservation variable reads from.
_FIELD_EDGE, _FIELD_EXT_IN, _FIELD_EXT_OUT, _FIELD_DROP = range(4)


@dataclass(frozen=True)
class ConservationSystem:
    """The topology-derived structure of the conservation system.

    Everything about ``A x = b`` that does not depend on this epoch's
    measured values: which variable touches which node equation with
    which coefficient.  Building it costs one pass over the topology;
    :meth:`solve` then only has to fold in per-epoch values, so an
    always-on caller (see :mod:`repro.engine.cache`) can reuse one
    system across every epoch on an unchanged topology.

    Attributes:
        nodes: Every router, one conservation equation each.
        edges: Every directed edge.
        entries: Per variable (in canonical order): its key, which
            mapping supplies its value (``_FIELD_*``), the lookup key
            into that mapping, and the ``(row, coefficient)`` pairs it
            contributes to.
    """

    nodes: Tuple[str, ...]
    edges: Tuple[Tuple[str, str], ...]
    entries: Tuple[Tuple[VarKey, int, Hashable, Tuple[Tuple[int, float], ...]], ...]

    @classmethod
    def build(
        cls, nodes: Sequence[str], edges: Sequence[Tuple[str, str]]
    ) -> "ConservationSystem":
        """Derive the system structure for one topology.

        One equation per router, written as
        ``sum(in) + ext_in - sum(out) - ext_out - drop = 0``.
        """
        node_index = {node: i for i, node in enumerate(nodes)}
        entries: List[Tuple[VarKey, int, Hashable, Tuple[Tuple[int, float], ...]]] = []
        for src, dst in edges:
            rows: List[Tuple[int, float]] = []
            if dst in node_index:
                rows.append((node_index[dst], 1.0))
            if src in node_index:
                rows.append((node_index[src], -1.0))
            entries.append((edge_var(src, dst), _FIELD_EDGE, (src, dst), tuple(rows)))
        for node in nodes:
            row = node_index[node]
            entries.append((ext_in_var(node), _FIELD_EXT_IN, node, ((row, 1.0),)))
            entries.append((ext_out_var(node), _FIELD_EXT_OUT, node, ((row, -1.0),)))
            entries.append((drop_var(node), _FIELD_DROP, node, ((row, -1.0),)))
        return cls(nodes=tuple(nodes), edges=tuple(tuple(e) for e in edges), entries=tuple(entries))

    def solve(
        self,
        edge_values: Mapping[Tuple[str, str], Optional[float]],
        ext_in: Mapping[str, Optional[float]],
        ext_out: Mapping[str, Optional[float]],
        drops: Mapping[str, Optional[float]],
    ) -> RepairResult:
        """Solve for all ``None`` values given this epoch's knowns."""
        mappings = (edge_values, ext_in, ext_out, drops)
        unknown_index: Dict[VarKey, int] = {}
        for key, field_id, lookup, _rows in self.entries:
            if mappings[field_id].get(lookup) is None:
                unknown_index[key] = len(unknown_index)

        num_equations = len(self.nodes)
        num_unknowns = len(unknown_index)
        matrix = np.zeros((num_equations, num_unknowns))
        rhs = np.zeros(num_equations)

        for key, field_id, lookup, rows in self.entries:
            value = mappings[field_id].get(lookup)
            if value is None:
                j = unknown_index[key]
                for row, coefficient in rows:
                    matrix[row, j] += coefficient
            else:
                for row, coefficient in rows:
                    rhs[row] -= coefficient * value

        scale = max(1.0, _system_scale(edge_values, ext_in, ext_out))
        if num_unknowns == 0:
            residual = float(np.linalg.norm(rhs)) / scale
            return RepairResult(values={}, residual=residual, rank=0, num_unknowns=0)

        solution, _residuals, rank, _singular = np.linalg.lstsq(matrix, rhs, rcond=None)
        fitted = matrix @ solution
        residual = float(np.linalg.norm(fitted - rhs)) / scale

        # Null-space analysis: which unknowns are uniquely determined?
        _u, singular, vt = np.linalg.svd(matrix)
        tol = max(matrix.shape) * (singular[0] if singular.size else 0.0) * np.finfo(float).eps
        effective_rank = int((singular > tol).sum()) if singular.size else 0
        null_vectors = vt[effective_rank:]

        values: Dict[VarKey, Optional[float]] = {}
        for key, j in unknown_index.items():
            if null_vectors.size and np.any(np.abs(null_vectors[:, j]) > _NULLSPACE_TOL):
                values[key] = None  # underdetermined
                continue
            value = float(solution[j])
            if -1e-6 < value < 0:
                value = 0.0
            values[key] = value

        return RepairResult(
            values=values, residual=residual, rank=effective_rank, num_unknowns=num_unknowns
        )


def solve_flow_conservation(
    nodes: Sequence[str],
    edges: Sequence[Tuple[str, str]],
    edge_values: Mapping[Tuple[str, str], Optional[float]],
    ext_in: Mapping[str, Optional[float]],
    ext_out: Mapping[str, Optional[float]],
    drops: Mapping[str, Optional[float]],
) -> RepairResult:
    """Solve the conservation system for all ``None`` values.

    One-shot convenience wrapper: builds the
    :class:`ConservationSystem` for this topology and solves it.
    Callers with a stable topology should build (or cache) the system
    once and call :meth:`ConservationSystem.solve` per epoch.

    Args:
        nodes: Every router (one equation each).
        edges: Every directed edge in the network.
        edge_values: Known hardened flow per directed edge, ``None``
            for unknowns.
        ext_in: Known external ingress per router, ``None`` unknown.
        ext_out: Known external egress per router, ``None`` unknown.
        drops: Known dropped rate per router, ``None`` unknown.

    Returns:
        A :class:`RepairResult`; values are clamped at zero when the
        solve lands a hair negative (rates cannot be negative), but
        meaningfully negative solutions are preserved so callers can
        flag the inconsistency.
    """
    return ConservationSystem.build(nodes, edges).solve(edge_values, ext_in, ext_out, drops)


def _system_scale(
    edge_values: Mapping[Tuple[str, str], Optional[float]],
    ext_in: Mapping[str, Optional[float]],
    ext_out: Mapping[str, Optional[float]],
) -> float:
    """Typical magnitude of the system, for relative residuals."""
    known = [
        value
        for mapping in (edge_values, ext_in, ext_out)
        for value in mapping.values()
        if value is not None
    ]
    return max(known) if known else 1.0
