"""Dynamic checking of the drain input (paper Section 4.3).

Drain is "semantically overloaded", and the paper identifies two
incorrect-drain shapes:

1. **Drain not marked when it should be** -- the router cannot actually
   carry traffic yet the controller's drain input says serving.  The
   Section 4.2 machinery covers the detectable part: such a router's
   links are down, not forwarding, or idle while its status stays up.
   We check the drain input against hardened link evidence.
2. **Drain marked when the router could still carry traffic** -- harder,
   because preemptive drains are legitimate.  The check degrades to a
   consistency comparison with the hardened drain reports plus a
   warning-level signal when a drained router demonstrably carries
   traffic.

The paper's standardization proposal -- all drains become link drains
with both ends required to agree -- is implemented as the symmetry
invariant over hardened link-drain verdicts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.control.inputs import DrainView
from repro.core.config import HodorConfig
from repro.core.drain_reasons import reason_requires_faulty_link
from repro.core.invariants import CheckResult, Invariant, InvariantResult, InvariantStatus
from repro.core.signals import DrainVerdict, HardenedState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.cache import TopologyCache

__all__ = ["DrainChecker"]


def _condition(name: str, description: str, holds: Optional[bool]) -> InvariantResult:
    invariant = Invariant(
        name=name,
        description=description,
        lhs=None if holds is None else 1.0,
        rhs=None if holds is None else (1.0 if holds else 0.0),
        tolerance=0.0,
    )
    if holds is None:
        return InvariantResult(invariant, InvariantStatus.SKIPPED, error=None)
    status = InvariantStatus.PASSED if holds else InvariantStatus.VIOLATED
    return InvariantResult(invariant, status, error=0.0 if holds else 1.0)


class DrainChecker:
    """Validates the controller's drain input against hardened signals.

    Args:
        config: Pipeline configuration.
        cache: Optional prebuilt topology cache; when the hardened link
            set matches the cached topology (the pipeline case), the
            per-router link lookups reuse the cache's incidence map
            instead of re-splitting every link name per router.
    """

    def __init__(
        self,
        config: Optional[HodorConfig] = None,
        cache: Optional["TopologyCache"] = None,
    ) -> None:
        self._config = config or HodorConfig()
        self._cache = cache

    def check(self, drains: DrainView, hardened: HardenedState) -> CheckResult:
        result = CheckResult(input_name="drain")
        node_links = self._node_link_index(hardened)
        self._check_nodes(drains, hardened, node_links, result)
        self._check_links(drains, hardened, result)
        return result

    # ------------------------------------------------------------------

    def _node_link_index(
        self, hardened: HardenedState
    ) -> Mapping[str, Sequence[str]]:
        """Router -> hardened link names touching it.

        Reuses the topology cache's incidence map when the hardened
        link set is exactly the cached topology's; otherwise builds the
        index once from the hardened links (still one pass, not one
        pass per router).
        """
        cache = self._cache
        if cache is not None and set(hardened.links) == set(cache.sorted_link_names):
            return cache.node_links
        index: Dict[str, List[str]] = {}
        for link_name in hardened.links:
            for endpoint in link_name.split("~"):
                index.setdefault(endpoint, []).append(link_name)
        return index

    def _check_nodes(
        self,
        drains: DrainView,
        hardened: HardenedState,
        node_links: Mapping[str, Sequence[str]],
        result: CheckResult,
    ) -> None:
        for node in sorted(hardened.node_drains):
            conditions, notes = self.check_node_entity(
                drains, hardened, node_links, node
            )
            result.results.extend(conditions)
            result.notes.extend(notes)

    def check_node_entity(
        self,
        drains: DrainView,
        hardened: HardenedState,
        node_links: Mapping[str, Sequence[str]],
        node: str,
    ) -> Tuple[Tuple[InvariantResult, ...], Tuple[str, ...]]:
        """Drain conditions for one router (per-entity unit).

        Depends on the router's believed drain bit, its hardened drain
        state, and the hardened status of every link touching it.
        """
        conditions: List[InvariantResult] = []
        notes: List[str] = []
        reported = hardened.node_drains[node]
        believed_drained = drains.is_node_drained(node)

        if reported.verdict == DrainVerdict.CONFLICTED:
            conditions.append(
                _condition(
                    f"drain/node-consistent/{node}",
                    f"{node}: hardened drain state conflicted; cannot decide",
                    holds=None,
                )
            )
            return tuple(conditions), tuple(notes)

        hardened_drained = reported.verdict == DrainVerdict.DRAINED
        conditions.append(
            _condition(
                f"drain/node-consistent/{node}",
                (
                    f"{node}: drain input says "
                    f"{'drained' if believed_drained else 'serving'}, hardened "
                    f"signals say {'drained' if hardened_drained else 'serving'}"
                ),
                holds=believed_drained == hardened_drained,
            )
        )

        # Case 1: input says serving, but the router's links cannot
        # actually carry traffic.
        if not believed_drained and not self._node_can_carry(
            node, hardened, node_links
        ):
            conditions.append(
                _condition(
                    f"drain/node-capable/{node}",
                    f"{node}: drain input says serving but no usable hardened "
                    "link touches it (should be drained)",
                    holds=False,
                )
            )

        # Case 2: input says drained yet traffic demonstrably flows.
        # Legitimate for fresh/preemptive drains, so warning-grade:
        # recorded as a note, not a violation.
        if believed_drained and reported.carrying_traffic:
            notes.append(
                f"{node}: drained in input but carrying traffic "
                "(legitimate if the drain is fresh or preemptive)"
            )

        # Section 4.3 reasons extension: a drain that *claims* a
        # faulty link must be corroborated by hardened link
        # evidence; a disproven reason exposes erroneous automation.
        if (
            hardened_drained
            and reported.reason is not None
            and reason_requires_faulty_link(reported.reason)
        ):
            conditions.append(
                _condition(
                    f"drain/reason-supported/{node}",
                    f"{node}: drain claims a faulty link; hardened evidence "
                    "must show a non-usable link at this router",
                    holds=self._has_faulty_link(node, hardened, node_links),
                )
            )
        return tuple(conditions), tuple(notes)

    @staticmethod
    def _has_faulty_link(
        node: str, hardened: HardenedState, node_links: Mapping[str, Sequence[str]]
    ) -> bool:
        """Does hardened evidence show a bad link at this router?"""
        return any(
            not hardened.links[name].usable for name in node_links.get(node, ())
        )

    @staticmethod
    def _node_can_carry(
        node: str, hardened: HardenedState, node_links: Mapping[str, Sequence[str]]
    ) -> bool:
        """Any usable hardened link touching this router?"""
        names = node_links.get(node, ())
        # A router hardening knows nothing about gets the benefit of
        # the doubt.
        if not names:
            return True
        return any(hardened.links[name].usable for name in names)

    # ------------------------------------------------------------------

    def _check_links(
        self, drains: DrainView, hardened: HardenedState, result: CheckResult
    ) -> None:
        for link_name in sorted(hardened.link_drains):
            result.results.extend(self.check_link_entity(drains, hardened, link_name))

    def check_link_entity(
        self, drains: DrainView, hardened: HardenedState, link_name: str
    ) -> Tuple[InvariantResult, ...]:
        """Drain conditions for one link (per-entity unit).

        Depends only on the link's believed drain bit and its hardened
        link-drain verdict.
        """
        reported = hardened.link_drains[link_name]
        believed_drained = drains.is_link_drained(link_name)

        # The Section 4.3 symmetry proposal: both sides must agree.
        symmetric = _condition(
            f"drain/link-symmetric/{link_name}",
            f"{link_name}: link-drain bits must agree at both endpoints",
            holds=reported.verdict != DrainVerdict.CONFLICTED,
        )
        if reported.verdict == DrainVerdict.CONFLICTED:
            return (symmetric,)

        hardened_drained = reported.verdict == DrainVerdict.DRAINED
        consistent = _condition(
            f"drain/link-consistent/{link_name}",
            (
                f"{link_name}: drain input says "
                f"{'drained' if believed_drained else 'serving'}, hardened "
                f"reports say {'drained' if hardened_drained else 'serving'}"
            ),
            holds=believed_drained == hardened_drained,
        )
        return (symmetric, consistent)
