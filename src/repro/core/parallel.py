"""The slice-parallel protocol the pipeline stages speak.

Per-signal pipeline stages (counter collection, R1 symmetry hardening,
the per-router demand invariants) are written as *slice workers*: pure
functions over a contiguous sub-sequence of their items that return
that slice's values plus the findings it produced.  A stage runs its
worker either once over the full sequence (the serial reference path)
or once per shard through an object implementing
``map_slices(worker, items)`` -- see
:class:`repro.engine.sharding.ShardMap` -- and merges the per-slice
results in slice order.  Because the worker code is shared and slices
are contiguous and ordered, both paths produce identical output,
including finding order; the differential harness in ``tests/engine``
enforces exactly that.

Core deliberately depends only on this duck-typed protocol, not on the
engine package, so the serial pipeline carries no engine imports.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, TypeVar

__all__ = ["SliceParallel", "map_slices"]

_Item = TypeVar("_Item")
_Result = TypeVar("_Result")

#: Anything with ``map_slices(worker, items) -> list of per-slice
#: results in slice order``; ``None`` means run inline.
SliceParallel = Optional[object]


def map_slices(
    parallel: SliceParallel,
    worker: Callable[[Sequence[_Item]], _Result],
    items: Sequence[_Item],
) -> List[_Result]:
    """Apply ``worker`` over ``items``, inline or via ``parallel``."""
    if parallel is None:
        return [worker(items)]
    return parallel.map_slices(worker, items)  # type: ignore[attr-defined]
