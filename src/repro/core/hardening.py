"""Hodor step 2: hardening input signals.

Implements the paper's detect-and-repair process over a collected
snapshot:

1. **Detect (R1, link symmetry).** For each traffic direction of each
   link there are two independent measurements -- the transmitter's tx
   counter and the receiver's rx counter.  Pairs that are missing or
   differ by more than the hardening threshold tau_h are "deemed
   spurious and replaced with an unknown variable"; agreeing pairs are
   averaged, "producing a flow vector containing constants and
   variables for traffic volume on each link."
2. **Repair (R2, flow conservation).** The unknown variables are solved
   through the incidence-matrix conservation system
   (:mod:`repro.core.flow_repair`).  When a flagged pair is repaired,
   comparing the repaired value against the two original reports also
   identifies *which* endpoint lied (the paper's arbitration step).
3. **Link status (R1 + R3 + R4).** Status reports from both ends are
   cross-checked against counter activity and active probes through the
   Section 4.2 truth table (:mod:`repro.core.link_status`).
4. **Drain (R1 analogue).** Link drains must agree at both ends
   (Section 4.3's proposed symmetry); node drains are annotated with
   whether the router demonstrably carries traffic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.config import HodorConfig
from repro.core.drain_reasons import reason_allows_traffic
from repro.core.flow_repair import ConservationSolveCache
from repro.core.link_status import LinkEvidence, combine_link_evidence
from repro.core.parallel import SliceParallel, map_slices
from repro.core.signals import (
    CollectedState,
    Confidence,
    DrainVerdict,
    Finding,
    FindingSeverity,
    HardenedDrain,
    HardenedState,
    HardenedValue,
    LinkVerdict,
)
from repro.net.topology import EXTERNAL_PEER, Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.cache import TopologyCache

__all__ = ["Hardener"]


def _relative_gap(a: float, b: float, floor: float) -> float:
    """Relative disagreement between two measurements of one quantity."""
    magnitude = max(abs(a), abs(b))
    if magnitude <= floor:
        return 0.0
    return abs(a - b) / magnitude


class Hardener:
    """Hodor's hardening step.

    The topology-derived structures hardening needs every pass (the
    directed-edge order, per-router incidence lists, the conservation
    equation blocks) live in a
    :class:`~repro.engine.cache.TopologyCache` built once per
    ``Hardener`` -- or shared across validators by passing a memoized
    cache in, which is how the always-on engine skips all topology
    setup on repeat epochs.

    Args:
        reference: The design-time network model; hardening needs the
            link structure to know which interfaces pair up.
        config: Thresholds and truth-table profile.
        cache: Prebuilt topology cache for ``reference``; built on the
            spot when omitted.
    """

    def __init__(
        self,
        reference: Topology,
        config: Optional[HodorConfig] = None,
        cache: Optional["TopologyCache"] = None,
    ) -> None:
        self._reference = reference
        self._config = config or HodorConfig()
        if cache is None:
            from repro.engine.cache import TopologyCache

            cache = TopologyCache.from_topology(reference)
        self._cache = cache

    def harden(
        self, collected: CollectedState, parallel: SliceParallel = None
    ) -> HardenedState:
        """Produce the trusted low-level view of the network.

        Args:
            collected: Step-1 output for this epoch.
            parallel: Optional slice-parallel executor (see
                :mod:`repro.core.parallel`); ``None`` runs the serial
                reference path.
        """
        state = HardenedState()
        state.findings.extend(collected.findings)
        self._harden_flows(collected, state, parallel)
        self.repair_flows(collected, state)
        self._harden_link_status(collected, state)
        self._harden_drains(collected, state)
        self._harden_link_drains(collected, state)
        return state

    # ------------------------------------------------------------------
    # Step 2a: R1 detection over counters
    # ------------------------------------------------------------------

    def _harden_flows(
        self,
        collected: CollectedState,
        state: HardenedState,
        parallel: SliceParallel = None,
    ) -> None:
        for flows, findings in map_slices(
            parallel,
            lambda edges: self.harden_flow_slice(collected, edges),
            self._cache.directed_edges,
        ):
            state.edge_flows.update(flows)
            state.findings.extend(findings)

        for ext_in, ext_out, drops, findings in map_slices(
            parallel,
            lambda nodes: self.harden_external_slice(collected, nodes),
            self._cache.nodes,
        ):
            state.ext_in.update(ext_in)
            state.ext_out.update(ext_out)
            state.drops.update(drops)
            state.findings.extend(findings)

    def harden_flow_slice(
        self, collected: CollectedState, edges: Sequence[Tuple[str, str]]
    ) -> Tuple[Dict[Tuple[str, str], HardenedValue], List[Finding]]:
        """R1 symmetry over one contiguous slice of directed edges.

        The slice worker behind :meth:`harden`; the serial path calls
        it once with every edge, the engine once per shard.
        """
        findings: List[Finding] = []
        flows: Dict[Tuple[str, str], HardenedValue] = {}
        for src, dst in edges:
            flow, flow_findings = self.harden_edge_entity(collected, src, dst)
            flows[(src, dst)] = flow
            findings.extend(flow_findings)
        return flows, findings

    def harden_edge_entity(
        self, collected: CollectedState, src: str, dst: str
    ) -> Tuple[HardenedValue, Tuple[Finding, ...]]:
        """R1 symmetry for one directed edge (pure per-entity unit).

        Reads only the two interface counters measuring this edge, so
        the incremental engine reuses its output whenever neither
        counter changed.
        """
        findings: List[Finding] = []
        tx_side = collected.counter(src, dst)
        rx_side = collected.counter(dst, src)
        tx = tx_side.tx if tx_side else None
        rx = rx_side.rx if rx_side else None
        return self._symmetry_check(src, dst, tx, rx, findings), tuple(findings)

    def harden_external_slice(
        self, collected: CollectedState, nodes: Sequence[str]
    ) -> Tuple[
        Dict[str, HardenedValue],
        Dict[str, HardenedValue],
        Dict[str, HardenedValue],
        List[Finding],
    ]:
        """External counters and drops for one slice of routers."""
        findings: List[Finding] = []
        ext_in: Dict[str, HardenedValue] = {}
        ext_out: Dict[str, HardenedValue] = {}
        drops: Dict[str, HardenedValue] = {}
        for node in nodes:
            node_in, node_out, node_drop, node_findings = self.harden_external_entity(
                collected, node
            )
            ext_in[node] = node_in
            ext_out[node] = node_out
            drops[node] = node_drop
            findings.extend(node_findings)
        return ext_in, ext_out, drops, findings

    def harden_external_entity(
        self, collected: CollectedState, node: str
    ) -> Tuple[HardenedValue, HardenedValue, HardenedValue, Tuple[Finding, ...]]:
        """External counters and drops for one router (per-entity unit).

        Reads only the router's external-interface counter and its drop
        counter.
        """
        external = collected.counter(node, EXTERNAL_PEER)
        ext_in = self._single_source(
            external.rx if external else None, f"{node}:ext rx"
        )
        ext_out = self._single_source(
            external.tx if external else None, f"{node}:ext tx"
        )
        drop = self._single_source(collected.drops.get(node), f"{node} drops")
        findings: Tuple[Finding, ...] = ()
        if external is None:
            findings = (
                Finding(
                    code="MISSING_EXTERNAL_COUNTERS",
                    severity=FindingSeverity.WARNING,
                    subject=node,
                    detail="no external interface reading; left unknown",
                ),
            )
        return ext_in, ext_out, drop, findings

    def _symmetry_check(
        self,
        src: str,
        dst: str,
        tx: Optional[float],
        rx: Optional[float],
        findings: List[Finding],
    ) -> HardenedValue:
        subject = f"{src}->{dst}"
        if tx is None and rx is None:
            findings.append(
                Finding(
                    code="R1_BOTH_MISSING",
                    severity=FindingSeverity.WARNING,
                    subject=subject,
                    detail="no measurement from either end",
                    redundancy="R1",
                )
            )
            return HardenedValue(None, Confidence.UNKNOWN, "no measurements")
        if tx is None or rx is None:
            findings.append(
                Finding(
                    code="R1_ONE_MISSING",
                    severity=FindingSeverity.WARNING,
                    subject=subject,
                    detail="only one end reported; flagged for repair",
                    redundancy="R1",
                )
            )
            return HardenedValue(None, Confidence.UNKNOWN, "one measurement missing")

        gap = _relative_gap(tx, rx, self._config.rate_floor)
        if gap > self._config.tau_h:
            findings.append(
                Finding(
                    code="R1_COUNTER_MISMATCH",
                    severity=FindingSeverity.WARNING,
                    subject=subject,
                    detail=(
                        f"tx@{src}={tx:.6g} vs rx@{dst}={rx:.6g} "
                        f"differ by {gap:.1%} (> tau_h={self._config.tau_h:.1%})"
                    ),
                    redundancy="R1",
                )
            )
            return HardenedValue(None, Confidence.UNKNOWN, "R1 mismatch")
        return HardenedValue((tx + rx) / 2.0, Confidence.CORROBORATED, "avg of both ends")

    def _single_source(self, value: Optional[float], source: str) -> HardenedValue:
        if value is None:
            return HardenedValue(None, Confidence.UNKNOWN, f"{source}: missing")
        return HardenedValue(value, Confidence.REPORTED, source)

    # ------------------------------------------------------------------
    # Step 2b: R2 repair through flow conservation
    # ------------------------------------------------------------------

    def repair_flows(
        self,
        collected: CollectedState,
        state: HardenedState,
        solver_cache: Optional["ConservationSolveCache"] = None,
    ) -> Tuple[Tuple[str, ...], ...]:
        """Solve the conservation system and apply repairs in place.

        Args:
            collected: Step-1 output (needed for R2 arbitration).
            state: Hardened state with the R1 flow vector already
                assembled; repaired values are written back into it.
            solver_cache: Optional
                :class:`~repro.core.flow_repair.ConservationSolveCache`
                memoizing per-component solves across epochs (hits are
                bitwise-identical, so sharing one across epochs never
                changes output).

        Returns:
            The :data:`~repro.core.flow_repair.VarKey` of every unknown
            a repaired value was actually written for, in emission
            order -- the incremental engine's dirty-propagation seed.
        """
        if not self._config.enable_repair:
            return ()
        if not (
            any(hv.value is None for hv in state.edge_flows.values())
            or any(hv.value is None for hv in state.ext_in.values())
            or any(hv.value is None for hv in state.ext_out.values())
            or any(hv.value is None for hv in state.drops.values())
        ):
            return ()  # nothing to repair
        nodes = self._cache.nodes
        edges = self._cache.directed_edges
        edge_values = {e: state.edge_flows[e].value for e in edges}
        ext_in = {n: state.ext_in[n].value for n in nodes}
        ext_out = {n: state.ext_out[n].value for n in nodes}
        drops = {n: state.drops[n].value for n in nodes}

        result = self._cache.conservation.solve(
            edge_values, ext_in, ext_out, drops, cache=solver_cache
        )

        if not result.is_consistent(self._config.repair_residual_tol):
            # In-place repair IS repair_flows()'s documented contract:
            # it upgrades `state` and reports what it wrote.  The
            # incremental engine accounts for this by re-running repair
            # whenever any of its inputs is dirty (never reusing a
            # mutated state across epochs).
            state.findings.append(  # lint: ignore[P1]
                Finding(
                    code="R2_INCONSISTENT",
                    severity=FindingSeverity.CRITICAL,
                    subject="network",
                    detail=(
                        f"flow conservation residual {result.residual:.3g} exceeds "
                        f"tolerance; corruption is not isolated, repairs withheld"
                    ),
                    redundancy="R2",
                )
            )
            return ()

        repaired: List[Tuple[str, ...]] = []
        for key, value in result.values.items():
            if self._apply_repair(collected, state, key, value):
                repaired.append(key)
        return tuple(repaired)

    def _apply_repair(
        self,
        collected: CollectedState,
        state: HardenedState,
        key: Tuple[str, ...],
        value: Optional[float],
    ) -> bool:
        """Apply one solved unknown; True when a value was written."""
        kind = key[0]
        subject = "->".join(key[1:]) if kind == "edge" else key[1]
        if value is None:
            state.findings.append(
                Finding(
                    code="R2_UNDERDETERMINED",
                    severity=FindingSeverity.WARNING,
                    subject=subject,
                    detail=f"{kind} value not uniquely recoverable; stays unknown",
                    redundancy="R2",
                )
            )
            return False
        if value < -self._config.rate_floor:
            state.findings.append(
                Finding(
                    code="R2_NEGATIVE_SOLUTION",
                    severity=FindingSeverity.CRITICAL,
                    subject=subject,
                    detail=f"conservation solve produced negative rate {value:.6g}",
                    redundancy="R2",
                )
            )
            return False

        repaired = HardenedValue(
            max(0.0, value), Confidence.REPAIRED, "flow conservation"
        )
        if kind == "edge":
            src, dst = key[1], key[2]
            state.edge_flows[(src, dst)] = repaired
            state.findings.append(
                Finding(
                    code="R2_REPAIRED",
                    severity=FindingSeverity.INFO,
                    subject=f"{src}->{dst}",
                    detail=f"flow repaired to {repaired.value:.6g} via conservation",
                    redundancy="R2",
                )
            )
            self._arbitrate(collected, state, src, dst, repaired.value)
        elif kind == "ext_in":
            state.ext_in[key[1]] = repaired
        elif kind == "ext_out":
            state.ext_out[key[1]] = repaired
        elif kind == "drop":
            state.drops[key[1]] = repaired
        return True

    def _arbitrate(
        self,
        collected: CollectedState,
        state: HardenedState,
        src: str,
        dst: str,
        repaired: Optional[float],
    ) -> None:
        """Name the endpoint whose counter disagrees with the repair."""
        if repaired is None:
            return
        tx_side = collected.counter(src, dst)
        rx_side = collected.counter(dst, src)
        reports = {
            f"tx@{src}->{dst}": tx_side.tx if tx_side else None,
            f"rx@{dst}->{src}": rx_side.rx if rx_side else None,
        }
        for label, report in reports.items():
            if report is None:
                continue
            gap = _relative_gap(report, repaired, self._config.rate_floor)
            if gap > self._config.tau_h:
                state.findings.append(
                    Finding(
                        code="R2_CULPRIT",
                        severity=FindingSeverity.WARNING,
                        subject=label,
                        detail=(
                            f"reported {report:.6g} but conservation implies "
                            f"{repaired:.6g}; this counter is most likely incorrect"
                        ),
                        redundancy="R2",
                    )
                )

    # ------------------------------------------------------------------
    # Step 2c: link-status truth table (R1 + R3 + R4)
    # ------------------------------------------------------------------

    def _harden_link_status(self, collected: CollectedState, state: HardenedState) -> None:
        for link in self._cache.links:
            hardened, findings = self.harden_link_status_entity(collected, link)
            state.links[link.name] = hardened
            state.findings.extend(findings)

    def harden_link_status_entity(
        self, collected: CollectedState, link
    ) -> Tuple[HardenedLinkStatus, Tuple[Finding, ...]]:
        """Truth-table verdict for one link (pure per-entity unit).

        Reads only the link's two status reports, two counters, and two
        probes.
        """
        a, b = link.a, link.b
        status_ab = collected.statuses.get((a, b))
        status_ba = collected.statuses.get((b, a))
        counter_ab = collected.counter(a, b)
        counter_ba = collected.counter(b, a)
        rates: Tuple[Optional[float], ...] = tuple(
            value
            for counter in (counter_ab, counter_ba)
            if counter is not None
            for value in (counter.rx, counter.tx)
        )
        evidence = LinkEvidence(
            status_a=status_ab.oper_up if status_ab else None,
            status_b=status_ba.oper_up if status_ba else None,
            rates=rates,
            probe_ab=collected.probes.get((a, b)),
            probe_ba=collected.probes.get((b, a)),
        )
        hardened = combine_link_evidence(evidence, self._config)

        findings: List[Finding] = []
        if evidence.status_consensus() == "conflict":
            findings.append(
                Finding(
                    code="R1_STATUS_MISMATCH",
                    severity=FindingSeverity.WARNING,
                    subject=link.name,
                    detail="endpoints disagree on oper-status",
                    redundancy="R1",
                )
            )
        if hardened.verdict == LinkVerdict.SUSPECT:
            findings.append(
                Finding(
                    code="LINK_SUSPECT",
                    severity=FindingSeverity.WARNING,
                    subject=link.name,
                    detail=f"evidence unresolved: {', '.join(hardened.evidence)}",
                    redundancy="R3",
                )
            )
        if hardened.verdict == LinkVerdict.UP and hardened.forwarding is False:
            findings.append(
                Finding(
                    code="SEMANTIC_LINK_FAILURE",
                    severity=FindingSeverity.CRITICAL,
                    subject=link.name,
                    detail="status up but dataplane does not forward",
                    redundancy="R4",
                )
            )
        return hardened, tuple(findings)

    # ------------------------------------------------------------------
    # Step 2d: drain hardening
    # ------------------------------------------------------------------

    def _harden_drains(self, collected: CollectedState, state: HardenedState) -> None:
        for node in self._cache.nodes:
            hardened, findings = self.harden_node_drain_entity(collected, node, state)
            state.findings.extend(findings)
            state.node_drains[node] = hardened

    def harden_node_drain_entity(
        self, collected: CollectedState, node: str, state: HardenedState
    ) -> Tuple[HardenedDrain, Tuple[Finding, ...]]:
        """Drain verdict for one router (per-entity unit).

        Reads the router's drain bit and reason plus the *post-repair*
        flow vector around it (``state.edge_flows``/``ext_in``/
        ``ext_out``), so a repaired edge dirties both its endpoints.
        """
        findings: List[Finding] = []
        reported = collected.drains.get(node)
        reason = collected.drain_reasons.get(node)
        carrying = self._node_carries_traffic(node, state)
        if reported is None:
            verdict = DrainVerdict.CONFLICTED
            findings.append(
                Finding(
                    code="DRAIN_MISSING",
                    severity=FindingSeverity.WARNING,
                    subject=node,
                    detail="no usable drain report",
                )
            )
        else:
            verdict = DrainVerdict.DRAINED if reported else DrainVerdict.SERVING
            if reported and carrying:
                findings.append(self._drained_but_carrying_finding(node, reason))
        evidence = []
        if carrying is not None:
            evidence.append("traffic:active" if carrying else "traffic:idle")
        if reason is not None:
            evidence.append(f"reason:{reason.value}")
        hardened = HardenedDrain(
            verdict=verdict,
            carrying_traffic=carrying,
            reason=reason,
            evidence=tuple(evidence),
        )
        return hardened, tuple(findings)

    @staticmethod
    def _drained_but_carrying_finding(node, reason) -> Finding:
        """The paper's "case 2": drained yet demonstrably carrying.

        Without a reason (or with one that does not explain traffic)
        this is warning-grade -- possibly an erroneous drain, possibly
        a fresh one; an SRE should look.  A declared maintenance or
        incident drain legitimately overlaps with traffic draining
        away, so the finding degrades to informational -- the Section
        4.3 reasons proposal eliminating the acknowledged false
        positive.
        """
        explained = reason is not None and reason_allows_traffic(reason)
        return Finding(
            code="DRAINED_BUT_CARRYING",
            severity=FindingSeverity.INFO if explained else FindingSeverity.WARNING,
            subject=node,
            detail=(
                "reports drained yet demonstrably carries traffic; "
                + (
                    f"expected while a {reason.value} drain settles"
                    if explained
                    else "consistent with a fresh or erroneous drain"
                )
            ),
            redundancy="R3",
        )

    def _harden_link_drains(self, collected: CollectedState, state: HardenedState) -> None:
        for link in self._cache.links:
            hardened, findings = self.harden_link_drain_entity(collected, link)
            state.findings.extend(findings)
            state.link_drains[link.name] = hardened

    def harden_link_drain_entity(
        self, collected: CollectedState, link
    ) -> Tuple[HardenedDrain, Tuple[Finding, ...]]:
        """Link-drain symmetry for one link (pure per-entity unit)."""
        bits = [
            collected.link_drains.get((link.a, link.b)),
            collected.link_drains.get((link.b, link.a)),
        ]
        known = [bit for bit in bits if bit is not None]
        findings: Tuple[Finding, ...] = ()
        if known and all(known) and len(known) == 2:
            verdict = DrainVerdict.DRAINED
        elif known and not any(known):
            verdict = DrainVerdict.SERVING
        else:
            verdict = DrainVerdict.CONFLICTED
            findings = (
                Finding(
                    code="R1_DRAIN_MISMATCH",
                    severity=FindingSeverity.WARNING,
                    subject=link.name,
                    detail=f"link-drain bits disagree across endpoints: {bits}",
                    redundancy="R1",
                ),
            )
        return HardenedDrain(verdict=verdict), findings

    def _node_carries_traffic(self, node: str, state: HardenedState) -> Optional[bool]:
        """Does the hardened flow vector show traffic at this router?"""
        rates = []
        for edge in self._cache.node_edges.get(node, ()):
            hardened = state.edge_flows.get(edge)
            if hardened is not None and hardened.known:
                rates.append(hardened.value)
        for mapping in (state.ext_in, state.ext_out):
            hardened = mapping.get(node)
            if hardened is not None and hardened.known:
                rates.append(hardened.value)
        if not rates:
            return None
        return any(rate > self._config.active_threshold for rate in rates)
