"""Invariant machinery for dynamic checking.

Step 3 of the paper generates input-specific invariants that relate
controller inputs to the hardened network state.  This module provides
the shared shape: an :class:`Invariant` is a named approximate-equality
(or expected-condition) over hardened values, and an
:class:`InvariantResult` records how it evaluated.  Checkers in
:mod:`repro.core.demand_check` and friends produce lists of these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

__all__ = ["InvariantStatus", "Invariant", "InvariantResult", "CheckResult", "relative_error"]


def relative_error(lhs: float, rhs: float, floor: float = 1e-6) -> float:
    """Relative disagreement between two quantities, floor-protected."""
    magnitude = max(abs(lhs), abs(rhs))
    if magnitude <= floor:
        return 0.0
    return abs(lhs - rhs) / magnitude


class InvariantStatus(Enum):
    """How one invariant evaluated."""

    PASSED = "passed"
    VIOLATED = "violated"
    #: Could not be evaluated (a hardened operand is unknown).
    SKIPPED = "skipped"


@dataclass(frozen=True)
class Invariant:
    """One dynamically generated check.

    Attributes:
        name: Stable identifier, e.g. ``"demand/row-sum/atla"``.
        description: Human-readable equation.
        lhs: Input-side quantity.
        rhs: Hardened-signal-side quantity.
        tolerance: Accepted relative error (tau_e).
    """

    name: str
    description: str
    lhs: Optional[float]
    rhs: Optional[float]
    tolerance: float

    def evaluate(self, floor: float = 1e-6) -> "InvariantResult":
        """Evaluate to a result; unknown operands yield SKIPPED."""
        if self.lhs is None or self.rhs is None:
            return InvariantResult(self, InvariantStatus.SKIPPED, error=None)
        error = relative_error(self.lhs, self.rhs, floor)
        status = (
            InvariantStatus.PASSED if error <= self.tolerance else InvariantStatus.VIOLATED
        )
        return InvariantResult(self, status, error=error)


@dataclass(frozen=True)
class InvariantResult:
    """Evaluation outcome of one invariant."""

    invariant: Invariant
    status: InvariantStatus
    error: Optional[float]

    @property
    def violated(self) -> bool:
        return self.status == InvariantStatus.VIOLATED

    def describe(self) -> str:
        error = "n/a" if self.error is None else f"{self.error:.2%}"
        return f"[{self.status.value}] {self.invariant.name}: {self.invariant.description} (err={error})"


@dataclass
class CheckResult:
    """Outcome of dynamically checking one controller input.

    Attributes:
        input_name: ``"demand"``, ``"topology"``, or ``"drain"``.
        results: Every invariant evaluated.
        notes: Free-form context (e.g. why invariants were skipped).
    """

    input_name: str
    results: List[InvariantResult] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def violations(self) -> List[InvariantResult]:
        return [r for r in self.results if r.violated]

    @property
    def passed(self) -> bool:
        """True when no invariant was violated."""
        return not self.violations

    @property
    def num_evaluated(self) -> int:
        return sum(1 for r in self.results if r.status != InvariantStatus.SKIPPED)

    @property
    def num_skipped(self) -> int:
        return sum(1 for r in self.results if r.status == InvariantStatus.SKIPPED)

    def summary(self) -> str:
        return (
            f"{self.input_name}: {len(self.violations)} violated / "
            f"{self.num_evaluated} evaluated ({self.num_skipped} skipped)"
        )
