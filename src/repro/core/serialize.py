"""JSON-friendly serialization of validation artifacts.

Production validators feed alerting and management tooling (paper
Section 3.2: "integrated ... into alerting and management tools"), so
every report object serializes to plain dicts of JSON-safe scalars.
The functions here are lossless for everything tooling needs --
verdicts, violations, findings, hardened-value provenance -- while
omitting bulky internals (the full hardened flow vector is opt-in).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.control.metrics import HealthReport
from repro.core.invariants import CheckResult, InvariantResult
from repro.core.report import ValidationReport
from repro.core.signals import Finding, HardenedState, HardenedValue

__all__ = [
    "finding_to_dict",
    "invariant_result_to_dict",
    "check_result_to_dict",
    "hardened_state_to_dict",
    "validation_report_to_dict",
    "health_report_to_dict",
]


def finding_to_dict(finding: Finding) -> Dict[str, Any]:
    return {
        "code": finding.code,
        "severity": finding.severity.value,
        "subject": finding.subject,
        "detail": finding.detail,
        "redundancy": finding.redundancy,
    }


def invariant_result_to_dict(result: InvariantResult) -> Dict[str, Any]:
    return {
        "name": result.invariant.name,
        "description": result.invariant.description,
        "status": result.status.value,
        "error": result.error,
        "tolerance": result.invariant.tolerance,
        "lhs": result.invariant.lhs,
        "rhs": result.invariant.rhs,
    }


def check_result_to_dict(check: CheckResult, include_passed: bool = False) -> Dict[str, Any]:
    """One input's check outcome.

    Args:
        check: The check to serialize.
        include_passed: Also include passed/skipped invariants (the
            default keeps payloads alert-sized: violations only).
    """
    results = check.results if include_passed else check.violations
    return {
        "input": check.input_name,
        "passed": check.passed,
        "num_evaluated": check.num_evaluated,
        "num_skipped": check.num_skipped,
        "violations": [invariant_result_to_dict(r) for r in check.violations],
        "results": [invariant_result_to_dict(r) for r in results] if include_passed else None,
        "notes": list(check.notes),
    }


def _hardened_value_to_dict(value: HardenedValue) -> Dict[str, Any]:
    return {
        "value": value.value,
        "confidence": value.confidence.value,
        "source": value.source,
    }


def hardened_state_to_dict(state: HardenedState, include_values: bool = False) -> Dict[str, Any]:
    """Hardening outcome: findings always, the flow vector opt-in."""
    payload: Dict[str, Any] = {
        "findings": [finding_to_dict(f) for f in state.findings],
        "num_unknown_edges": len(state.unknown_edges()),
        "num_repaired_edges": len(state.repaired_edges()),
        "links": {
            name: {
                "verdict": status.verdict.value,
                "forwarding": status.forwarding,
                "usable": status.usable,
                "evidence": list(status.evidence),
            }
            for name, status in state.links.items()
        },
    }
    if include_values:
        payload["edge_flows"] = {
            f"{src}->{dst}": _hardened_value_to_dict(value)
            for (src, dst), value in state.edge_flows.items()
        }
        payload["ext_in"] = {
            node: _hardened_value_to_dict(value) for node, value in state.ext_in.items()
        }
        payload["ext_out"] = {
            node: _hardened_value_to_dict(value) for node, value in state.ext_out.items()
        }
    return payload


def validation_report_to_dict(
    report: ValidationReport, include_values: bool = False
) -> Dict[str, Any]:
    """The full alert payload for one validation pass."""
    return {
        "timestamp": report.timestamp,
        "all_valid": report.all_valid,
        "invalid_inputs": report.invalid_inputs(),
        "verdicts": {
            name: {
                "valid": verdict.valid,
                "violations": verdict.num_violations,
                "evaluated": verdict.num_evaluated,
            }
            for name, verdict in report.verdicts.items()
        },
        "checks": {
            name: check_result_to_dict(check) for name, check in report.checks.items()
        },
        "hardening": hardened_state_to_dict(report.hardened, include_values=include_values),
    }


def health_report_to_dict(health: HealthReport) -> Dict[str, Any]:
    return {
        "severity": health.severity.value,
        "mlu": health.mlu,
        "loss_rate": health.loss_rate,
        "delivered_fraction": health.delivered_fraction,
        "congested_links": [f"{u}->{v}" for u, v in health.congested_links],
    }
