"""Drain reasons: the Section 4.3 standardization proposal.

The paper's future-work direction for making drain validatable:
"One approach may be to attach reasons to drain labels, which can then
be used to validate the drain.  For example, a drain due to faulty
neighbor connectivity can be validated by Hodor by checking the
supposedly affected connection causing the drain."

This module implements that proposal as an optional extension:

- routers report a :class:`DrainReason` next to their drain bit,
- the drain checker knows how to corroborate each reason against the
  hardened network state (:func:`reason_expectations`),
- reasons that *predict observable evidence* (a faulty link) are
  checked against that evidence, and disproven reasons become
  violations -- which is exactly how an erroneous automation drain
  that *claims* a faulty link gets caught,
- reasons that legitimately coexist with flowing traffic (fresh
  maintenance or disaster drains) suppress the "drained but carrying"
  false positive the paper acknowledges for its case 2.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

__all__ = ["DrainReason", "parse_reason", "reason_allows_traffic", "reason_requires_faulty_link"]


class DrainReason(str, Enum):
    """Why a router says it is drained."""

    #: Planned maintenance; traffic may still be draining away.
    MAINTENANCE = "maintenance"
    #: Automation drained it because an attached link is faulty.
    FAULTY_LINK = "faulty-link"
    #: Manual drain during an incident/disaster.
    INCIDENT = "incident"
    #: Drain reported without a reason (legacy behaviour).
    UNSPECIFIED = "unspecified"


def parse_reason(raw: object) -> Optional[DrainReason]:
    """Interpret a raw drain-reason value.

    Returns ``None`` for values that are present but not interpretable
    (callers flag those); missing (``None``/empty) values parse to
    :attr:`DrainReason.UNSPECIFIED`.
    """
    if raw is None or raw == "":
        return DrainReason.UNSPECIFIED
    if isinstance(raw, DrainReason):
        return raw
    if isinstance(raw, str):
        lowered = raw.strip().lower()
        for reason in DrainReason:
            if lowered == reason.value:
                return reason
        return None
    return None


def reason_allows_traffic(reason: DrainReason) -> bool:
    """May a router drained for this reason still carry traffic?

    Fresh maintenance and incident drains legitimately overlap with
    traffic still moving off the router; a faulty-link drain claims the
    router *cannot* serve properly, and an unspecified drain gives no
    cover (it keeps today's warning behaviour).
    """
    return reason in (DrainReason.MAINTENANCE, DrainReason.INCIDENT)


def reason_requires_faulty_link(reason: DrainReason) -> bool:
    """Does this reason predict observable link evidence?

    A ``faulty-link`` drain is only justified if hardening actually
    sees a non-usable or suspect link at the router; otherwise the
    claimed reason is disproven.
    """
    return reason == DrainReason.FAULTY_LINK
