"""Hodor: the paper's three-step input-validation approach.

Public surface:

- :class:`Hodor` -- the pipeline (collect, harden, dynamically check).
- :class:`HodorConfig` / :class:`RiskProfile` -- tunables.
- Policies (:class:`AlertOnlyPolicy`, :class:`RejectAndFallbackPolicy`).
- The step outputs (:class:`CollectedState`, :class:`HardenedState`,
  :class:`ValidationReport`) and their supporting types.
- Lower-level building blocks for studies: the hardener, the three
  checkers, the flow-conservation solver, and the link-status truth
  table.
"""

from repro.core.calibration import CalibrationResult, calibrate_tau_h
from repro.core.collection import SignalCollector
from repro.core.config import HodorConfig, RiskProfile
from repro.core.demand_check import DemandChecker
from repro.core.drain_check import DrainChecker
from repro.core.drain_reasons import (
    DrainReason,
    parse_reason,
    reason_allows_traffic,
    reason_requires_faulty_link,
)
from repro.core.flow_repair import (
    RepairResult,
    drop_var,
    edge_var,
    ext_in_var,
    ext_out_var,
    solve_flow_conservation,
)
from repro.core.hardening import Hardener
from repro.core.invariants import (
    CheckResult,
    Invariant,
    InvariantResult,
    InvariantStatus,
    relative_error,
)
from repro.core.link_status import LinkEvidence, combine_link_evidence
from repro.core.pipeline import Hodor
from repro.core.policy import (
    AlertOnlyPolicy,
    Policy,
    PolicyDecision,
    RejectAndFallbackPolicy,
)
from repro.core.report import InputVerdict, ValidationReport
from repro.core.serialize import (
    check_result_to_dict,
    finding_to_dict,
    hardened_state_to_dict,
    health_report_to_dict,
    invariant_result_to_dict,
    validation_report_to_dict,
)
from repro.core.signals import (
    CollectedCounter,
    CollectedState,
    CollectedStatus,
    Confidence,
    DrainVerdict,
    Finding,
    FindingSeverity,
    HardenedDrain,
    HardenedLinkStatus,
    HardenedState,
    HardenedValue,
    LinkVerdict,
)
from repro.core.topology_check import TopologyChecker

__all__ = [
    "AlertOnlyPolicy",
    "CalibrationResult",
    "CheckResult",
    "CollectedCounter",
    "CollectedState",
    "CollectedStatus",
    "Confidence",
    "DemandChecker",
    "DrainChecker",
    "DrainReason",
    "DrainVerdict",
    "Finding",
    "FindingSeverity",
    "HardenedDrain",
    "HardenedLinkStatus",
    "HardenedState",
    "HardenedValue",
    "Hardener",
    "Hodor",
    "HodorConfig",
    "InputVerdict",
    "Invariant",
    "InvariantResult",
    "InvariantStatus",
    "LinkEvidence",
    "LinkVerdict",
    "Policy",
    "PolicyDecision",
    "RejectAndFallbackPolicy",
    "RepairResult",
    "RiskProfile",
    "SignalCollector",
    "TopologyChecker",
    "ValidationReport",
    "calibrate_tau_h",
    "check_result_to_dict",
    "combine_link_evidence",
    "drop_var",
    "edge_var",
    "ext_in_var",
    "ext_out_var",
    "finding_to_dict",
    "hardened_state_to_dict",
    "health_report_to_dict",
    "invariant_result_to_dict",
    "parse_reason",
    "reason_allows_traffic",
    "reason_requires_faulty_link",
    "relative_error",
    "solve_flow_conservation",
    "validation_report_to_dict",
]
