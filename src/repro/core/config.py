"""Hodor configuration.

All tunables in one frozen dataclass.  Defaults follow the paper where
it states values: the hardening threshold tau_h and the equality
threshold tau_e both default to 2% (Section 4.1 and its footnote 2:
"Based on production logs, we find 2% to be an appropriate threshold").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["RiskProfile", "HodorConfig"]


class RiskProfile:
    """Named operating points for the link-status truth table.

    Section 4.2: the combination of status / counter / probe evidence
    "can be adjusted based on risk tolerance of the operator."

    - ``CONSERVATIVE``: any negative evidence marks a link unusable.
    - ``BALANCED``: majority evidence wins; unresolved conflicts are
      suspect.
    - ``PERMISSIVE``: a link counts as up unless all evidence is
      negative.
    """

    CONSERVATIVE = "conservative"
    BALANCED = "balanced"
    PERMISSIVE = "permissive"

    ALL = (CONSERVATIVE, BALANCED, PERMISSIVE)


@dataclass(frozen=True)
class HodorConfig:
    """Tunables for the whole validation pipeline.

    Attributes:
        tau_h: Hardening threshold -- maximum relative disagreement
            between the two ends of a link before the pair is flagged
            spurious (paper default 2%).
        tau_e: Equality threshold for dynamic-check invariants (paper
            default 2%).
        rate_floor: Absolute rate below which values are treated as
            "approximately zero"; relative thresholds are meaningless
            around zero, so pairs within the floor always agree.
        max_staleness_s: Readings older than this (relative to the
            snapshot timestamp) are treated as missing and flagged.
        use_probes: Whether manufactured probe signals (R4) are
            consulted when hardening link status.
        use_counters_for_status: Whether counter activity (R3) is
            consulted when hardening link status.
        risk_profile: Truth-table operating point, one of
            :class:`RiskProfile`.
        active_threshold: Counter rate above which an interface counts
            as "actively carrying traffic" for R3 purposes.
        repair_residual_tol: Maximum acceptable flow-conservation
            residual (relative to node throughput) when accepting a
            repair.
        enable_repair: Whether the R2 flow-conservation repair runs at
            all.  Disabling it gives the R1-only ablation (detection
            without repair) used in the hardening-efficacy study.
    """

    tau_h: float = 0.02
    tau_e: float = 0.02
    rate_floor: float = 1e-6
    max_staleness_s: float = 60.0
    use_probes: bool = True
    use_counters_for_status: bool = True
    risk_profile: str = RiskProfile.BALANCED
    active_threshold: float = 1e-3
    repair_residual_tol: float = 0.05
    enable_repair: bool = True

    def __post_init__(self) -> None:
        if not 0 <= self.tau_h < 1:
            raise ValueError(f"tau_h must be in [0, 1), got {self.tau_h}")
        if not 0 <= self.tau_e < 1:
            raise ValueError(f"tau_e must be in [0, 1), got {self.tau_e}")
        if self.rate_floor < 0:
            raise ValueError(f"rate_floor must be non-negative, got {self.rate_floor}")
        if self.max_staleness_s <= 0:
            raise ValueError(
                f"max_staleness_s must be positive, got {self.max_staleness_s}"
            )
        if self.risk_profile not in RiskProfile.ALL:
            raise ValueError(
                f"risk_profile must be one of {RiskProfile.ALL}, got {self.risk_profile!r}"
            )

    def with_overrides(self, **kwargs: object) -> "HodorConfig":
        """A copy with some fields replaced (sweeps use this)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]
