"""Typed signal model for Hodor's pipeline.

Hodor's steps pass increasingly trustworthy views of the network:

- :class:`CollectedState` (after step 1): every raw signal coerced into
  a typed value or flagged as missing/malformed/stale.
- :class:`HardenedState` (after step 2): per-signal
  :class:`HardenedValue` entries carrying a :class:`Confidence` level
  and provenance, plus the findings the hardening process produced.

Terminology follows the paper: the per-link traffic values form the
"flow vector containing constants and variables"; hardening replaces
variables with repaired constants where flow conservation permits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.core.drain_reasons import DrainReason

__all__ = [
    "Confidence",
    "FindingSeverity",
    "Finding",
    "HardenedValue",
    "LinkVerdict",
    "HardenedLinkStatus",
    "DrainVerdict",
    "HardenedDrain",
    "CollectedCounter",
    "CollectedStatus",
    "CollectedState",
    "HardenedState",
]


class Confidence(Enum):
    """How much a hardened value can be trusted, strongest first."""

    #: Two independent vantage points agreed (R1 symmetry held).
    CORROBORATED = "corroborated"
    #: Recovered through flow conservation / alternative signals.
    REPAIRED = "repaired"
    #: Only one vantage point exists (e.g. external counters).
    REPORTED = "reported"
    #: Flagged or missing, and repair was impossible.
    UNKNOWN = "unknown"


class FindingSeverity(Enum):
    """Severity of one hardening/validation finding."""

    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"


@dataclass(frozen=True)
class Finding:
    """One detected inconsistency or repair action.

    Attributes:
        code: Stable machine-readable finding code (e.g.
            ``"R1_COUNTER_MISMATCH"``).
        severity: How alarming this finding is.
        subject: What the finding is about (link name, router, pair).
        detail: Human-readable description.
        redundancy: Which paper redundancy produced it (``"R1"``..
            ``"R4"``, or ``""`` for non-redundancy findings).
    """

    code: str
    severity: FindingSeverity
    subject: str
    detail: str
    redundancy: str = ""


@dataclass(frozen=True)
class HardenedValue:
    """A scalar signal after hardening.

    Attributes:
        value: The hardened rate, or ``None`` when unknown.
        confidence: Trust level.
        source: Short provenance note ("avg of both ends",
            "flow conservation at B", ...).
    """

    value: Optional[float]
    confidence: Confidence
    source: str = ""

    @property
    def known(self) -> bool:
        return self.value is not None

    def require(self) -> float:
        """The value, raising if unknown (for callers that checked)."""
        if self.value is None:
            raise ValueError("hardened value is unknown")
        return self.value


class LinkVerdict(Enum):
    """Hardened link status (Section 4.2 truth-table output)."""

    UP = "up"
    DOWN = "down"
    #: Status signals conflict and evidence cannot resolve them.
    SUSPECT = "suspect"


@dataclass(frozen=True)
class HardenedLinkStatus:
    """Hardened view of one link's usability.

    Attributes:
        verdict: Up, down, or suspect.
        forwarding: Whether evidence shows traffic actually flows
            (False catches the "up but can't forward" semantic bugs).
        evidence: Which signals contributed (e.g.
            ``("status:agree", "counters:active", "probe:ok")``).
    """

    verdict: LinkVerdict
    forwarding: Optional[bool] = None
    evidence: Tuple[str, ...] = ()

    @property
    def usable(self) -> bool:
        """Conservatively usable: verdict up and not proven non-forwarding."""
        return self.verdict == LinkVerdict.UP and self.forwarding is not False


class DrainVerdict(Enum):
    """Hardened view of a drain signal."""

    DRAINED = "drained"
    SERVING = "serving"
    CONFLICTED = "conflicted"


@dataclass(frozen=True)
class HardenedDrain:
    """Hardened drain state with supporting evidence.

    Attributes:
        verdict: Drained, serving, or conflicted.
        carrying_traffic: Whether the hardened flow vector shows
            traffic at this router (``None`` when undecidable).
        reason: The parsed drain reason (Section 4.3 extension);
            ``None`` for serving routers or unparseable reasons.
        evidence: Supporting signal notes.
    """

    verdict: DrainVerdict
    carrying_traffic: Optional[bool] = None
    reason: Optional["DrainReason"] = None
    evidence: Tuple[str, ...] = ()


# ----------------------------------------------------------------------
# Step-1 output
# ----------------------------------------------------------------------


@dataclass
class CollectedCounter:
    """One interface's counters after coercion.

    ``None`` fields mean the signal was missing, malformed, or too
    stale to use; the corresponding anomaly finding says which.
    """

    rx: Optional[float]
    tx: Optional[float]
    timestamp: float = 0.0


@dataclass
class CollectedStatus:
    """One interface's link status after coercion."""

    oper_up: Optional[bool]
    admin_up: Optional[bool]


@dataclass
class CollectedState:
    """Everything collection (step 1) extracted from a snapshot."""

    timestamp: float = 0.0
    counters: Dict[Tuple[str, str], CollectedCounter] = field(default_factory=dict)
    statuses: Dict[Tuple[str, str], CollectedStatus] = field(default_factory=dict)
    drains: Dict[str, Optional[bool]] = field(default_factory=dict)
    drain_reasons: Dict[str, Optional["DrainReason"]] = field(default_factory=dict)
    link_drains: Dict[Tuple[str, str], Optional[bool]] = field(default_factory=dict)
    drops: Dict[str, Optional[float]] = field(default_factory=dict)
    probes: Dict[Tuple[str, str], bool] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)

    def counter(self, node: str, peer: str) -> Optional[CollectedCounter]:
        return self.counters.get((node, peer))


# ----------------------------------------------------------------------
# Step-2 output
# ----------------------------------------------------------------------


@dataclass
class HardenedState:
    """The trusted low-level view of the network after hardening.

    Attributes:
        edge_flows: Hardened traffic volume per directed edge -- the
            paper's flow vector.
        ext_in: Hardened external ingress rate per router.
        ext_out: Hardened external egress rate per router.
        drops: Hardened dropped rate per router.
        links: Hardened link status per canonical link name.
        node_drains: Hardened drain state per router.
        link_drains: Hardened drain state per canonical link name.
        findings: Everything hardening detected or repaired.
    """

    edge_flows: Dict[Tuple[str, str], HardenedValue] = field(default_factory=dict)
    ext_in: Dict[str, HardenedValue] = field(default_factory=dict)
    ext_out: Dict[str, HardenedValue] = field(default_factory=dict)
    drops: Dict[str, HardenedValue] = field(default_factory=dict)
    links: Dict[str, HardenedLinkStatus] = field(default_factory=dict)
    node_drains: Dict[str, HardenedDrain] = field(default_factory=dict)
    link_drains: Dict[str, HardenedDrain] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)

    def findings_with_severity(self, severity: FindingSeverity) -> List[Finding]:
        return [f for f in self.findings if f.severity == severity]

    def unknown_edges(self) -> List[Tuple[str, str]]:
        """Directed edges whose hardened flow is still unknown."""
        return sorted(e for e, v in self.edge_flows.items() if not v.known)

    def repaired_edges(self) -> List[Tuple[str, str]]:
        return sorted(
            e for e, v in self.edge_flows.items() if v.confidence == Confidence.REPAIRED
        )
