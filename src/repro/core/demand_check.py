"""Dynamic checking of the demand input (paper Section 4.1).

The demand matrix D and the hardened interface counters are
interdependent: traffic in ``D[i][j]`` contributes to counters along
the whole i -> j path, and in particular crosses the *external*
interfaces at exactly its ingress and egress routers.  The paper's
checks, verbatim:

- "the total external ingress rate at a router must equal the reported
  sum of demands from that router to all other routers" (row sums),
- "total external egress at a router must equal the reported sum of
  demands from all other routers to this router" (column sums).

That yields 2v invariants -- "not enough to fully re-derive D (which
contains v^2 entries) but [they] significantly constrain its range of
acceptable values" -- each accepted within the equality threshold
tau_e.

One refinement beyond the paper's sketch: the egress equality only
holds on a loss-free network.  When the hardened drop counters show the
network is shedding traffic, delivered egress legitimately falls below
the demand's column sums; the checker then widens each egress
invariant's tolerance by the hardened network-wide loss fraction (an
upper bound on how much any one router's egress can be depressed by
drops) and notes that it did so.  Ingress invariants are unaffected --
demand enters before any drop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.core.config import HodorConfig
from repro.core.invariants import CheckResult, Invariant, InvariantResult
from repro.core.parallel import SliceParallel, map_slices
from repro.core.signals import HardenedState
from repro.net.demand import DemandMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.cache import TopologyCache

__all__ = ["DemandChecker"]


class DemandChecker:
    """Validates a demand matrix against hardened external counters.

    Args:
        config: Pipeline configuration (tau_e and floors are used here).
        cache: Optional prebuilt topology cache; when the hardened state
            covers exactly the cached routers (the pipeline case), the
            checker reuses the cache's sorted router order instead of
            re-sorting per call.
    """

    def __init__(
        self,
        config: Optional[HodorConfig] = None,
        cache: Optional["TopologyCache"] = None,
    ) -> None:
        self._config = config or HodorConfig()
        self._cache = cache

    def check(
        self,
        demand: DemandMatrix,
        hardened: HardenedState,
        parallel: SliceParallel = None,
    ) -> CheckResult:
        """Evaluate the 2v demand invariants.

        Routers present in the hardened state but absent from the
        demand matrix produce violated invariants only if they carry
        external traffic (a router missing from D while hosts push
        traffic through it *is* a missing-demand bug).

        Args:
            demand: The demand matrix under validation.
            hardened: Step-2 output for this epoch.
            parallel: Optional slice-parallel executor (see
                :mod:`repro.core.parallel`); ``None`` runs the serial
                reference path.
        """
        result = CheckResult(input_name="demand")
        floor = max(self._config.rate_floor, self._config.active_threshold)

        total_dropped = self.total_dropped(hardened)
        if total_dropped > floor:
            result.notes.append(self.dropped_note(total_dropped))

        hardened_nodes = self._hardened_nodes(hardened)
        for invariants, notes in map_slices(
            parallel,
            lambda nodes: self.check_node_slice(demand, hardened, nodes, total_dropped),
            hardened_nodes,
        ):
            result.results.extend(invariants)
            result.notes.extend(notes)

        skipped = result.num_skipped
        if skipped:
            result.notes.append(self.skipped_note(skipped))
        return result

    @staticmethod
    def dropped_note(total_dropped: float) -> str:
        """The loss-allowance note emitted when drops widen egress checks."""
        return (
            f"hardened drop counters show {total_dropped:.6g} of in-network "
            "loss; egress invariants widened by that absolute allowance"
        )

    @staticmethod
    def skipped_note(skipped: int) -> str:
        """The trailing note counting skipped invariants."""
        return f"{skipped} invariants skipped: hardened external counters unknown"

    def _hardened_nodes(self, hardened: HardenedState) -> Sequence[str]:
        """Sorted routers under check, reusing the cache's order when valid."""
        nodes = set(hardened.ext_in) | set(hardened.ext_out)
        if self._cache is not None and nodes == set(self._cache.nodes):
            return self._cache.sorted_nodes
        return sorted(nodes)

    def check_node_slice(
        self,
        demand: DemandMatrix,
        hardened: HardenedState,
        nodes: Sequence[str],
        total_dropped: float,
    ) -> Tuple[List[InvariantResult], List[str]]:
        """Row/col-sum invariants for one contiguous slice of routers.

        The slice worker behind :meth:`check`; the serial path calls it
        once with every router, the engine once per shard.
        """
        invariants: List[InvariantResult] = []
        notes: List[str] = []
        for node in nodes:
            node_invariants, node_notes = self.check_node_entity(
                demand, hardened, node, total_dropped
            )
            invariants.extend(node_invariants)
            notes.extend(node_notes)
        return invariants, notes

    def check_node_entity(
        self,
        demand: DemandMatrix,
        hardened: HardenedState,
        node: str,
        total_dropped: float,
    ) -> Tuple[Tuple[InvariantResult, InvariantResult], Tuple[str, ...]]:
        """Row/col-sum invariants for one router (per-entity unit).

        Depends on the demand matrix, this router's hardened external
        counters, and the network-wide ``total_dropped`` (which widens
        the egress tolerance) -- a change to any of those dirties the
        node in incremental mode.
        """
        tau_e = self._config.tau_e
        floor = max(self._config.rate_floor, self._config.active_threshold)
        demand_nodes = set(demand.nodes)
        notes: Tuple[str, ...] = ()

        row_sum = demand.row_sum(node) if node in demand_nodes else 0.0
        column_sum = demand.column_sum(node) if node in demand_nodes else 0.0
        if node not in demand_nodes:
            notes = (
                f"{node} missing from demand matrix; treating its demand as zero",
            )

        ext_in = hardened.ext_in.get(node)
        ingress = Invariant(
            name=f"demand/row-sum/{node}",
            description=(
                f"sum_j D[{node}][j] == external ingress at {node} "
                f"({_fmt(row_sum)} vs {_fmt(ext_in.value if ext_in else None)})"
            ),
            lhs=row_sum,
            rhs=ext_in.value if ext_in else None,
            tolerance=tau_e,
        ).evaluate(floor)

        ext_out = hardened.ext_out.get(node)
        # A router's egress may legitimately fall short of its
        # column sum by at most the total traffic the network
        # dropped (an absolute, path-agnostic bound); translate
        # that into this invariant's relative tolerance.
        magnitude = max(
            column_sum, ext_out.value if ext_out and ext_out.known else 0.0, floor
        )
        egress_tau = min(0.95, tau_e + total_dropped / magnitude)
        egress = Invariant(
            name=f"demand/col-sum/{node}",
            description=(
                f"sum_i D[i][{node}] == external egress at {node} "
                f"({_fmt(column_sum)} vs {_fmt(ext_out.value if ext_out else None)})"
            ),
            lhs=column_sum,
            rhs=ext_out.value if ext_out else None,
            tolerance=egress_tau,
        ).evaluate(floor)
        return (ingress, egress), notes


    @staticmethod
    def total_dropped(hardened: HardenedState) -> float:
        """Total in-network loss per the hardened drop counters."""
        return sum(v.value for v in hardened.drops.values() if v.known and v.value > 0)


def _fmt(value: Optional[float]) -> str:
    return "?" if value is None else f"{value:.6g}"
