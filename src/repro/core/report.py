"""Validation reports: what Hodor tells the operator.

A :class:`ValidationReport` bundles the outcome of one validation pass:
the hardening findings, the per-input check results, and a verdict per
input.  Reports render to a compact human-readable text block -- the
kind of artifact that would feed the operator's alerting pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

from repro.core.invariants import CheckResult
from repro.core.signals import Finding, FindingSeverity, HardenedState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.provenance import VerdictProvenance

__all__ = ["InputVerdict", "ValidationReport"]


@dataclass(frozen=True)
class InputVerdict:
    """Verdict for one controller input.

    Attributes:
        input_name: ``"demand"``, ``"topology"``, or ``"drain"``.
        valid: True when no invariant for this input was violated.
        num_violations: Count of violated invariants.
        num_evaluated: Count of evaluated (non-skipped) invariants.
    """

    input_name: str
    valid: bool
    num_violations: int
    num_evaluated: int


@dataclass
class ValidationReport:
    """Everything one Hodor validation pass produced.

    Attributes:
        timestamp: Snapshot epoch validated.
        hardened: The hardened network state used for checking.
        checks: Per-input dynamic check results.
        verdicts: Per-input verdicts derived from the checks.
        provenance: Per-input
            :class:`~repro.obs.provenance.VerdictProvenance` records --
            which invariants fired and which hardened signals fed them.
            Derived deterministically from ``checks`` + ``hardened``,
            so report equality is unaffected.
    """

    timestamp: float
    hardened: HardenedState
    checks: Dict[str, CheckResult] = field(default_factory=dict)
    verdicts: Dict[str, InputVerdict] = field(default_factory=dict)
    provenance: Dict[str, "VerdictProvenance"] = field(default_factory=dict)

    @property
    def all_valid(self) -> bool:
        return all(verdict.valid for verdict in self.verdicts.values())

    def invalid_inputs(self) -> List[str]:
        return sorted(name for name, v in self.verdicts.items() if not v.valid)

    @property
    def hardening_findings(self) -> List[Finding]:
        return self.hardened.findings

    def critical_findings(self) -> List[Finding]:
        return self.hardened.findings_with_severity(FindingSeverity.CRITICAL)

    def detected_anything(self) -> bool:
        """Did this pass surface any problem at all?

        True when any input failed validation, or hardening produced a
        warning/critical finding.  This is the metric the outage-replay
        study scores: "would Hodor have flagged this epoch?"
        """
        if not self.all_valid:
            return True
        return any(
            finding.severity in (FindingSeverity.WARNING, FindingSeverity.CRITICAL)
            for finding in self.hardened.findings
        )

    def render(self) -> str:
        """A compact multi-line text report."""
        lines = [f"Hodor validation @ t={self.timestamp:g}"]
        for name in sorted(self.verdicts):
            verdict = self.verdicts[name]
            mark = "OK " if verdict.valid else "FAIL"
            lines.append(
                f"  [{mark}] {name}: {verdict.num_violations} violations / "
                f"{verdict.num_evaluated} invariants"
            )
            check = self.checks.get(name)
            if check:
                for violation in check.violations[:10]:
                    lines.append(f"         - {violation.describe()}")
                if len(check.violations) > 10:
                    lines.append(f"         ... {len(check.violations) - 10} more")
        noteworthy = [
            f for f in self.hardened.findings if f.severity != FindingSeverity.INFO
        ]
        if noteworthy:
            lines.append(f"  hardening findings ({len(noteworthy)}):")
            for finding in noteworthy[:15]:
                lines.append(
                    f"    - [{finding.severity.value}] {finding.code} {finding.subject}: "
                    f"{finding.detail}"
                )
            if len(noteworthy) > 15:
                lines.append(f"    ... {len(noteworthy) - 15} more")
        return "\n".join(lines)
