"""A B4-like inter-datacenter WAN: 12 sites on three continents.

Stands in for the production SDN WAN the paper analyzed (whose exact
topology is proprietary).  Structure follows the published B4 paper's
site map at a coarse level: a well-connected North American core,
trans-Atlantic and trans-Pacific links, and regional meshes in Europe
and Asia.  Vendor labels alternate by region so correlated vendor-bug
experiments (Section 3.2's open question) have two vendor populations.
"""

from __future__ import annotations

from repro.net.topology import Link, Node, Topology

__all__ = ["b4", "B4_NODES", "B4_LINKS"]

#: (name, site, vendor) for the 12 B4-like sites.
B4_NODES = (
    ("us-w1", "The Dalles", "vendor-a"),
    ("us-w2", "Council Bluffs", "vendor-b"),
    ("us-c1", "Tulsa", "vendor-a"),
    ("us-e1", "Berkeley County", "vendor-b"),
    ("us-e2", "Lenoir", "vendor-a"),
    ("eu-w1", "Dublin", "vendor-b"),
    ("eu-w2", "St. Ghislain", "vendor-a"),
    ("eu-n1", "Hamina", "vendor-b"),
    ("asia-e1", "Changhua", "vendor-a"),
    ("asia-e2", "Kowloon", "vendor-b"),
    ("asia-s1", "Singapore", "vendor-a"),
    ("asia-ne1", "Tokyo", "vendor-b"),
)

#: (a, b, capacity) in Gbps per direction.
B4_LINKS = (
    # North American core.
    ("us-w1", "us-w2", 400.0),
    ("us-w1", "us-c1", 200.0),
    ("us-w2", "us-c1", 200.0),
    ("us-w2", "us-e1", 400.0),
    ("us-c1", "us-e2", 200.0),
    ("us-e1", "us-e2", 400.0),
    # Trans-Atlantic.
    ("us-e1", "eu-w1", 200.0),
    ("us-e2", "eu-w2", 200.0),
    # European mesh.
    ("eu-w1", "eu-w2", 400.0),
    ("eu-w1", "eu-n1", 200.0),
    ("eu-w2", "eu-n1", 200.0),
    # Trans-Pacific.
    ("us-w1", "asia-ne1", 200.0),
    ("us-w2", "asia-e1", 100.0),
    # Asian mesh.
    ("asia-ne1", "asia-e1", 200.0),
    ("asia-e1", "asia-e2", 200.0),
    ("asia-e2", "asia-s1", 200.0),
    ("asia-s1", "asia-e1", 100.0),
    ("asia-ne1", "asia-e2", 100.0),
    # Long southern route closing the ring.
    ("asia-s1", "eu-n1", 100.0),
)


def b4(capacity_scale: float = 1.0) -> Topology:
    """Build the B4-like topology.

    Args:
        capacity_scale: Multiplier applied to every link capacity.
    """
    if capacity_scale <= 0:
        raise ValueError(f"capacity_scale must be positive, got {capacity_scale}")
    topo = Topology("b4")
    for name, site, vendor in B4_NODES:
        topo.add_node(Node(name, site=site, vendor=vendor))
    for a, b, capacity in B4_LINKS:
        topo.add_link(Link(a, b, capacity=capacity * capacity_scale))
    return topo
