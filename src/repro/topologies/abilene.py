"""The Abilene research network (Internet2), 12 nodes / 15 links.

This is the topology the paper's Section 4.1 preliminary evaluation
uses ("demand matrices from the Abilene network [27]").  The node and
link structure follows SNDlib's ``abilene`` instance; capacities are
the historical OC-192 backbone rate (~10 Gbps per direction) with the
one OC-48 (~2.5 Gbps) Atlanta spur.  Demand traces are not bundled
(SNDlib data is not redistributable here); the experiments generate
gravity-model matrices over this graph instead -- see DESIGN.md.
"""

from __future__ import annotations

from repro.net.topology import Link, Node, Topology

__all__ = ["abilene", "ABILENE_NODES", "ABILENE_LINKS"]

#: (name, site) for the 12 Abilene routers.
ABILENE_NODES = (
    ("atla", "Atlanta"),
    ("atlam", "Atlanta M5"),
    ("chin", "Chicago"),
    ("dnvr", "Denver"),
    ("hstn", "Houston"),
    ("ipls", "Indianapolis"),
    ("kscy", "Kansas City"),
    ("losa", "Los Angeles"),
    ("nycm", "New York"),
    ("snva", "Sunnyvale"),
    ("sttl", "Seattle"),
    ("wash", "Washington DC"),
)

#: (a, b, capacity) for the 15 Abilene links, in rate units of Gbps.
ABILENE_LINKS = (
    ("atla", "atlam", 2.5),
    ("atla", "hstn", 10.0),
    ("atla", "ipls", 10.0),
    ("atla", "wash", 10.0),
    ("chin", "ipls", 10.0),
    ("chin", "nycm", 10.0),
    ("dnvr", "kscy", 10.0),
    ("dnvr", "snva", 10.0),
    ("dnvr", "sttl", 10.0),
    ("hstn", "kscy", 10.0),
    ("hstn", "losa", 10.0),
    ("ipls", "kscy", 10.0),
    ("losa", "snva", 10.0),
    ("nycm", "wash", 10.0),
    ("snva", "sttl", 10.0),
)


def abilene(capacity_scale: float = 1.0) -> Topology:
    """Build the Abilene topology.

    Args:
        capacity_scale: Multiplier applied to every link capacity
            (useful for forcing congestion in outage scenarios).
    """
    if capacity_scale <= 0:
        raise ValueError(f"capacity_scale must be positive, got {capacity_scale}")
    topo = Topology("abilene")
    for name, site in ABILENE_NODES:
        topo.add_node(Node(name, site=site))
    for a, b, capacity in ABILENE_LINKS:
        topo.add_link(Link(a, b, capacity=capacity * capacity_scale))
    return topo
