"""A GEANT-like pan-European research WAN: 22 nodes / 36 links.

A second realistic evaluation topology, larger and better meshed than
Abilene, modeled on the SNDlib ``geant`` instance's node set.  Link
structure is representative rather than byte-exact (the licensed data
is not bundled); what the experiments need is a realistic degree
distribution and diameter, which this preserves.
"""

from __future__ import annotations

from repro.net.topology import Link, Node, Topology

__all__ = ["geant", "GEANT_NODES", "GEANT_LINKS"]

#: (name, site) for the 22 GEANT points of presence.
GEANT_NODES = (
    ("at", "Vienna"),
    ("be", "Brussels"),
    ("ch", "Geneva"),
    ("cz", "Prague"),
    ("de", "Frankfurt"),
    ("es", "Madrid"),
    ("fr", "Paris"),
    ("gr", "Athens"),
    ("hr", "Zagreb"),
    ("hu", "Budapest"),
    ("ie", "Dublin"),
    ("il", "Tel Aviv"),
    ("it", "Milan"),
    ("lu", "Luxembourg"),
    ("nl", "Amsterdam"),
    ("ny", "New York"),
    ("pl", "Poznan"),
    ("pt", "Lisbon"),
    ("se", "Stockholm"),
    ("si", "Ljubljana"),
    ("sk", "Bratislava"),
    ("uk", "London"),
)

#: (a, b, capacity) in Gbps per direction.
GEANT_LINKS = (
    ("at", "ch", 10.0),
    ("at", "cz", 10.0),
    ("at", "de", 10.0),
    ("at", "hu", 10.0),
    ("at", "si", 10.0),
    ("at", "sk", 2.5),
    ("be", "fr", 10.0),
    ("be", "nl", 10.0),
    ("be", "lu", 2.5),
    ("ch", "fr", 10.0),
    ("ch", "it", 10.0),
    ("ch", "de", 10.0),
    ("cz", "de", 10.0),
    ("cz", "pl", 10.0),
    ("cz", "sk", 2.5),
    ("de", "fr", 10.0),
    ("de", "nl", 10.0),
    ("de", "se", 10.0),
    ("de", "ny", 10.0),
    ("es", "fr", 10.0),
    ("es", "it", 10.0),
    ("es", "pt", 10.0),
    ("fr", "uk", 10.0),
    ("fr", "lu", 2.5),
    ("gr", "it", 10.0),
    ("gr", "at", 2.5),
    ("hr", "hu", 2.5),
    ("hr", "si", 2.5),
    ("hu", "sk", 2.5),
    ("ie", "uk", 10.0),
    ("il", "it", 2.5),
    ("it", "at", 10.0),
    ("nl", "uk", 10.0),
    ("ny", "uk", 10.0),
    ("pl", "de", 10.0),
    ("pt", "uk", 2.5),
    ("se", "nl", 10.0),
)


def geant(capacity_scale: float = 1.0) -> Topology:
    """Build the GEANT-like topology.

    Args:
        capacity_scale: Multiplier applied to every link capacity.
    """
    if capacity_scale <= 0:
        raise ValueError(f"capacity_scale must be positive, got {capacity_scale}")
    topo = Topology("geant")
    for name, site in GEANT_NODES:
        topo.add_node(Node(name, site=site))
    for a, b, capacity in GEANT_LINKS:
        topo.add_link(Link(a, b, capacity=capacity * capacity_scale))
    return topo
