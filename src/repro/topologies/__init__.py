"""Bundled WAN topologies: realistic instances and synthetic generators."""

from repro.topologies.abilene import ABILENE_LINKS, ABILENE_NODES, abilene
from repro.topologies.b4 import B4_LINKS, B4_NODES, b4
from repro.topologies.geant import GEANT_LINKS, GEANT_NODES, geant
from repro.topologies.synthetic import (
    fat_tree_topology,
    fig3_demand,
    fig3_network,
    gnp_topology,
    grid_topology,
    line_topology,
    ring_topology,
    star_topology,
    waxman_topology,
)

__all__ = [
    "ABILENE_LINKS",
    "ABILENE_NODES",
    "B4_LINKS",
    "B4_NODES",
    "GEANT_LINKS",
    "GEANT_NODES",
    "abilene",
    "b4",
    "fat_tree_topology",
    "fig3_demand",
    "fig3_network",
    "geant",
    "gnp_topology",
    "grid_topology",
    "line_topology",
    "ring_topology",
    "star_topology",
    "waxman_topology",
]
