"""Synthetic topology generators for tests and scaling studies.

Provides small canonical shapes (line, ring, star, grid), random
connected graphs (Waxman and G(n, p)), and the paper's Figure 3
worked-example network with its exact demand values.
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.net.demand import DemandMatrix
from repro.net.topology import Link, Node, Topology

__all__ = [
    "line_topology",
    "ring_topology",
    "star_topology",
    "grid_topology",
    "waxman_topology",
    "gnp_topology",
    "fat_tree_topology",
    "fig3_network",
    "fig3_demand",
]


def _names(count: int, prefix: str = "r") -> List[str]:
    if count <= 0:
        raise ValueError(f"node count must be positive, got {count}")
    width = len(str(count - 1))
    return [f"{prefix}{i:0{width}d}" for i in range(count)]


def line_topology(count: int, capacity: float = 100.0) -> Topology:
    """``count`` routers in a chain: r0 - r1 - ... - r(n-1)."""
    names = _names(count)
    topo = Topology(f"line{count}")
    for name in names:
        topo.add_node(Node(name))
    for a, b in zip(names[:-1], names[1:]):
        topo.add_link(Link(a, b, capacity=capacity))
    return topo


def ring_topology(count: int, capacity: float = 100.0) -> Topology:
    """``count`` routers in a cycle (count >= 3)."""
    if count < 3:
        raise ValueError(f"a ring needs at least 3 nodes, got {count}")
    topo = line_topology(count, capacity)
    names = _names(count)
    topo.add_link(Link(names[-1], names[0], capacity=capacity))
    topo.name = f"ring{count}"
    return topo


def star_topology(leaves: int, capacity: float = 100.0) -> Topology:
    """A hub router connected to ``leaves`` leaf routers."""
    if leaves < 1:
        raise ValueError(f"a star needs at least 1 leaf, got {leaves}")
    topo = Topology(f"star{leaves}")
    topo.add_node(Node("hub"))
    for name in _names(leaves, prefix="leaf"):
        topo.add_node(Node(name))
        topo.add_link(Link("hub", name, capacity=capacity))
    return topo


def grid_topology(rows: int, cols: int, capacity: float = 100.0) -> Topology:
    """A rows x cols mesh grid."""
    if rows < 1 or cols < 1:
        raise ValueError(f"grid dimensions must be positive, got {rows}x{cols}")
    topo = Topology(f"grid{rows}x{cols}")
    name = lambda r, c: f"g{r}-{c}"  # noqa: E731 - tiny local helper
    for r in range(rows):
        for c in range(cols):
            topo.add_node(Node(name(r, c)))
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                topo.add_link(Link(name(r, c), name(r, c + 1), capacity=capacity))
            if r + 1 < rows:
                topo.add_link(Link(name(r, c), name(r + 1, c), capacity=capacity))
    return topo


def waxman_topology(
    count: int,
    alpha: float = 0.6,
    beta: float = 0.3,
    capacity: float = 100.0,
    seed: int = 0,
) -> Topology:
    """A connected Waxman random graph.

    Routers are placed uniformly in the unit square; each pair is
    linked with probability ``alpha * exp(-distance / (beta * L))``
    where ``L`` is the maximum possible distance.  A spanning chain
    over the random placement is added afterwards if the draw left the
    graph disconnected, so the result is always connected.
    """
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    rng = random.Random(seed)
    names = _names(count)
    positions = {name: (rng.random(), rng.random()) for name in names}
    topo = Topology(f"waxman{count}")
    for name in names:
        topo.add_node(Node(name))

    max_distance = math.sqrt(2.0)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            ax, ay = positions[a]
            bx, by = positions[b]
            distance = math.hypot(ax - bx, ay - by)
            if rng.random() < alpha * math.exp(-distance / (beta * max_distance)):
                topo.add_link(Link(a, b, capacity=capacity))

    _connect_components(topo, capacity)
    return topo


def gnp_topology(count: int, p: float = 0.3, capacity: float = 100.0, seed: int = 0) -> Topology:
    """A connected Erdos-Renyi G(n, p) graph."""
    if not 0 <= p <= 1:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = random.Random(seed)
    names = _names(count)
    topo = Topology(f"gnp{count}")
    for name in names:
        topo.add_node(Node(name))
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            if rng.random() < p:
                topo.add_link(Link(a, b, capacity=capacity))
    _connect_components(topo, capacity)
    return topo


def _connect_components(topo: Topology, capacity: float) -> None:
    """Add minimal links so the topology becomes connected."""
    names = topo.node_names()
    if not names:
        return
    remaining = set(names)
    component_roots = []
    while remaining:
        root = min(remaining)
        component_roots.append(root)
        stack = [root]
        while stack:
            here = stack.pop()
            if here not in remaining:
                continue
            remaining.discard(here)
            stack.extend(topo.neighbors(here))
    for a, b in zip(component_roots[:-1], component_roots[1:]):
        topo.add_link(Link(a, b, capacity=capacity))


def fat_tree_topology(k: int = 4, capacity: float = 40.0) -> Topology:
    """A k-ary fat-tree datacenter fabric.

    The paper's Section 6 asks whether incorrect inputs (and this
    validation approach) apply to "datacenter fabrics"; this generator
    provides the canonical fabric to test on: (k/2)^2 core switches and
    k pods of k/2 aggregation + k/2 edge switches, with the standard
    wiring.  Demand is placed between edge switches (where hosts
    attach).

    Args:
        k: Pod count / switch radix; must be even and >= 2.
        capacity: Per-direction capacity of every fabric link.
    """
    if k < 2 or k % 2:
        raise ValueError(f"k must be even and >= 2, got {k}")
    half = k // 2
    topo = Topology(f"fattree{k}")

    cores = [f"core{i}-{j}" for i in range(half) for j in range(half)]
    for name in cores:
        topo.add_node(Node(name, site="core"))
    for pod in range(k):
        for a in range(half):
            topo.add_node(Node(f"agg{pod}-{a}", site=f"pod{pod}"))
        for e in range(half):
            topo.add_node(Node(f"edge{pod}-{e}", site=f"pod{pod}"))
        for a in range(half):
            for e in range(half):
                topo.add_link(Link(f"agg{pod}-{a}", f"edge{pod}-{e}", capacity=capacity))
        # agg switch `a` of every pod connects to core row `a`.
        for a in range(half):
            for j in range(half):
                topo.add_link(Link(f"agg{pod}-{a}", f"core{a}-{j}", capacity=capacity))
    return topo


# ----------------------------------------------------------------------
# The paper's Figure 3 worked example
# ----------------------------------------------------------------------


def fig3_network(capacity: float = 1000.0) -> Topology:
    """The line network behind the paper's Figure 3 example.

    Three routers A - B - C.  With :func:`fig3_demand` routed over it,
    the link loads and external rates reproduce the figure's numbers
    exactly: A->B carries 76, B->C carries 75, B's external ingress is
    23 and external egress is 24, so flow conservation at B reads
    ``x + 23 = 75 + 24  =>  x = 76`` -- the repair equation printed in
    the paper.
    """
    topo = Topology("fig3")
    for name in ("A", "B", "C"):
        topo.add_node(Node(name))
    topo.add_link(Link("A", "B", capacity=capacity))
    topo.add_link(Link("B", "C", capacity=capacity))
    return topo


def fig3_demand() -> DemandMatrix:
    """The demand matrix consistent with Figure 3's counters.

    ``D[A][B] = 24``, ``D[A][C] = 52``, ``D[B][C] = 23``:
    row/column sums give external ingress (A: 76, B: 23) and external
    egress (B: 24, C: 75), matching the figure's invariant examples.
    """
    demand = DemandMatrix(["A", "B", "C"])
    demand["A", "B"] = 24.0
    demand["A", "C"] = 52.0
    demand["B", "C"] = 23.0
    return demand
