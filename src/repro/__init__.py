"""Reproduction of "The Case for Validating Inputs in Software-Defined WANs".

This package implements Hodor -- the three-step input-validation approach
proposed in the HotNets '24 paper -- together with every substrate the
paper's analysis depends on: a WAN simulator with ground-truth traffic, a
router telemetry layer, a fault-injection framework that reproduces the
paper's outage taxonomy, the SDN control infrastructure (instrumentation
services and a traffic-engineering controller), baselines (static checks
and statistical anomaly detection), and the experiment harness that
regenerates the paper's quantitative results.

The most important entry points:

- :class:`repro.core.Hodor` -- the validation pipeline (collect, harden,
  dynamically check).
- :class:`repro.net.Topology` / :class:`repro.net.NetworkSimulator` -- the
  simulated WAN that produces ground-truth signals.
- :mod:`repro.faults.catalog` -- the outage scenarios from Section 2 of
  the paper.
- :mod:`repro.experiments` -- runnable studies behind each table/figure.
"""

from repro._version import __version__

__all__ = ["__version__"]
