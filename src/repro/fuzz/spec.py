"""Serializable fault timelines: the fuzzer's exchange format.

A :class:`TimelineSpec` is a self-contained, JSON-round-trippable
description of a multi-epoch scenario: the topology, the measured
demand, physical link health, the aggregation bugs wired into the
control plane, per-epoch signal-fault schedules, and every ``World``
construction knob.  It is the unit the fuzzer generates, the oracle
executes, the shrinker minimizes, and the regression corpus stores --
so the format must be **byte-stable**: serializing, parsing, and
re-serializing a spec yields identical canonical JSON.  That is what
lets reproducer files be diffed and pinned in version control without
drift.

Fault serialization rides on two registries (plain module-level
tuples, keeping hodor-lint P2 happy):

- :data:`SIGNAL_FAULT_TYPES` -- every :class:`~repro.faults.base.
  SignalFault` with ``to_params``/``from_params`` support;
- :data:`AGGREGATION_BUG_TYPES` -- the frozen bug dataclasses, encoded
  generically from their fields (frozensets come out sorted).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.config import HodorConfig
from repro.faults.aggregation_faults import (
    IgnoredDrain,
    LivenessMisreport,
    PartialTopologyStitch,
    StaleTopology,
)
from repro.faults.base import AggregationBug, SignalFault
from repro.faults.external_faults import (
    DoubleCountedDemand,
    PartialDemandAggregation,
    ThrottledDemandMismatch,
)
from repro.faults.intent_faults import InconsistentLinkDrain, MissedDrain, SpuriousDrain
from repro.faults.router_faults import (
    CorrelatedCounterFault,
    DelayedTelemetry,
    FormatChangeTelemetry,
    MalformedTelemetry,
    MissingTelemetry,
    ProbeOutage,
    RandomCounterCorruption,
    UnitChangeTelemetry,
    WrongLinkStatus,
    ZeroedDuplicateTelemetry,
)
from repro.net.demand import DemandMatrix
from repro.net.serialize import (
    demand_from_dict,
    demand_to_dict,
    topology_from_dict,
    topology_to_dict,
)
from repro.net.topology import Topology
from repro.scenarios.world import World
from repro.stream.feed import Perturbations
from repro.telemetry.probes import LinkHealth

__all__ = [
    "SIGNAL_FAULT_TYPES",
    "AGGREGATION_BUG_TYPES",
    "SpecError",
    "EpochPlan",
    "TimelineSpec",
    "encode_signal_fault",
    "decode_signal_fault",
    "encode_aggregation_bug",
    "decode_aggregation_bug",
    "timeline_from_world",
    "canonical_json",
]

#: Format version stamped into every payload.
SPEC_VERSION = 1

#: Every serializable router/intent fault, in stable registry order.
SIGNAL_FAULT_TYPES: Tuple[type, ...] = (
    ZeroedDuplicateTelemetry,
    MalformedTelemetry,
    FormatChangeTelemetry,
    UnitChangeTelemetry,
    DelayedTelemetry,
    MissingTelemetry,
    WrongLinkStatus,
    ProbeOutage,
    RandomCounterCorruption,
    CorrelatedCounterFault,
    SpuriousDrain,
    MissedDrain,
    InconsistentLinkDrain,
)

#: Every serializable aggregation-bug configuration.
AGGREGATION_BUG_TYPES: Tuple[type, ...] = (
    PartialTopologyStitch,
    LivenessMisreport,
    IgnoredDrain,
    StaleTopology,
    PartialDemandAggregation,
    DoubleCountedDemand,
    ThrottledDemandMismatch,
)


class SpecError(ValueError):
    """A payload could not be decoded into a timeline spec."""


def _signal_fault_registry() -> Dict[str, type]:
    return {cls.__name__: cls for cls in SIGNAL_FAULT_TYPES}


def _aggregation_bug_registry() -> Dict[str, type]:
    return {cls.__name__: cls for cls in AGGREGATION_BUG_TYPES}


def encode_signal_fault(fault: SignalFault) -> Dict[str, Any]:
    """``{"type": ..., "params": ...}`` for one signal fault."""
    name = type(fault).__name__
    if name not in _signal_fault_registry():
        raise SpecError(f"unregistered signal fault type {name!r}")
    return {"type": name, "params": fault.to_params()}


def decode_signal_fault(payload: Mapping[str, Any]) -> SignalFault:
    """Inverse of :func:`encode_signal_fault`."""
    registry = _signal_fault_registry()
    name = payload.get("type")
    if name not in registry:
        raise SpecError(f"unknown signal fault type {name!r}")
    return registry[name].from_params(payload.get("params", {}))


def _encode_value(value: Any) -> Any:
    if isinstance(value, frozenset):
        return [_encode_value(item) for item in sorted(value)]
    if isinstance(value, tuple):
        return [_encode_value(item) for item in value]
    return value


def encode_aggregation_bug(bug: AggregationBug) -> Dict[str, Any]:
    """Generic field-wise encoding of a frozen bug dataclass."""
    name = type(bug).__name__
    if name not in _aggregation_bug_registry():
        raise SpecError(f"unregistered aggregation bug type {name!r}")
    params = {
        f.name: _encode_value(getattr(bug, f.name)) for f in dataclasses.fields(bug)
    }
    return {"type": name, "params": params}


def decode_aggregation_bug(payload: Mapping[str, Any]) -> AggregationBug:
    """Inverse of :func:`encode_aggregation_bug`."""
    registry = _aggregation_bug_registry()
    name = payload.get("type")
    if name not in registry:
        raise SpecError(f"unknown aggregation bug type {name!r}")
    return registry[name](**payload.get("params", {}))


def _encode_link_health(health: Mapping[str, LinkHealth]) -> Dict[str, Any]:
    return {
        name: {"up": health[name].up, "forwarding": health[name].forwarding}
        for name in sorted(health)
    }


def _decode_link_health(payload: Mapping[str, Any]) -> Dict[str, LinkHealth]:
    return {
        name: LinkHealth(
            up=bool(entry.get("up", True)),
            forwarding=bool(entry.get("forwarding", True)),
        )
        for name, entry in sorted(payload.items())
    }


@dataclass(frozen=True)
class EpochPlan:
    """The signal faults active during one epoch (on top of the base)."""

    signal_faults: Tuple[SignalFault, ...] = ()

    def to_payload(self) -> Dict[str, Any]:
        return {
            "signal_faults": [encode_signal_fault(f) for f in self.signal_faults],
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "EpochPlan":
        return cls(
            signal_faults=tuple(
                decode_signal_fault(entry)
                for entry in payload.get("signal_faults", [])
            ),
        )


@dataclass
class TimelineSpec:
    """One fully described multi-epoch scenario.

    Attributes:
        topology: The real network.
        demand: Measured demand matrix.
        epochs: Per-epoch fault schedules; ``len(epochs)`` is the
            timeline length.
        link_health: Physical ground truth per canonical link name.
        base_faults: Signal faults active in *every* epoch (e.g. a
            router silent for the whole timeline), applied before the
            epoch's own faults.
        topo_bugs / demand_bugs / drain_bugs: Aggregation bugs wired
            into the control plane for the whole timeline.
        hodor_config: Validation tunables (default config when None).
        jitter_magnitude / probe_loss / use_probes / strategy /
            k_paths / shards_per_pair / infer_faulty_from_counters /
            self_correct / seed: The remaining ``World`` knobs.
        epoch_spacing_s: Seconds between epoch timestamps.
        perturb: Stream-delivery perturbations the streamed mode
            replays the timeline under.  Only in-window perturbations
            (reorder/duplicate) preserve oracle equality; the generator
            never emits the others.
        perturb_seed: Feed seed for the streamed mode.
    """

    topology: Topology
    demand: DemandMatrix
    epochs: Tuple[EpochPlan, ...]
    link_health: Dict[str, LinkHealth] = field(default_factory=dict)
    base_faults: Tuple[SignalFault, ...] = ()
    topo_bugs: Tuple[AggregationBug, ...] = ()
    demand_bugs: Tuple[AggregationBug, ...] = ()
    drain_bugs: Tuple[AggregationBug, ...] = ()
    hodor_config: Optional[HodorConfig] = None
    jitter_magnitude: float = 0.01
    probe_loss: float = 0.0
    use_probes: bool = True
    strategy: str = "ecmp"
    k_paths: int = 4
    shards_per_pair: int = 3
    infer_faulty_from_counters: bool = False
    self_correct: bool = False
    seed: int = 0
    epoch_spacing_s: float = 10.0
    perturb: Perturbations = Perturbations()
    perturb_seed: int = 0

    # ------------------------------------------------------------------
    # Execution

    @property
    def num_epochs(self) -> int:
        return len(self.epochs)

    def timestamp_for(self, index: int) -> float:
        return float(index) * self.epoch_spacing_s

    def faults_for_epoch(self, index: int) -> List[SignalFault]:
        return list(self.base_faults) + list(self.epochs[index].signal_faults)

    def world_for_epoch(self, index: int) -> World:
        """A fully wired :class:`World` for one epoch of the timeline."""
        return World(
            self.topology,
            self.demand,
            link_health=dict(self.link_health),
            signal_faults=self.faults_for_epoch(index),
            topo_bugs=list(self.topo_bugs),
            demand_bugs=list(self.demand_bugs),
            drain_bugs=list(self.drain_bugs),
            hodor_config=self.hodor_config,
            jitter_magnitude=self.jitter_magnitude,
            probe_loss=self.probe_loss,
            use_probes=self.use_probes,
            strategy=self.strategy,
            k_paths=self.k_paths,
            shards_per_pair=self.shards_per_pair,
            seed=self.seed,
            infer_faulty_from_counters=self.infer_faulty_from_counters,
            self_correct=self.self_correct,
        )

    # ------------------------------------------------------------------
    # Serialization

    def to_payload(self) -> Dict[str, Any]:
        """The JSON-safe dict form (see module docstring for contract)."""
        config = self.hodor_config or HodorConfig()
        return {
            "version": SPEC_VERSION,
            "topology": topology_to_dict(self.topology),
            "demand": demand_to_dict(self.demand),
            "epochs": [plan.to_payload() for plan in self.epochs],
            "link_health": _encode_link_health(self.link_health),
            "base_faults": [encode_signal_fault(f) for f in self.base_faults],
            "topo_bugs": [encode_aggregation_bug(b) for b in self.topo_bugs],
            "demand_bugs": [encode_aggregation_bug(b) for b in self.demand_bugs],
            "drain_bugs": [encode_aggregation_bug(b) for b in self.drain_bugs],
            "hodor_config": dataclasses.asdict(config),
            "world": {
                "jitter_magnitude": self.jitter_magnitude,
                "probe_loss": self.probe_loss,
                "use_probes": self.use_probes,
                "strategy": self.strategy,
                "k_paths": self.k_paths,
                "shards_per_pair": self.shards_per_pair,
                "infer_faulty_from_counters": self.infer_faulty_from_counters,
                "self_correct": self.self_correct,
                "seed": self.seed,
            },
            "epoch_spacing_s": self.epoch_spacing_s,
            "perturb": dataclasses.asdict(self.perturb),
            "perturb_seed": self.perturb_seed,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "TimelineSpec":
        """Rebuild a spec from :meth:`to_payload` output.

        Raises:
            SpecError: On unknown versions or unregistered fault types.
        """
        version = payload.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise SpecError(f"unsupported spec version {version!r}")
        try:
            topology = topology_from_dict(payload["topology"])
            demand = demand_from_dict(payload["demand"])
        except (KeyError, TypeError) as exc:
            raise SpecError(f"malformed spec payload: {exc}") from exc
        world = payload.get("world", {})
        return cls(
            topology=topology,
            demand=demand,
            epochs=tuple(
                EpochPlan.from_payload(entry) for entry in payload.get("epochs", [])
            ),
            link_health=_decode_link_health(payload.get("link_health", {})),
            base_faults=tuple(
                decode_signal_fault(entry) for entry in payload.get("base_faults", [])
            ),
            topo_bugs=tuple(
                decode_aggregation_bug(entry) for entry in payload.get("topo_bugs", [])
            ),
            demand_bugs=tuple(
                decode_aggregation_bug(entry)
                for entry in payload.get("demand_bugs", [])
            ),
            drain_bugs=tuple(
                decode_aggregation_bug(entry)
                for entry in payload.get("drain_bugs", [])
            ),
            hodor_config=HodorConfig(**payload.get("hodor_config", {})),
            jitter_magnitude=float(world.get("jitter_magnitude", 0.01)),
            probe_loss=float(world.get("probe_loss", 0.0)),
            use_probes=bool(world.get("use_probes", True)),
            strategy=str(world.get("strategy", "ecmp")),
            k_paths=int(world.get("k_paths", 4)),
            shards_per_pair=int(world.get("shards_per_pair", 3)),
            infer_faulty_from_counters=bool(
                world.get("infer_faulty_from_counters", False)
            ),
            self_correct=bool(world.get("self_correct", False)),
            seed=int(world.get("seed", 0)),
            epoch_spacing_s=float(payload.get("epoch_spacing_s", 10.0)),
            perturb=Perturbations(**payload.get("perturb", {})),
            perturb_seed=int(payload.get("perturb_seed", 0)),
        )

    def canonical_json(self) -> str:
        """The canonical (sorted-key, compact) JSON text of this spec."""
        return canonical_json(self.to_payload())


def canonical_json(payload: Mapping[str, Any]) -> str:
    """Canonical JSON: sorted keys, compact separators, no NaNs."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)


def timeline_from_world(world: World, epochs: int = 3) -> TimelineSpec:
    """Describe an existing :class:`World` as an ``epochs``-long timeline.

    The world's signal faults become base faults (active every epoch),
    exactly reproducing how the differential harnesses replay catalog
    scenarios: the same world, run for several epochs.
    """
    if epochs < 1:
        raise ValueError(f"epochs must be positive, got {epochs}")
    return TimelineSpec(
        topology=world.topology,
        demand=world.measured_demand,
        epochs=tuple(EpochPlan() for _ in range(epochs)),
        link_health=dict(world.link_health),
        base_faults=tuple(world.signal_faults),
        topo_bugs=tuple(world.topo_bugs),
        demand_bugs=tuple(world.demand_bugs),
        drain_bugs=tuple(world.drain_bugs),
        hodor_config=world.hodor_config,
        jitter_magnitude=world.jitter_magnitude,
        probe_loss=world.probe_loss,
        use_probes=world.use_probes,
        strategy=world.strategy,
        k_paths=world.k_paths,
        shards_per_pair=world.shards_per_pair,
        infer_faulty_from_counters=world.infer_faulty_from_counters,
        self_correct=world.self_correct,
        seed=world.seed,
    )
