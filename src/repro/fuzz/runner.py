"""The fuzzing campaign driver.

:class:`FuzzRunner` owns one campaign: a master seed, a wall-clock
budget (and/or a case cap), a :class:`~repro.fuzz.generate.
CaseGenerator`, and the :class:`~repro.fuzz.oracle.TriModalOracle`.
Each iteration derives the next case seed from the master RNG,
generates the timeline, runs the oracle, and -- on failure -- shrinks
the timeline and writes a minimal reproducer to the corpus directory.

The only wall clock is an injectable monotonic ``clock`` callable
(defaulting to :func:`time.monotonic`), used purely to enforce the
budget; nothing derived from it reaches generated cases or reproducer
files, so campaign *content* is a pure function of the master seed.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.fuzz.corpus import Reproducer, save_reproducer
from repro.fuzz.generate import CaseGenerator
from repro.fuzz.oracle import OracleResult, TriModalOracle
from repro.fuzz.shrink import Shrinker
from repro.fuzz.spec import TimelineSpec

__all__ = ["CaseOutcome", "FuzzReport", "FuzzRunner"]


@dataclass(frozen=True)
class CaseOutcome:
    """One generated case and what the oracle said about it."""

    case_index: int
    case_seed: int
    result: OracleResult
    reproducer_path: str = ""

    @property
    def failed(self) -> bool:
        return self.result.failed


@dataclass
class FuzzReport:
    """A whole campaign's accounting."""

    master_seed: int
    cases: int = 0
    failures: int = 0
    elapsed_s: float = 0.0
    outcomes: List[CaseOutcome] = field(default_factory=list)
    fault_census: Dict[str, int] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return self.failures == 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "master_seed": self.master_seed,
            "cases": self.cases,
            "failures": self.failures,
            "elapsed_s": round(self.elapsed_s, 3),
            "fault_census": {
                name: self.fault_census[name]
                for name in sorted(self.fault_census)
            },
            "reproducers": [
                outcome.reproducer_path
                for outcome in self.outcomes
                if outcome.reproducer_path
            ],
        }


class FuzzRunner:
    """Runs a bounded fuzzing campaign.

    Args:
        seed: Master seed; per-case seeds derive from it, so a campaign
            is replayable end to end.
        budget_s: Wall-clock budget.  The campaign stops before
            starting a case that would exceed it.  ``None`` means no
            time bound (then ``max_cases`` must bound the run).
        max_cases: Hard cap on generated cases.
        generator / oracle: Injectable for tests; defaults are the
            stock :class:`CaseGenerator` and :class:`TriModalOracle`.
        shrink: Minimize failures before writing reproducers.
        corpus_dir: Where reproducers land; ``None`` disables writing.
        clock: Monotonic-clock seam (budget enforcement only).
    """

    def __init__(
        self,
        seed: int,
        budget_s: Optional[float] = 30.0,
        max_cases: int = 10_000,
        generator: Optional[CaseGenerator] = None,
        oracle: Optional[TriModalOracle] = None,
        shrink: bool = True,
        corpus_dir: Optional[Path] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget_s is None and max_cases <= 0:
            raise ValueError("need a positive budget_s or max_cases")
        if max_cases < 1:
            raise ValueError(f"max_cases must be positive, got {max_cases}")
        self.seed = seed
        self.budget_s = budget_s
        self.max_cases = max_cases
        self.generator = generator or CaseGenerator()
        self.oracle = oracle or TriModalOracle()
        self.shrink = shrink
        self.corpus_dir = Path(corpus_dir) if corpus_dir is not None else None
        self.clock = clock

    # ------------------------------------------------------------------

    def run(self) -> FuzzReport:
        """Execute the campaign; returns its full accounting."""
        report = FuzzReport(master_seed=self.seed)
        master = random.Random(self.seed)
        started = self.clock()
        for case_index in range(self.max_cases):
            if self.budget_s is not None and self.clock() - started >= self.budget_s:
                break
            case_seed = master.randrange(2**32)
            spec = self.generator.generate(case_seed)
            self._tally(report, spec)
            result = self.oracle.run(spec)
            outcome = CaseOutcome(
                case_index=case_index, case_seed=case_seed, result=result
            )
            if result.failed:
                outcome = self._handle_failure(outcome, spec)
                report.failures += 1
            report.cases += 1
            report.outcomes.append(outcome)
        report.elapsed_s = self.clock() - started
        return report

    # ------------------------------------------------------------------

    def _handle_failure(
        self, outcome: CaseOutcome, spec: TimelineSpec
    ) -> CaseOutcome:
        minimized = spec
        if self.shrink:
            minimized = Shrinker(self.oracle).shrink(spec).spec
        final = self.oracle.run(minimized)
        if final.passed:
            # Budget exhaustion mid-pass cannot regress the candidate
            # (only still-failing candidates are accepted), so a
            # passing minimized spec means flaky oracle behaviour --
            # keep the original failing spec as the reproducer.
            minimized, final = spec, outcome.result
        reproducer = Reproducer(
            reproducer_id=f"{self.seed}_{outcome.case_index}",
            spec=minimized,
            case_seed=outcome.case_seed,
            kind=final.kind,
            detail=final.detail(),
        )
        path = ""
        if self.corpus_dir is not None:
            path = str(save_reproducer(reproducer, self.corpus_dir))
        return CaseOutcome(
            case_index=outcome.case_index,
            case_seed=outcome.case_seed,
            result=final,
            reproducer_path=path,
        )

    @staticmethod
    def _tally(report: FuzzReport, spec: TimelineSpec) -> None:
        names: List[str] = []
        for index in range(spec.num_epochs):
            names.extend(
                type(fault).__name__ for fault in spec.faults_for_epoch(index)
            )
        for bugs in (spec.topo_bugs, spec.demand_bugs, spec.drain_bugs):
            names.extend(type(bug).__name__ for bug in bugs)
        for name in names:
            report.fault_census[name] = report.fault_census.get(name, 0) + 1
