"""The tri-modal (now quad-modal) differential oracle.

One generated timeline is executed through the repo's independent
validation paths and every pair of answers must agree:

1. **Serial reference** -- each epoch's :class:`~repro.scenarios.world.
   World` runs the full Figure 1 pipeline; its embedded serial Hodor
   report is the ground truth.
2. **Engine modes** -- the same snapshots and inputs flow through a
   :class:`~repro.engine.ValidationEngine` in ``full`` and
   ``incremental`` mode (one engine per mode, kept alive across the
   timeline so incremental caching is actually exercised).
3. **Vector** -- the same timeline again through the array-compiled
   backend (:mod:`repro.core.vector`), whose delta-aware epochs must
   reproduce the per-entity units finding-for-finding.
4. **Streamed** -- the snapshots are decomposed into per-router feeds
   (optionally perturbed in-window), re-assembled by the watermark
   :class:`~repro.stream.assembler.EpochAssembler`, and validated by
   the ingest pipeline.

A verdict or provenance divergence in any mode at any epoch -- or any
crash while executing the timeline -- is a failure.  The ``hooks``
seam exists for mutation-testing the harness itself: a hook maps
``(epoch_index, report) -> report`` for one mode, letting tests plant
a mode-divergence bug and prove the fuzzer finds and shrinks it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.report import ValidationReport
from repro.engine import ValidationEngine, compare_reports
from repro.fuzz.spec import TimelineSpec
from repro.stream import EpochAssembler, StreamPipeline, make_feeds

__all__ = ["ModeDivergence", "OracleResult", "TriModalOracle"]

#: A mutation-test hook: (epoch_index, report) -> possibly-altered report.
ReportHook = Callable[[int, ValidationReport], ValidationReport]


@dataclass(frozen=True)
class ModeDivergence:
    """One mode disagreeing with the serial reference at one epoch."""

    mode: str
    epoch_index: int
    diffs: Tuple[str, ...]

    def summary(self) -> str:
        head = self.diffs[0] if self.diffs else "provenance diverged"
        return f"{self.mode} mode, epoch {self.epoch_index}: {head}"


@dataclass(frozen=True)
class OracleResult:
    """The oracle's verdict on one timeline."""

    passed: bool
    epochs: int
    crash: str = ""
    divergences: Tuple[ModeDivergence, ...] = ()

    @property
    def failed(self) -> bool:
        return not self.passed

    @property
    def kind(self) -> str:
        """``"pass"``, ``"crash"``, or ``"divergence"``."""
        if self.passed:
            return "pass"
        return "crash" if self.crash else "divergence"

    def detail(self) -> str:
        if self.passed:
            return "all modes agree"
        if self.crash:
            return self.crash
        return "; ".join(d.summary() for d in self.divergences[:3])


def _provenance_dict(report: ValidationReport) -> Dict[str, Dict]:
    return {name: record.to_dict() for name, record in report.provenance.items()}


class TriModalOracle:
    """Runs a :class:`TimelineSpec` through all three execution paths.

    Args:
        lateness_s: Assembler lateness window for the streamed mode.
            Must stay above the spec's reorder jitter or in-window
            perturbations would legitimately change results.
        hooks: Optional per-mode report hooks (``"full"``,
            ``"incremental"``, ``"vector"``, ``"streamed"``) used by
            mutation tests to plant divergence bugs; production runs
            pass none.
    """

    MODES: Tuple[str, ...] = ("full", "incremental", "vector", "streamed")

    #: Oracle mode -> (engine mode, engine backend) for the engine runs.
    _ENGINE_MODES: Tuple[Tuple[str, str, str], ...] = (
        ("full", "full", "python"),
        ("incremental", "incremental", "python"),
        ("vector", "full", "vector"),
    )

    def __init__(
        self,
        lateness_s: float = 1.0,
        hooks: Optional[Mapping[str, ReportHook]] = None,
    ) -> None:
        self.lateness_s = lateness_s
        self.hooks: Dict[str, ReportHook] = dict(hooks or {})

    # ------------------------------------------------------------------

    def run(self, spec: TimelineSpec) -> OracleResult:
        """Execute the timeline; any disagreement or crash fails it."""
        try:
            epochs, inputs_by_ts, reference = self._reference_run(spec)
        except Exception as exc:  # noqa: BLE001 - a crash IS the finding
            return OracleResult(
                passed=False,
                epochs=spec.num_epochs,
                crash=f"reference run crashed: {type(exc).__name__}: {exc}",
            )

        divergences: List[ModeDivergence] = []
        for mode, engine_mode, backend in self._ENGINE_MODES:
            try:
                reports = self._engine_run(
                    spec, epochs, inputs_by_ts, mode, engine_mode, backend
                )
            except Exception as exc:  # noqa: BLE001
                return OracleResult(
                    passed=False,
                    epochs=spec.num_epochs,
                    crash=f"{mode} mode crashed: {type(exc).__name__}: {exc}",
                )
            divergences.extend(self._compare(mode, reference, reports))

        try:
            reports = self._streamed_run(spec, epochs, inputs_by_ts)
        except Exception as exc:  # noqa: BLE001
            return OracleResult(
                passed=False,
                epochs=spec.num_epochs,
                crash=f"streamed mode crashed: {type(exc).__name__}: {exc}",
            )
        divergences.extend(self._compare("streamed", reference, reports))

        return OracleResult(
            passed=not divergences,
            epochs=spec.num_epochs,
            divergences=tuple(divergences),
        )

    # ------------------------------------------------------------------

    def _reference_run(self, spec: TimelineSpec):
        epochs = []
        inputs_by_ts = {}
        reference: List[ValidationReport] = []
        for index in range(spec.num_epochs):
            world = spec.world_for_epoch(index)
            outcome = world.run_epoch(timestamp=spec.timestamp_for(index))
            epochs.append((outcome.snapshot.timestamp, outcome.snapshot))
            inputs_by_ts[outcome.snapshot.timestamp] = outcome.inputs
            reference.append(outcome.report)
        return epochs, inputs_by_ts, reference

    def _engine_run(
        self, spec, epochs, inputs_by_ts, mode, engine_mode, backend
    ) -> List[ValidationReport]:
        hook = self.hooks.get(mode)
        reports = []
        config = spec.hodor_config
        with ValidationEngine(
            spec.topology, config=config, mode=engine_mode, backend=backend
        ) as engine:
            for index, (timestamp, snapshot) in enumerate(epochs):
                report = engine.validate(snapshot, inputs_by_ts[timestamp])
                if hook is not None:
                    report = hook(index, report)
                reports.append(report)
        return reports

    def _streamed_run(self, spec, epochs, inputs_by_ts) -> List[ValidationReport]:
        hook = self.hooks.get("streamed")
        feeds = make_feeds(epochs, perturb=spec.perturb, seed=spec.perturb_seed)
        assembler = EpochAssembler(list(feeds), lateness_s=self.lateness_s)
        with ValidationEngine(
            spec.topology, config=spec.hodor_config, mode="full"
        ) as engine:
            pipeline = StreamPipeline(
                list(feeds.values()), assembler, engine, inputs_for=inputs_by_ts
            )
            result = pipeline.run()
        reports = list(result.reports)
        if hook is not None:
            reports = [hook(index, report) for index, report in enumerate(reports)]
        return reports

    def _compare(
        self,
        mode: str,
        reference: List[ValidationReport],
        candidate: List[ValidationReport],
    ) -> List[ModeDivergence]:
        divergences = []
        if len(candidate) != len(reference):
            return [
                ModeDivergence(
                    mode,
                    -1,
                    (
                        f"epoch count mismatch: reference {len(reference)}, "
                        f"{mode} produced {len(candidate)}",
                    ),
                )
            ]
        for index, (ref, got) in enumerate(zip(reference, candidate)):
            diffs = compare_reports(ref, got)
            if not diffs and _provenance_dict(ref) != _provenance_dict(got):
                diffs = ["provenance records diverged"]
            if diffs:
                divergences.append(ModeDivergence(mode, index, tuple(diffs[:5])))
        return divergences
