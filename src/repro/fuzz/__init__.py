"""Scenario fuzzing: random fault timelines, a tri-modal differential
oracle, deterministic shrinking, and a reproducer corpus.

The package closes the loop the hand-written catalog cannot: instead
of trusting that the full, incremental, and streamed execution paths
agree on the scenarios we thought of, :class:`FuzzRunner` generates
randomized multi-epoch fault timelines and *checks* that they agree on
each one.  Any divergence (or crash) is shrunk by :class:`Shrinker` to
a minimal :class:`TimelineSpec` and written to the regression corpus,
which tier-1 replays forever after.  See ``docs/FUZZING.md``.
"""

from repro.fuzz.corpus import (
    Reproducer,
    load_corpus,
    load_reproducer,
    reproducer_scenario,
    save_reproducer,
)
from repro.fuzz.generate import CaseGenerator
from repro.fuzz.oracle import ModeDivergence, OracleResult, TriModalOracle
from repro.fuzz.runner import CaseOutcome, FuzzReport, FuzzRunner
from repro.fuzz.shrink import ShrinkResult, Shrinker
from repro.fuzz.spec import (
    EpochPlan,
    SpecError,
    TimelineSpec,
    canonical_json,
    timeline_from_world,
)

__all__ = [
    "CaseGenerator",
    "CaseOutcome",
    "EpochPlan",
    "FuzzReport",
    "FuzzRunner",
    "ModeDivergence",
    "OracleResult",
    "Reproducer",
    "ShrinkResult",
    "Shrinker",
    "SpecError",
    "TimelineSpec",
    "TriModalOracle",
    "canonical_json",
    "load_corpus",
    "load_reproducer",
    "reproducer_scenario",
    "save_reproducer",
    "timeline_from_world",
]
