"""Seeded random scenario generation.

:class:`CaseGenerator` turns one integer seed into one
:class:`~repro.fuzz.spec.TimelineSpec`: a small synthetic topology, a
gravity demand matrix, a per-epoch schedule of composed signal faults,
optional timeline-wide faults and aggregation bugs, optional physical
link damage, and an in-window stream perturbation.  Everything derives
from a single :class:`random.Random` seeded with the case seed, so a
case seed *is* the case -- regeneration is exact, which the shrinker
and the regression corpus rely on.

The generator only emits configurations under which the tri-modal
oracle's equality contract is expected to hold: stream perturbations
are limited to in-window reordering and duplication (late/dropped/
failing deliveries legitimately change streamed results and are
exercised separately in the pathological-assembler tests), and
whole-router silence is timeline-wide rather than per-epoch so the
feed set stays stable across the streamed replay.
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence, Tuple

from repro.fuzz.spec import EpochPlan, TimelineSpec
from repro.faults.aggregation_faults import (
    IgnoredDrain,
    LivenessMisreport,
    PartialTopologyStitch,
)
from repro.faults.base import SignalFault
from repro.faults.external_faults import (
    DoubleCountedDemand,
    PartialDemandAggregation,
    ThrottledDemandMismatch,
)
from repro.faults.intent_faults import InconsistentLinkDrain, SpuriousDrain
from repro.faults.router_faults import (
    CorrelatedCounterFault,
    DelayedTelemetry,
    FormatChangeTelemetry,
    MalformedTelemetry,
    MissingTelemetry,
    ProbeOutage,
    RandomCounterCorruption,
    UnitChangeTelemetry,
    WrongLinkStatus,
    ZeroedDuplicateTelemetry,
)
from repro.net.demand import gravity_demand
from repro.net.topology import Topology
from repro.stream.feed import Perturbations
from repro.telemetry.probes import LinkHealth
from repro.topologies.synthetic import (
    gnp_topology,
    grid_topology,
    line_topology,
    ring_topology,
    star_topology,
)

__all__ = ["CaseGenerator"]

#: Topology families the generator draws from.
TOPOLOGY_KINDS: Tuple[str, ...] = ("line", "ring", "star", "grid", "gnp")


def _sample_edges(
    rng: random.Random, topology: Topology, count: int
) -> List[Tuple[str, str]]:
    edges = sorted(topology.directed_edges())
    count = min(count, len(edges))
    return rng.sample(edges, count)


def _sample_nodes(rng: random.Random, topology: Topology, count: int) -> List[str]:
    nodes = sorted(topology.node_names())
    count = min(count, len(nodes))
    return rng.sample(nodes, count)


class CaseGenerator:
    """Deterministic seed -> :class:`TimelineSpec` factory.

    Args:
        min_nodes / max_nodes: Synthetic topology size range.
        min_epochs / max_epochs: Timeline length range.
        max_faults_per_epoch: Upper bound on per-epoch fault count
            (each epoch draws 0..N faults from the palette).
    """

    def __init__(
        self,
        min_nodes: int = 4,
        max_nodes: int = 10,
        min_epochs: int = 2,
        max_epochs: int = 4,
        max_faults_per_epoch: int = 3,
    ) -> None:
        if min_nodes < 3:
            raise ValueError(f"min_nodes must be at least 3, got {min_nodes}")
        if max_nodes < min_nodes:
            raise ValueError("max_nodes must be >= min_nodes")
        if min_epochs < 1:
            raise ValueError(f"min_epochs must be positive, got {min_epochs}")
        if max_epochs < min_epochs:
            raise ValueError("max_epochs must be >= min_epochs")
        self.min_nodes = min_nodes
        self.max_nodes = max_nodes
        self.min_epochs = min_epochs
        self.max_epochs = max_epochs
        self.max_faults_per_epoch = max_faults_per_epoch

    # ------------------------------------------------------------------

    def generate(self, seed: int) -> TimelineSpec:
        """The spec for one case seed (pure function of the seed)."""
        rng = random.Random(seed)
        topology = self.sample_topology(rng)
        nodes = topology.node_names()
        demand = gravity_demand(
            nodes, total=2.0 * len(nodes), seed=rng.randrange(2**31)
        )
        num_epochs = rng.randint(self.min_epochs, self.max_epochs)
        epochs = tuple(
            EpochPlan(signal_faults=tuple(self.sample_epoch_faults(rng, topology)))
            for _ in range(num_epochs)
        )
        base_faults: Tuple[SignalFault, ...] = ()
        if rng.random() < 0.25:
            base_faults = (self._sample_base_fault(rng, topology),)
        topo_bugs, demand_bugs, drain_bugs = self._sample_bugs(rng, topology)
        return TimelineSpec(
            topology=topology,
            demand=demand,
            epochs=epochs,
            link_health=self._sample_link_health(rng, topology),
            base_faults=base_faults,
            topo_bugs=topo_bugs,
            demand_bugs=demand_bugs,
            drain_bugs=drain_bugs,
            seed=rng.randrange(2**16),
            perturb=self._sample_perturbations(rng),
            perturb_seed=rng.randrange(2**16),
        )

    # ------------------------------------------------------------------

    def sample_topology(self, rng: random.Random) -> Topology:
        """One small synthetic topology (4-10 nodes by default)."""
        kind = rng.choice(TOPOLOGY_KINDS)
        if kind == "line":
            return line_topology(rng.randint(self.min_nodes, self.max_nodes))
        if kind == "ring":
            return ring_topology(rng.randint(self.min_nodes, self.max_nodes))
        if kind == "star":
            return star_topology(
                rng.randint(self.min_nodes - 1, self.max_nodes - 1)
            )
        if kind == "grid":
            rows = rng.randint(2, 3)
            cols = rng.randint(2, 3)
            return grid_topology(rows, cols)
        return gnp_topology(
            rng.randint(self.min_nodes, self.max_nodes),
            p=rng.uniform(0.3, 0.5),
            seed=rng.randrange(2**31),
        )

    def sample_epoch_faults(
        self, rng: random.Random, topology: Topology
    ) -> List[SignalFault]:
        """0..max_faults_per_epoch composed faults for one epoch."""
        count = rng.randint(0, self.max_faults_per_epoch)
        return [self._sample_fault(rng, topology) for _ in range(count)]

    # ------------------------------------------------------------------

    def _palette(
        self, rng: random.Random, topology: Topology
    ) -> Sequence[Callable[[], SignalFault]]:
        """Weighted fault constructors over this topology's elements."""
        return (
            lambda: ZeroedDuplicateTelemetry(
                interfaces=_sample_edges(rng, topology, rng.randint(1, 2))
            ),
            lambda: MalformedTelemetry(
                interfaces=_sample_edges(rng, topology, rng.randint(1, 2))
            ),
            lambda: FormatChangeTelemetry(
                interfaces=_sample_edges(rng, topology, 1)
            ),
            lambda: UnitChangeTelemetry(
                interfaces=_sample_edges(rng, topology, 1),
                factor=rng.choice((0.001, 1000.0)),
            ),
            lambda: DelayedTelemetry(
                interfaces=_sample_edges(rng, topology, 1),
                delay_s=float(rng.randint(120, 600)),
                drift=round(rng.uniform(0.3, 0.8), 3),
            ),
            lambda: MissingTelemetry(
                interfaces=_sample_edges(rng, topology, rng.randint(1, 2))
            ),
            lambda: WrongLinkStatus(
                interfaces=_sample_edges(rng, topology, 1),
                report_up=rng.random() < 0.5,
            ),
            lambda: SpuriousDrain(
                nodes=_sample_nodes(rng, topology, 1),
                claimed_reason=rng.choice(("", "faulty-link", "maintenance")),
            ),
            lambda: InconsistentLinkDrain(
                interfaces=_sample_edges(rng, topology, 1)
            ),
            lambda: RandomCounterCorruption(
                count=rng.randint(1, 2),
                mode=rng.choice(("zero", "scale", "missing")),
                side=rng.choice(("rx", "tx", "both")),
                factor=rng.choice((0.25, 3.0)),
            ),
            lambda: CorrelatedCounterFault(
                nodes=_sample_nodes(rng, topology, 2),
                factor=rng.choice((0.5, 2.0)),
            ),
            lambda: ProbeOutage(nodes=_sample_nodes(rng, topology, 1)),
        )

    def _sample_fault(self, rng: random.Random, topology: Topology) -> SignalFault:
        palette = self._palette(rng, topology)
        return palette[rng.randrange(len(palette))]()

    def _sample_base_fault(
        self, rng: random.Random, topology: Topology
    ) -> SignalFault:
        # Timeline-wide faults: a router silent for the whole run (so
        # the streamed replay never expects its feed) or a correlated
        # vendor bug on a node subset.
        if rng.random() < 0.5:
            return MissingTelemetry(nodes=_sample_nodes(rng, topology, 1))
        return CorrelatedCounterFault(
            nodes=_sample_nodes(rng, topology, 2), factor=0.5
        )

    def _sample_bugs(self, rng: random.Random, topology: Topology):
        topo_bugs: Tuple = ()
        demand_bugs: Tuple = ()
        drain_bugs: Tuple = ()
        roll = rng.random()
        if roll < 0.15:
            topo_bugs = (
                PartialTopologyStitch(frozenset(_sample_nodes(rng, topology, 1))),
            )
        elif roll < 0.3:
            links = sorted(link.name for link in topology.links())
            picked = rng.sample(links, min(2, len(links)))
            topo_bugs = (
                LivenessMisreport(frozenset(picked), report_up=rng.random() < 0.5),
            )
        elif roll < 0.45:
            demand_bugs = (
                rng.choice(
                    (
                        PartialDemandAggregation(
                            drop_fraction=0.4, seed=rng.randrange(2**16)
                        ),
                        DoubleCountedDemand(
                            fraction=0.3,
                            multiplier=2.0,
                            seed=rng.randrange(2**16),
                        ),
                        ThrottledDemandMismatch(admitted_fraction=0.6),
                    )
                ),
            )
        elif roll < 0.5:
            drain_bugs = (
                IgnoredDrain(frozenset(_sample_nodes(rng, topology, 1))),
            )
        return topo_bugs, demand_bugs, drain_bugs

    def _sample_link_health(self, rng: random.Random, topology: Topology):
        if rng.random() >= 0.2:
            return {}
        links = sorted(link.name for link in topology.links())
        name = rng.choice(links)
        if rng.random() < 0.5:
            return {name: LinkHealth(up=False)}
        return {name: LinkHealth(up=True, forwarding=False)}

    def _sample_perturbations(self, rng: random.Random) -> Perturbations:
        # In-window perturbations only: reorder jitter stays below the
        # oracle's 1.0s lateness window, so streamed == batch holds.
        roll = rng.random()
        if roll < 0.5:
            return Perturbations()
        if roll < 0.7:
            return Perturbations(reorder=0.5, reorder_jitter_s=0.4)
        if roll < 0.85:
            return Perturbations(duplicate=0.4)
        return Perturbations(reorder=0.3, duplicate=0.3, reorder_jitter_s=0.4)
