"""Deterministic timeline shrinking.

Given a failing :class:`~repro.fuzz.spec.TimelineSpec`, the shrinker
greedily applies reduction passes -- drop epochs, drop faults, drop
aggregation bugs, drop link damage, clear stream perturbations, remove
unreferenced topology nodes, zero demand entries -- keeping a
candidate only when the oracle still fails on it.  Passes repeat until
a fixpoint or until the oracle-evaluation budget runs out.  Everything
iterates in a fixed order with no randomness, so the same failing
input always shrinks to the same minimal reproducer.

This is delta debugging in the ddmin spirit, specialised to the
timeline structure: epoch-level reductions run first because they cut
the most oracle work per accepted step, then fault-level, then the
world-level simplifications.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.fuzz.oracle import TriModalOracle
from repro.fuzz.spec import EpochPlan, TimelineSpec
from repro.net.topology import Topology
from repro.stream.feed import Perturbations

__all__ = ["ShrinkResult", "Shrinker"]


@dataclass(frozen=True)
class ShrinkResult:
    """The minimized spec plus accounting of the search."""

    spec: TimelineSpec
    checks: int
    reductions: int

    @property
    def total_faults(self) -> int:
        return len(self.spec.base_faults) + sum(
            len(plan.signal_faults) for plan in self.spec.epochs
        )


class Shrinker:
    """Greedy deterministic minimizer for failing timelines.

    Args:
        oracle: The oracle that decides "still failing".  Must be the
            same oracle (same hooks) that found the original failure.
        max_checks: Budget on oracle evaluations; shrinking stops --
            returning the best candidate so far -- when it is spent.
    """

    def __init__(self, oracle: TriModalOracle, max_checks: int = 250) -> None:
        if max_checks < 1:
            raise ValueError(f"max_checks must be positive, got {max_checks}")
        self.oracle = oracle
        self.max_checks = max_checks
        self._checks = 0
        self._reductions = 0

    # ------------------------------------------------------------------

    def shrink(self, spec: TimelineSpec) -> ShrinkResult:
        """Minimize ``spec``; it must currently fail the oracle."""
        self._checks = 0
        self._reductions = 0
        current = spec
        passes: Tuple[Callable[[TimelineSpec], Tuple[TimelineSpec, bool]], ...] = (
            self._drop_epochs,
            self._drop_epoch_faults,
            self._drop_base_faults,
            self._drop_bugs,
            self._drop_link_health,
            self._clear_perturbations,
            self._drop_nodes,
            self._zero_demand_entries,
        )
        changed = True
        while changed and self._checks < self.max_checks:
            changed = False
            for reduce_pass in passes:
                current, did = reduce_pass(current)
                changed = changed or did
        return ShrinkResult(spec=current, checks=self._checks, reductions=self._reductions)

    # ------------------------------------------------------------------

    def _still_fails(self, candidate: TimelineSpec) -> bool:
        if self._checks >= self.max_checks:
            return False
        self._checks += 1
        return self.oracle.run(candidate).failed

    def _accept(self, candidate: TimelineSpec) -> bool:
        if self._still_fails(candidate):
            self._reductions += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Passes (each returns (new_spec, changed_anything))

    def _drop_epochs(self, spec: TimelineSpec) -> Tuple[TimelineSpec, bool]:
        changed = False
        current = spec
        index = len(current.epochs) - 1
        while index >= 0 and len(current.epochs) > 1:
            epochs = current.epochs[:index] + current.epochs[index + 1 :]
            candidate = dataclasses.replace(current, epochs=epochs)
            if self._accept(candidate):
                current = candidate
                changed = True
            index -= 1
        return current, changed

    def _drop_epoch_faults(self, spec: TimelineSpec) -> Tuple[TimelineSpec, bool]:
        changed = False
        current = spec
        for epoch_index in range(len(current.epochs)):
            fault_index = len(current.epochs[epoch_index].signal_faults) - 1
            while fault_index >= 0:
                plan = current.epochs[epoch_index]
                faults = (
                    plan.signal_faults[:fault_index]
                    + plan.signal_faults[fault_index + 1 :]
                )
                epochs = (
                    current.epochs[:epoch_index]
                    + (EpochPlan(signal_faults=faults),)
                    + current.epochs[epoch_index + 1 :]
                )
                candidate = dataclasses.replace(current, epochs=epochs)
                if self._accept(candidate):
                    current = candidate
                    changed = True
                fault_index -= 1
        return current, changed

    def _drop_base_faults(self, spec: TimelineSpec) -> Tuple[TimelineSpec, bool]:
        changed = False
        current = spec
        index = len(current.base_faults) - 1
        while index >= 0:
            faults = current.base_faults[:index] + current.base_faults[index + 1 :]
            candidate = dataclasses.replace(current, base_faults=faults)
            if self._accept(candidate):
                current = candidate
                changed = True
            index -= 1
        return current, changed

    def _drop_bugs(self, spec: TimelineSpec) -> Tuple[TimelineSpec, bool]:
        changed = False
        current = spec
        for attr in ("topo_bugs", "demand_bugs", "drain_bugs"):
            index = len(getattr(current, attr)) - 1
            while index >= 0:
                bugs = getattr(current, attr)
                candidate = dataclasses.replace(
                    current, **{attr: bugs[:index] + bugs[index + 1 :]}
                )
                if self._accept(candidate):
                    current = candidate
                    changed = True
                index -= 1
        return current, changed

    def _drop_link_health(self, spec: TimelineSpec) -> Tuple[TimelineSpec, bool]:
        changed = False
        current = spec
        for name in sorted(spec.link_health):
            if name not in current.link_health:
                continue
            health = {
                key: value
                for key, value in current.link_health.items()
                if key != name
            }
            candidate = dataclasses.replace(current, link_health=health)
            if self._accept(candidate):
                current = candidate
                changed = True
        return current, changed

    def _clear_perturbations(self, spec: TimelineSpec) -> Tuple[TimelineSpec, bool]:
        p = spec.perturb
        if not (p.reorder or p.duplicate or p.delay or p.drop or p.fail):
            return spec, False
        candidate = dataclasses.replace(spec, perturb=Perturbations())
        if self._accept(candidate):
            return candidate, True
        return spec, False

    def _drop_nodes(self, spec: TimelineSpec) -> Tuple[TimelineSpec, bool]:
        changed = False
        current = spec
        for name in sorted(spec.topology.node_names()):
            if current.topology.num_nodes <= 3:
                break
            if not current.topology.has_node(name):
                continue
            if name in self._referenced_nodes(current):
                continue
            topology = self._topology_without(current.topology, name)
            if topology is None:
                continue
            demand = current.demand.restricted_to(topology.node_names())
            candidate = dataclasses.replace(
                current, topology=topology, demand=demand
            )
            if self._accept(candidate):
                current = candidate
                changed = True
        return current, changed

    def _zero_demand_entries(self, spec: TimelineSpec) -> Tuple[TimelineSpec, bool]:
        changed = False
        current = spec
        for src, dst, _rate in spec.demand.nonzero_entries():
            if self._checks >= self.max_checks:
                break
            if current.demand[src, dst] == 0.0:  # lint: ignore[F1]
                continue
            demand = current.demand.copy()
            demand[src, dst] = 0.0
            candidate = dataclasses.replace(current, demand=demand)
            if self._accept(candidate):
                current = candidate
                changed = True
        return current, changed

    # ------------------------------------------------------------------

    def _referenced_nodes(self, spec: TimelineSpec) -> set:
        """Every node a remaining fault/bug/link-health entry names."""
        names = set()
        for index in range(spec.num_epochs):
            for fault in spec.faults_for_epoch(index):
                for key, value in fault.to_params().items():
                    names.update(self._names_from_param(key, value))
        for bugs in (spec.topo_bugs, spec.demand_bugs, spec.drain_bugs):
            for bug in bugs:
                for field in dataclasses.fields(bug):
                    value = getattr(bug, field.name)
                    names.update(self._names_from_param(field.name, value))
        for link_name in spec.link_health:
            names.update(link_name.split("~"))
        return names

    @staticmethod
    def _names_from_param(key: str, value: object) -> List[str]:
        if value is None:
            return []
        if key in ("nodes", "missing_nodes"):
            return [str(name) for name in sorted(value)]  # type: ignore[call-overload]
        if key == "interfaces":
            names: List[str] = []
            for pair in value:  # type: ignore[union-attr]
                names.extend(str(end) for end in pair)
            return names
        if key in ("links",):
            names = []
            for link_name in sorted(value):  # type: ignore[call-overload]
                names.extend(str(link_name).split("~"))
            return names
        if key == "drop_pairs":
            names = []
            for pair in sorted(value):  # type: ignore[call-overload]
                names.extend(str(end) for end in pair)
            return names
        return []

    @staticmethod
    def _topology_without(topology: Topology, name: str):
        """``topology`` minus one node, or ``None`` if that disconnects it."""
        reduced = Topology(topology.name)
        for node in topology.nodes():
            if node.name != name:
                reduced.add_node(node)
        for link in topology.links():
            if name not in (link.a, link.b):
                reduced.add_link(link)
        if reduced.num_nodes < 2 or not reduced.is_connected():
            return None
        return reduced
