"""The reproducer corpus: minimal failing (or pinned) timelines on disk.

Each corpus entry is one JSON file holding a :class:`Reproducer`: a
minimized :class:`~repro.fuzz.spec.TimelineSpec` plus the case seed
that generated it and what the oracle observed.  Files are written in
canonical JSON (sorted keys), so a reproducer committed to
``tests/fuzz/regressions/`` never drifts and diffs cleanly.

Two kinds of entries live in a corpus:

- ``"divergence"`` / ``"crash"`` -- a bug the fuzzer found, shrunk to
  its minimal form.  Once the bug is fixed the entry stays: the tier-1
  replay test runs every corpus entry through the tri-modal oracle and
  asserts it passes, so the bug can never silently return.
- ``"pinned"`` -- an interesting generated case that passes today,
  committed to keep its coverage stable across refactors.

A reproducer can also be promoted to a first-class
:class:`~repro.scenarios.catalog.OutageScenario` via
:func:`reproducer_scenario` -- the self-contained catalog-entry form
the triage workflow in ``docs/FUZZING.md`` describes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping

from repro.fuzz.spec import SpecError, TimelineSpec, canonical_json
from repro.scenarios.catalog import Category, OutageScenario

__all__ = [
    "Reproducer",
    "save_reproducer",
    "load_reproducer",
    "load_corpus",
    "reproducer_scenario",
]

#: Corpus files match this glob.
REPRODUCER_GLOB = "repro_*.json"

_KINDS = ("divergence", "crash", "pinned")


@dataclass(frozen=True)
class Reproducer:
    """One corpus entry.

    Attributes:
        reproducer_id: Stable identifier; also the file stem.
        spec: The (minimized) timeline.
        case_seed: Generator seed that produced the original case.
        kind: ``"divergence"``, ``"crash"``, or ``"pinned"``.
        detail: Human-readable failure summary at capture time.
        observed: Free-form observations at capture time (e.g. the
            first epoch's ``detected``/``damaged`` flags), used when
            promoting to a catalog scenario.
    """

    reproducer_id: str
    spec: TimelineSpec
    case_seed: int
    kind: str
    detail: str = ""
    observed: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")

    def to_payload(self) -> Dict[str, Any]:
        return {
            "reproducer_id": self.reproducer_id,
            "case_seed": self.case_seed,
            "kind": self.kind,
            "detail": self.detail,
            "observed": dict(self.observed),
            "spec": self.spec.to_payload(),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Reproducer":
        try:
            return cls(
                reproducer_id=str(payload["reproducer_id"]),
                spec=TimelineSpec.from_payload(payload["spec"]),
                case_seed=int(payload["case_seed"]),
                kind=str(payload.get("kind", "pinned")),
                detail=str(payload.get("detail", "")),
                observed=dict(payload.get("observed", {})),
            )
        except KeyError as exc:
            raise SpecError(f"reproducer payload missing {exc}") from exc

    def canonical_json(self) -> str:
        return canonical_json(self.to_payload())


def save_reproducer(reproducer: Reproducer, directory: Path) -> Path:
    """Write one corpus entry; returns the file path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"repro_{reproducer.reproducer_id}.json"
    path.write_text(reproducer.canonical_json() + "\n", encoding="utf-8")
    return path


def load_reproducer(path: Path) -> Reproducer:
    """Load one corpus entry.

    Raises:
        SpecError: On malformed files.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SpecError(f"unreadable reproducer {path}: {exc}") from exc
    return Reproducer.from_payload(payload)


def load_corpus(directory: Path) -> List[Reproducer]:
    """Every corpus entry under ``directory``, sorted by file name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [
        load_reproducer(path) for path in sorted(directory.glob(REPRODUCER_GLOB))
    ]


def reproducer_scenario(reproducer: Reproducer) -> OutageScenario:
    """Promote a reproducer to a self-contained catalog entry.

    The scenario pins the reproducer's own seed: its builder ignores
    the caller's seed argument, because a reproducer is only meaningful
    at the exact seed it was minimized under.
    """
    spec = reproducer.spec
    observed = reproducer.observed
    category = _category_for(spec)
    return OutageScenario(
        scenario_id=f"FZ-{reproducer.reproducer_id}",
        title=f"fuzzer reproducer {reproducer.reproducer_id}",
        paper_section="fuzz",
        category=category,
        description=reproducer.detail or "minimized fuzzer-generated timeline",
        expect_detection=bool(observed.get("detected", False)),
        expected_channels=tuple(observed.get("channels", ())),
        expect_damage=bool(observed.get("damaged", False)),
        builder=lambda _seed: spec.world_for_epoch(0),
    )


def _category_for(spec: TimelineSpec) -> str:
    if spec.demand_bugs:
        return Category.EXTERNAL_INPUT
    if spec.topo_bugs or spec.drain_bugs:
        return Category.CONTROL_AGGREGATION
    has_faults = spec.base_faults or any(
        plan.signal_faults for plan in spec.epochs
    )
    if has_faults:
        return Category.ROUTER_TELEMETRY
    return Category.LEGITIMATE
