"""Command-line entry point: ``python -m repro <command>``.

Exposes the library's studies and demos without writing any Python:

- ``demo``        the Figure 3 worked example,
- ``replay``      the Section 2 outage catalog vs three validators,
- ``perturb``     the Section 4.1 demand-perturbation study,
- ``thresholds``  the tau_h sensitivity sweep (footnote 2),
- ``hardening``   the hardening-efficacy ablation,
- ``drains``      drain validation incl. the reasons extension,
- ``scale``       validation cost vs network size,
- ``engine``      replay scenario timelines through the always-on engine,
- ``trace``       render an exported engine trace (spans + provenance),
- ``scenarios``   list the outage catalog,
- ``fuzz``        randomized fault timelines vs the tri-modal oracle,
- ``lint``        static purity/determinism analysis of the pipeline,
- ``history``     read verdict history stores (tail/trends/query/compact),
- ``fleet``       validate many tenant WANs across a worker-process pool.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro.core import Hodor
    from repro.net import NetworkSimulator
    from repro.telemetry import Jitter, ProbeEngine, TelemetryCollector
    from repro.topologies import fig3_demand, fig3_network

    topology = fig3_network()
    demand = fig3_demand()
    truth = NetworkSimulator(topology, demand, strategy="single").run()
    snapshot = TelemetryCollector(Jitter(0.0), probe_engine=ProbeEngine(seed=0)).collect(truth)
    snapshot.counters[("A", "B")].tx_rate = 120.0

    hodor = Hodor(topology)
    report = hodor.validate_demand(snapshot, demand)
    repaired = report.hardened.edge_flows[("A", "B")]
    print("Figure 3 worked example (tx@A->B corrupted to 120, truth 76):")
    print(f"  repaired value : {repaired.value:g} ({repaired.confidence.value})")
    print(report.render())
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.experiments import OutageStudy, format_table

    study = OutageStudy(history_epochs=args.history, seed=args.seed)
    outcomes = study.run()
    rows = [
        [
            o.scenario.scenario_id,
            o.scenario.title[:44],
            "yes" if o.hodor_flagged else "no",
            "yes" if o.static_flagged else "no",
            "yes" if o.anomaly_flagged else "no",
            "yes" if o.damaged else "no",
        ]
        for o in outcomes
    ]
    print(format_table(["id", "scenario", "hodor", "static", "anomaly", "damage"], rows))
    summary = OutageStudy.summarize(outcomes)
    print()
    for key, value in summary.items():
        print(f"{key:32}: {value:.0%}")
    return 0


def _cmd_perturb(args: argparse.Namespace) -> int:
    from repro.experiments import PerturbationStudy, format_percent, format_table

    study = PerturbationStudy(matrices=args.matrices, seed=args.seed)
    rows = study.run(zero_counts=tuple(range(1, args.max_zeroed + 1)), trials=args.trials)
    print(
        format_table(
            ["zeroed", "detection rate"],
            [[row.zeroed, format_percent(row.detection_rate)] for row in rows],
        )
    )
    print(f"\nfalse positives on clean matrices: {format_percent(study.false_positive_rate())}")
    return 0


def _cmd_thresholds(args: argparse.Namespace) -> int:
    from repro.experiments import ThresholdStudy, format_percent, format_table

    study = ThresholdStudy(seed=args.seed)
    rows = study.false_positive_sweep(trials=args.trials)
    taus = sorted({row.tau_h for row in rows})
    jitters = sorted({row.jitter for row in rows})
    cell = {(row.tau_h, row.jitter): row.false_positive_rate for row in rows}
    print(
        format_table(
            ["tau_h \\ jitter"] + [f"{j:g}" for j in jitters],
            [[f"{t:g}"] + [format_percent(cell[(t, j)]) for j in jitters] for t in taus],
        )
    )
    return 0


def _cmd_hardening(args: argparse.Namespace) -> int:
    from repro.experiments import HardeningStudy, format_percent, format_table

    study = HardeningStudy(seed=args.seed)
    rows = study.corruption_sweep(trials=args.trials)
    print(
        format_table(
            ["corrupted", "recall", "repair rate", "unknown"],
            [
                [
                    row.corrupted,
                    format_percent(row.recall),
                    format_percent(row.repair_rate),
                    format_percent(row.unknown_rate),
                ]
                for row in rows
            ],
        )
    )
    correlated = study.correlated_vendor_bug()
    print(
        f"\ncorrelated vendor bug: {correlated.blind_flagged}/{correlated.blind_directions} "
        f"blind directions flagged, {correlated.visible_flagged}/"
        f"{correlated.visible_directions} visible directions flagged"
    )
    return 0


def _cmd_drains(args: argparse.Namespace) -> int:
    from repro.experiments import DrainStudy, format_percent, format_table

    study = DrainStudy(seed=args.seed)
    rows = study.run(trials=args.trials) + study.run_with_reasons(trials=args.trials)
    print(
        format_table(
            ["case", "flagged", "should flag"],
            [
                [row.case, format_percent(row.rate, 0), "yes" if row.should_flag else "no"]
                for row in rows
            ],
        )
    )
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    from repro.experiments import ScaleStudy, format_table

    rows = ScaleStudy(seed=args.seed).run(sizes=tuple(args.sizes))
    print(
        format_table(
            ["nodes", "links", "signals", "validate (ms)"],
            [[row.nodes, row.links, row.signals, f"{row.validate_ms:.1f}"] for row in rows],
        )
    )
    return 0


def _cmd_engine(args: argparse.Namespace) -> int:
    import json

    from repro.control.metrics import engine_metrics, engine_registry, render_engine_metrics
    from repro.engine import EngineStats, ValidationEngine, compare_reports
    from repro.experiments import format_table
    from repro.scenarios import all_scenarios, scenario_by_id

    if args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    try:
        scenarios = (
            [scenario_by_id(args.scenario)] if args.scenario else all_scenarios()
        )
    except KeyError:
        known = ", ".join(s.scenario_id for s in all_scenarios())
        print(f"unknown scenario {args.scenario!r} (known: {known})", file=sys.stderr)
        return 2
    tracer = None
    if args.trace or args.trace_jsonl:
        from repro.obs import Tracer

        tracer = Tracer()
    registry = None
    if args.metrics_prom:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    try:
        history = _history_sink(args, registry)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    totals = EngineStats(shards=args.shards, mode=args.mode, backend=args.backend)
    rows = []
    mismatched = 0
    for scenario in scenarios:
        world = scenario.build(seed=args.seed)
        flagged = 0
        matches = True
        if tracer is not None:
            tracer.instant("scenario", scenario=scenario.scenario_id)
        with ValidationEngine(
            world.topology,
            config=world.hodor_config,
            shards=args.shards,
            mode=args.mode,
            backend=args.backend,
            tracer=tracer,
            metrics=registry,
            history=history,
        ) as engine:
            for epoch in range(args.epochs):
                outcome = world.run_epoch(timestamp=float(epoch))
                report = engine.validate(outcome.snapshot, outcome.inputs)
                if report.detected_anything():
                    flagged += 1
                if compare_reports(outcome.report, report):
                    matches = False
            totals.merge(engine.stats)
        if not matches:
            mismatched += 1
        rows.append(
            [
                scenario.scenario_id,
                args.epochs,
                f"{flagged}/{args.epochs}",
                "yes" if matches else "NO",
            ]
        )

    if history is not None:
        history.close()
        print(f"history: {args.history}", file=sys.stderr)
    if args.metrics_prom:
        engine_registry(totals, registry=registry)
        registry.write(args.metrics_prom)
        print(f"wrote {args.metrics_prom}", file=sys.stderr)
    if tracer is not None:
        if args.trace:
            tracer.write_chrome_trace(args.trace)
            print(f"wrote {args.trace}", file=sys.stderr)
        if args.trace_jsonl:
            tracer.write_jsonl(args.trace_jsonl)
            print(f"wrote {args.trace_jsonl}", file=sys.stderr)

    if args.json:
        payload = {
            "scenarios": [
                {
                    "id": row[0],
                    "epochs": row[1],
                    "flagged": int(row[2].split("/")[0]),
                    "matches_serial": row[3] == "yes",
                }
                for row in rows
            ],
            "mismatched": mismatched,
            "stats": totals.to_dict(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if mismatched else 0

    print(format_table(["id", "epochs", "flagged", "matches serial"], rows))
    print()
    print(totals.render())
    if args.metrics:
        print()
        print(render_engine_metrics(engine_metrics(totals)))
    return 1 if mismatched else 0


def _cmd_stream(args: argparse.Namespace) -> int:
    import json

    from repro.engine import ValidationEngine, compare_reports
    from repro.experiments import format_table
    from repro.scenarios import all_scenarios, scenario_by_id
    from repro.stream import (
        EpochAssembler,
        IngestConfig,
        Perturbations,
        StreamPipeline,
        make_feeds,
    )

    try:
        perturb = Perturbations(
            reorder=args.reorder,
            duplicate=args.duplicate,
            delay=args.delay,
            drop=args.drop,
            fail=args.fail,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    registry = None
    if args.metrics_prom:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()

    if args.soak:
        from repro.stream import SoakConfig, run_soak

        try:
            result = run_soak(
                SoakConfig(
                    nodes=args.nodes,
                    epochs=args.epochs,
                    seed=args.seed,
                    perturb=perturb,
                    mode=args.mode,
                    backend=args.backend,
                    lateness_s=args.lateness,
                    queue_size=args.queue_size,
                    backpressure=args.backpressure,
                    deterministic=not args.concurrent,
                    history_path=args.history or None,
                    history_deterministic=not args.history_live,
                    alert_rules=tuple(args.alert),
                    alert_jsonl=args.alerts_jsonl or None,
                ),
                metrics=registry,
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if args.metrics_prom:
            result.metrics.write(args.metrics_prom)
            print(f"wrote {args.metrics_prom}", file=sys.stderr)
        payload = {
            "nodes": result.nodes,
            "links": result.links,
            "epochs_streamed": result.epochs_streamed,
            "epochs_sealed": result.epochs_sealed,
            "updates": result.updates,
            "updates_per_s": round(result.updates_per_s, 1),
            "p50_ms": round(result.p50_ms, 3),
            "p95_ms": round(result.p95_ms, 3),
            "p99_ms": round(result.p99_ms, 3),
            "late_dropped": result.late_dropped,
            "duplicates": result.duplicates,
            "feed_dropped": result.feed_dropped,
            "backpressure_dropped": result.backpressure_dropped,
            "retries": result.retries,
            "abandoned": result.abandoned,
            "complete_epochs": result.complete_epochs,
            "partial_epochs": result.partial_epochs,
        }
        if args.history:
            payload["history_epochs"] = result.history_epochs
            payload["history_bytes"] = result.history_bytes
            payload["history_bytes_compacted"] = result.history_bytes_compacted
            payload["alerts_fired"] = result.alerts_fired
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            for key, value in payload.items():
                print(f"{key:22} {value}")
        return 0 if result.epochs_sealed == result.epochs_streamed else 1

    try:
        scenarios = (
            [scenario_by_id(args.scenario)] if args.scenario else all_scenarios()
        )
    except KeyError:
        known = ", ".join(s.scenario_id for s in all_scenarios())
        print(f"unknown scenario {args.scenario!r} (known: {known})", file=sys.stderr)
        return 2

    try:
        history = _history_sink(args, registry)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    # With every perturbation probability at zero the streamed reports
    # must match the batch path exactly; perturbed runs skip the check.
    check_identity = (
        max(perturb.reorder, perturb.duplicate, perturb.delay, perturb.drop) <= 0.0
    )
    rows = []
    mismatched = 0
    for scenario in scenarios:
        world = scenario.build(seed=args.seed)
        epochs = []
        inputs_by_ts = {}
        batch_reports = []
        for epoch in range(args.epochs):
            outcome = world.run_epoch(timestamp=float(epoch) * 10.0)
            epochs.append((outcome.snapshot.timestamp, outcome.snapshot))
            inputs_by_ts[outcome.snapshot.timestamp] = outcome.inputs
            batch_reports.append(outcome.report)
        feeds = make_feeds(epochs, perturb=perturb, seed=args.seed)
        assembler = EpochAssembler(
            routers=list(feeds), lateness_s=args.lateness, metrics=registry
        )
        with ValidationEngine(
            world.topology,
            config=world.hodor_config,
            mode=args.mode,
            backend=args.backend,
            metrics=registry,
        ) as engine:
            pipeline = StreamPipeline(
                list(feeds.values()),
                assembler,
                engine,
                inputs_for=inputs_by_ts,
                config=IngestConfig(
                    queue_size=args.queue_size,
                    backpressure=args.backpressure,
                    deterministic=not args.concurrent,
                ),
                metrics=registry,
                history=history,
            )
            result = pipeline.run()
        matches = True
        if check_identity:
            if len(result.reports) != len(batch_reports):
                matches = False
            else:
                for batch, streamed in zip(batch_reports, result.reports):
                    if compare_reports(batch, streamed):
                        matches = False
        if not matches:
            mismatched += 1
        rows.append(
            [
                scenario.scenario_id,
                f"{len(result.epochs)}/{args.epochs}",
                result.complete_epochs,
                result.partial_epochs,
                result.late_dropped,
                result.duplicates,
                ("yes" if matches else "NO") if check_identity else "-",
            ]
        )

    if history is not None:
        history.close()
        print(f"history: {args.history}", file=sys.stderr)
    if args.metrics_prom:
        registry.write(args.metrics_prom)
        print(f"wrote {args.metrics_prom}", file=sys.stderr)
    if args.json:
        payload = {
            "scenarios": [
                {
                    "id": row[0],
                    "sealed": row[1],
                    "complete": row[2],
                    "partial": row[3],
                    "late_dropped": row[4],
                    "duplicates": row[5],
                    "matches_batch": row[6],
                }
                for row in rows
            ],
            "mismatched": mismatched,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if mismatched else 0
    print(
        format_table(
            ["id", "sealed", "complete", "partial", "late", "dups", "matches batch"],
            rows,
        )
    )
    return 1 if mismatched else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import load_trace_file, render_trace

    try:
        events = load_trace_file(args.path)
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(
        render_trace(
            events, provenance_only=args.provenance, max_epochs=args.epochs
        )
    )
    return 0


def _parse_budget(raw: str) -> float:
    """``"30s"``/``"2m"``/plain seconds -> seconds.

    Raises:
        ValueError: On unparseable or non-positive budgets.
    """
    text = raw.strip().lower()
    scale = 1.0
    if text.endswith("m"):
        scale, text = 60.0, text[:-1]
    elif text.endswith("s"):
        text = text[:-1]
    try:
        seconds = float(text) * scale
    except ValueError:
        raise ValueError(
            f"unparseable budget {raw!r} (expected e.g. '30s', '2m', or '45')"
        ) from None
    if seconds <= 0:
        raise ValueError(f"budget must be positive, got {raw!r}")
    return seconds


def _self_test_hook(index, report):
    """The planted mode-divergence bug for ``fuzz --self-test``: flip
    one verdict in the incremental path so every case diverges."""
    import dataclasses

    if not report.verdicts:
        return report
    name = sorted(report.verdicts)[0]
    verdict = report.verdicts[name]
    verdicts = dict(report.verdicts)
    verdicts[name] = dataclasses.replace(verdict, valid=not verdict.valid)
    return dataclasses.replace(report, verdicts=verdicts)


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json
    import tempfile
    from pathlib import Path

    from repro.fuzz import FuzzRunner, TriModalOracle

    try:
        budget_s = _parse_budget(args.budget)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.cases < 1:
        print(f"--cases must be >= 1, got {args.cases}", file=sys.stderr)
        return 2

    if args.self_test:
        # Plant a divergence bug in the incremental mode and prove the
        # whole find -> shrink -> emit loop catches it.
        oracle = TriModalOracle(hooks={"incremental": _self_test_hook})
        with tempfile.TemporaryDirectory() as scratch:
            runner = FuzzRunner(
                seed=args.seed,
                budget_s=budget_s,
                max_cases=1,
                oracle=oracle,
                shrink=not args.no_shrink,
                corpus_dir=Path(scratch),
            )
            report = runner.run()
            wrote = [o.reproducer_path for o in report.outcomes if o.reproducer_path]
        ok = report.failures == 1 and len(wrote) == 1
        print(
            "self-test: planted incremental-mode divergence "
            + ("found and reproduced" if ok else "NOT caught")
        )
        return 0 if ok else 1

    runner = FuzzRunner(
        seed=args.seed,
        budget_s=budget_s,
        max_cases=args.cases,
        shrink=not args.no_shrink,
        corpus_dir=Path(args.out),
    )
    report = runner.run()
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"fuzz: {report.cases} cases in {report.elapsed_s:.1f}s "
            f"(seed {report.master_seed}), {report.failures} failures"
        )
        for outcome in report.outcomes:
            if outcome.failed:
                print(
                    f"  case {outcome.case_index} (seed {outcome.case_seed}): "
                    f"{outcome.result.detail()}"
                )
                if outcome.reproducer_path:
                    print(f"    reproducer: {outcome.reproducer_path}")
    return 1 if report.failures else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_cli

    return run_cli(args)


def _cmd_history(args: argparse.Namespace) -> int:
    from repro.history.cli import run_history

    return run_history(args)


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet.cli import run_fleet

    return run_fleet(args)


def _history_sink(args: argparse.Namespace, registry):
    """Build the optional ``--history`` write-through sink for the
    engine/stream commands (plus its alert engine when rules given)."""
    if not args.history:
        return None
    from repro.history.alerts import AlertEngine, JsonlAlertSink, LogAlertSink
    from repro.history.sink import HistoryConfig, HistorySink

    alert_engine = None
    if args.alert:
        sinks = [LogAlertSink()]
        if args.alerts_jsonl:
            sinks.append(JsonlAlertSink(args.alerts_jsonl))
        alert_engine = AlertEngine(args.alert, sinks=sinks, metrics=registry)
    return HistorySink(
        HistoryConfig(path=args.history, deterministic=not args.history_live),
        alerts=alert_engine,
        metrics=registry,
    )


def _add_history_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--history",
        default="",
        metavar="PATH",
        help="write every validated epoch through to a history store (sqlite)",
    )
    parser.add_argument(
        "--history-live",
        action="store_true",
        help="record wall-clock anchors and real latencies in the store "
        "(default: deterministic, byte-reproducible across seeded runs)",
    )
    parser.add_argument(
        "--alert",
        action="append",
        default=[],
        metavar="RULE",
        help="alert rule (repeatable): transition:<input>, "
        "trend:<metric><op><thresh>@<window>, or "
        "regression:<series>@<window>/<baseline>%%<band>",
    )
    parser.add_argument(
        "--alerts-jsonl",
        default="",
        metavar="PATH",
        help="also fan fired alerts out to a JSONL file",
    )


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments import ReportConfig, run_full_report

    config = ReportConfig.quick() if args.quick else ReportConfig()
    report = run_full_report(config)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report + "\n")
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.experiments import format_table
    from repro.scenarios import all_scenarios

    if not args.verbose:
        print(
            format_table(
                ["id", "section", "category", "title"],
                [
                    [s.scenario_id, s.paper_section, s.category, s.title]
                    for s in all_scenarios()
                ],
            )
        )
        return 0

    for scenario in all_scenarios():
        print(f"{scenario.scenario_id}  {scenario.title}")
        print(f"    paper section : {scenario.paper_section}")
        print(f"    category      : {scenario.category}")
        print(f"    detection     : {'expected' if scenario.expect_detection else 'must NOT flag'}"
              + (f" via {', '.join(scenario.expected_channels)}" if scenario.expected_channels else ""))
        print(f"    network damage: {'yes' if scenario.expect_damage else 'no'}")
        print(f"    {scenario.description}")
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hodor: input validation for software-defined WANs (HotNets '24 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="the Figure 3 worked example").set_defaults(func=_cmd_demo)

    replay = sub.add_parser("replay", help="Section 2 outage catalog vs validators")
    replay.add_argument("--history", type=int, default=8)
    replay.add_argument("--seed", type=int, default=1)
    replay.set_defaults(func=_cmd_replay)

    perturb = sub.add_parser("perturb", help="Section 4.1 demand-perturbation study")
    perturb.add_argument("--trials", type=int, default=240)
    perturb.add_argument("--matrices", type=int, default=8)
    perturb.add_argument("--max-zeroed", type=int, default=6)
    perturb.add_argument("--seed", type=int, default=0)
    perturb.set_defaults(func=_cmd_perturb)

    thresholds = sub.add_parser("thresholds", help="tau_h sensitivity (footnote 2)")
    thresholds.add_argument("--trials", type=int, default=4)
    thresholds.add_argument("--seed", type=int, default=0)
    thresholds.set_defaults(func=_cmd_thresholds)

    hardening = sub.add_parser("hardening", help="hardening-efficacy ablation")
    hardening.add_argument("--trials", type=int, default=10)
    hardening.add_argument("--seed", type=int, default=0)
    hardening.set_defaults(func=_cmd_hardening)

    drains = sub.add_parser("drains", help="drain validation incl. reasons extension")
    drains.add_argument("--trials", type=int, default=6)
    drains.add_argument("--seed", type=int, default=0)
    drains.set_defaults(func=_cmd_drains)

    scale = sub.add_parser("scale", help="validation cost vs network size")
    scale.add_argument("--sizes", type=int, nargs="+", default=[10, 20, 40, 80])
    scale.add_argument("--seed", type=int, default=0)
    scale.set_defaults(func=_cmd_scale)

    engine = sub.add_parser(
        "engine", help="replay scenario timelines through the always-on engine"
    )
    engine.add_argument(
        "--scenario", default="", help="replay one scenario id (default: all)"
    )
    engine.add_argument(
        "--epochs", type=int, default=3, help="epochs per scenario timeline"
    )
    engine.add_argument("--shards", type=int, default=2)
    engine.add_argument("--seed", type=int, default=1)
    engine.add_argument(
        "--mode",
        choices=("full", "incremental"),
        default="full",
        help="epoch path: recompute everything or reuse unchanged verdicts",
    )
    engine.add_argument(
        "--backend",
        choices=("python", "vector"),
        default="python",
        help="evaluation backend: per-entity units or array-compiled epochs",
    )
    engine.add_argument(
        "--metrics", action="store_true", help="also print exporter-style metrics"
    )
    engine.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable results and EngineStats as JSON",
    )
    engine.add_argument(
        "--trace",
        default="",
        metavar="PATH",
        help="write a Chrome trace-event JSON span tree (Perfetto-loadable)",
    )
    engine.add_argument(
        "--trace-jsonl",
        default="",
        metavar="PATH",
        help="write the structured JSONL event log",
    )
    engine.add_argument(
        "--metrics-prom",
        default="",
        metavar="PATH",
        help="write Prometheus text exposition (registry incl. latency histograms)",
    )
    _add_history_flags(engine)
    engine.set_defaults(func=_cmd_engine)

    stream = sub.add_parser(
        "stream",
        help="stream scenario timelines through async ingestion into the engine",
    )
    stream.add_argument(
        "--scenario", default="", help="stream one scenario id (default: all)"
    )
    stream.add_argument(
        "--epochs", type=int, default=3, help="epochs per scenario timeline (or soak)"
    )
    stream.add_argument("--seed", type=int, default=1)
    stream.add_argument(
        "--mode",
        choices=("full", "incremental"),
        default="full",
        help="engine epoch path for the streamed validation",
    )
    stream.add_argument(
        "--backend",
        choices=("python", "vector"),
        default="python",
        help="evaluation backend: per-entity units or array-compiled epochs",
    )
    stream.add_argument(
        "--lateness",
        type=float,
        default=1.0,
        metavar="S",
        help="assembler lateness window, virtual seconds",
    )
    stream.add_argument(
        "--reorder", type=float, default=0.0, help="in-window reorder probability"
    )
    stream.add_argument(
        "--duplicate", type=float, default=0.0, help="duplicate-delivery probability"
    )
    stream.add_argument(
        "--delay", type=float, default=0.0, help="late (out-of-window) probability"
    )
    stream.add_argument(
        "--drop", type=float, default=0.0, help="source-drop probability"
    )
    stream.add_argument(
        "--fail", type=float, default=0.0, help="transient feed-failure probability"
    )
    stream.add_argument("--queue-size", type=int, default=256)
    stream.add_argument(
        "--backpressure",
        choices=("block", "drop-oldest"),
        default="block",
        help="bounded-queue policy when producers outrun validation",
    )
    stream.add_argument(
        "--concurrent",
        action="store_true",
        help="one producer task per feed instead of the merged deterministic order",
    )
    stream.add_argument(
        "--soak",
        action="store_true",
        help="run the E15 soak driver on a synthetic topology instead of scenarios",
    )
    stream.add_argument(
        "--nodes", type=int, default=80, help="soak topology size (with --soak)"
    )
    stream.add_argument(
        "--json", action="store_true", help="emit machine-readable results as JSON"
    )
    stream.add_argument(
        "--metrics-prom",
        default="",
        metavar="PATH",
        help="write Prometheus text exposition (stream_* + engine families)",
    )
    _add_history_flags(stream)
    stream.set_defaults(func=_cmd_stream)

    trace = sub.add_parser(
        "trace", help="render an exported engine trace (span tree + verdict provenance)"
    )
    trace.add_argument("path", help="trace file written by engine --trace/--trace-jsonl")
    trace.add_argument(
        "--provenance",
        action="store_true",
        help="show only flagged-verdict provenance records",
    )
    trace.add_argument(
        "--epochs",
        type=int,
        default=None,
        metavar="N",
        help="render at most N epoch spans",
    )
    trace.set_defaults(func=_cmd_trace)

    scenarios = sub.add_parser("scenarios", help="list the outage catalog")
    scenarios.add_argument(
        "--verbose", "-v", action="store_true", help="full descriptions"
    )
    scenarios.set_defaults(func=_cmd_scenarios)

    fuzz = sub.add_parser(
        "fuzz",
        help="random fault timelines through the tri-modal differential oracle",
    )
    fuzz.add_argument(
        "--budget",
        default="30s",
        help="wall-clock budget, e.g. 30s or 2m (default 30s)",
    )
    fuzz.add_argument("--seed", type=int, default=0, help="campaign master seed")
    fuzz.add_argument(
        "--cases", type=int, default=10_000, help="hard cap on generated cases"
    )
    fuzz.add_argument(
        "--out",
        default="tests/fuzz/regressions",
        help="corpus directory for minimized reproducers",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="write failures unminimized (skip the shrinker)",
    )
    fuzz.add_argument(
        "--self-test",
        action="store_true",
        help="plant a known mode-divergence bug and verify find->shrink->emit",
    )
    fuzz.add_argument(
        "--json", action="store_true", help="emit the campaign report as JSON"
    )
    fuzz.set_defaults(func=_cmd_fuzz)

    lint = sub.add_parser(
        "lint",
        help="static purity/determinism analysis of the pipeline (hodor-lint)",
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=_cmd_lint)

    history = sub.add_parser(
        "history",
        help="read verdict history stores back (tail/trends/query/compact)",
    )
    from repro.history.cli import add_history_arguments

    add_history_arguments(history)
    history.set_defaults(func=_cmd_history)

    fleet = sub.add_parser(
        "fleet",
        help="validate many tenant WANs from one service (worker-process pool)",
    )
    from repro.fleet.cli import add_fleet_arguments

    add_fleet_arguments(fleet)
    fleet.set_defaults(func=_cmd_fleet)

    report = sub.add_parser("report", help="run every study, emit one markdown report")
    report.add_argument("--quick", action="store_true", help="fast low-trial profile")
    report.add_argument("--output", "-o", default="", help="write to a file instead of stdout")
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
