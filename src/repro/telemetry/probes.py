"""Active neighbor probes: the paper's manufactured redundancy (R4).

Section 4.2 proposes "running limited active probes that periodically
check that a link is up", executed by a small application on the router
itself (as in FBOSS), similar to Ethernet CFM.  A probe on the directed
adjacency ``u -> v`` succeeds only when the link physically works *and*
the dataplane actually forwards -- which is what lets probes catch the
"status up but traffic can't flow" semantic bugs that pure status
signals miss.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Mapping

from repro.net.topology import Topology
from repro.telemetry.snapshot import InterfaceKey, ProbeResult

__all__ = ["LinkHealth", "ProbeEngine"]


@dataclass(frozen=True)
class LinkHealth:
    """Physical/dataplane ground truth for one link.

    Attributes:
        up: Light passes in both directions (physical layer works).
        forwarding: The dataplane actually forwards traffic (False for
            ACL misconfigurations, dataplane bugs -- the Section 4.2
            semantic failures).
    """

    up: bool = True
    forwarding: bool = True

    @property
    def carries_traffic(self) -> bool:
        return self.up and self.forwarding


class ProbeEngine:
    """Runs active probes across every adjacency of a topology.

    Args:
        loss_probability: Chance an individual probe is lost even on a
            healthy link (probes are cheap datagrams; occasional false
            negatives are part of the model and why R4 is used for
            *confidence*, not as a sole oracle).
        base_rtt_ms: Synthetic RTT reported on successful probes.
        seed: RNG seed for reproducibility.
    """

    def __init__(
        self, loss_probability: float = 0.0, base_rtt_ms: float = 5.0, seed: int = 0
    ) -> None:
        if not 0 <= loss_probability < 1:
            raise ValueError(
                f"loss_probability must be in [0, 1), got {loss_probability}"
            )
        self._loss_probability = loss_probability
        self._base_rtt_ms = base_rtt_ms
        self._seed = seed

    def run(
        self, topology: Topology, health: Mapping[str, LinkHealth]
    ) -> Dict[InterfaceKey, ProbeResult]:
        """Probe every directed adjacency.

        Args:
            topology: The physical topology.
            health: Per-link ground-truth health, keyed by canonical
                link name; links absent from the mapping are healthy.

        Returns:
            Probe results keyed by ``(node, peer)``.
        """
        rng = random.Random(self._seed)
        results: Dict[InterfaceKey, ProbeResult] = {}
        for src, dst in topology.directed_edges():
            link = topology.link_between(src, dst)
            assert link is not None
            link_health = health.get(link.name, LinkHealth())
            reachable = link_health.carries_traffic
            if reachable and self._loss_probability > 0:
                reachable = rng.random() >= self._loss_probability
            rtt = rng.uniform(0.8, 1.2) * self._base_rtt_ms if reachable else None
            results[(src, dst)] = ProbeResult(ok=reachable, rtt_ms=rtt)
        return results
