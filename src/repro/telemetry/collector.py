"""Telemetry collection: sampling ground truth into a snapshot.

The :class:`TelemetryCollector` plays the role of the routers' gNMI
telemetry stack: it turns the simulator's ground truth into the signal
set routers would report, applying rolling-window jitter.  The output
snapshot is *pre-fault*: router-level bugs (Section 2.1) are injected
afterwards by :mod:`repro.faults`, so tests can compare faulted and
clean snapshots of the same instant.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.net.simulation import GroundTruth
from repro.net.topology import EXTERNAL_PEER
from repro.telemetry.counters import CounterReading, Jitter
from repro.telemetry.probes import LinkHealth, ProbeEngine
from repro.telemetry.snapshot import LinkStatusReport, NetworkSnapshot

__all__ = ["TelemetryCollector"]


class TelemetryCollector:
    """Samples a :class:`GroundTruth` into a :class:`NetworkSnapshot`.

    Args:
        jitter: Rolling-window measurement noise applied to every rate.
        probe_engine: When given, active neighbor probes (R4) are run
            and included in the snapshot.
        window_s: Rolling window length stamped on readings.
    """

    def __init__(
        self,
        jitter: Optional[Jitter] = None,
        probe_engine: Optional[ProbeEngine] = None,
        window_s: float = 5.0,
    ) -> None:
        self._jitter = jitter if jitter is not None else Jitter()
        self._probe_engine = probe_engine
        self._window_s = window_s
        self._sequence = 0

    def collect(
        self,
        truth: GroundTruth,
        health: Optional[Mapping[str, LinkHealth]] = None,
        timestamp: float = 0.0,
    ) -> NetworkSnapshot:
        """Produce the snapshot the routers would report right now.

        Args:
            truth: Simulator output for this instant.
            health: Per-link physical/dataplane health, keyed by
                canonical link name.  Links not present are healthy.
                A physically-down link reports zero rates and
                oper-status down at both ends (callers are responsible
                for also blackholing such links in the simulator so
                ground truth agrees).
            timestamp: Epoch time stamped on all readings.
        """
        health = dict(health or {})
        topology = truth.topology
        rng = self._jitter.rng()
        self._sequence += 1
        snapshot = NetworkSnapshot(timestamp=timestamp)

        def reading(rx: float, tx: float) -> CounterReading:
            return CounterReading(
                rx_rate=self._jitter.apply(rx, rng),
                tx_rate=self._jitter.apply(tx, rng),
                window_s=self._window_s,
                timestamp=timestamp,
                sequence=self._sequence,
            )

        for src, dst in topology.directed_edges():
            link = topology.link_between(src, dst)
            assert link is not None
            link_health = health.get(link.name, LinkHealth())
            if link_health.up:
                tx = truth.flow_on(src, dst)
                rx = truth.flow_on(dst, src)
            else:
                tx = rx = 0.0
            snapshot.counters[(src, dst)] = reading(rx=rx, tx=tx)
            snapshot.link_status[(src, dst)] = LinkStatusReport(
                oper_up=link_health.up, admin_up=not link.drained
            )
            snapshot.link_drains[(src, dst)] = link.drained

        for node in topology.nodes():
            key = (node.name, EXTERNAL_PEER)
            snapshot.counters[key] = reading(
                rx=truth.ext_in.get(node.name, 0.0),
                tx=truth.ext_out.get(node.name, 0.0),
            )
            snapshot.link_status[key] = LinkStatusReport(oper_up=True, admin_up=True)
            snapshot.drains[node.name] = node.drained
            if node.drained:
                snapshot.drain_reasons[node.name] = node.drain_reason
            snapshot.drops[node.name] = self._jitter.apply(
                truth.dropped.get(node.name, 0.0), rng
            )

        if self._probe_engine is not None:
            snapshot.probes = self._probe_engine.run(topology, health)

        return snapshot
