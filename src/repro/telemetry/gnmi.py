"""A gNMI-flavoured access layer over snapshots.

The paper's collection step leans on vendor-agnostic management APIs
(gNMI/OpenConfig [5, 26]) whose documented paths let operators select
relevant signals once, at design time.  :class:`GnmiFacade` provides
that interface over a :class:`~repro.telemetry.snapshot.NetworkSnapshot`:

- :meth:`get` -- fetch one signal by path string,
- :meth:`get_many` -- batched fetch (one RPC in real gNMI),
- :meth:`walk` -- enumerate every path the snapshot can answer,
- :meth:`subscribe` -- iterate (path, value) updates for a path set,
  the shape of a gNMI ONCE subscription.

Values come back raw -- exactly what the router reported, malformed
bytes included -- because interpreting them defensively is Hodor's
collection step's job, not the transport's.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.telemetry.paths import PathError, SignalKind, SignalPath
from repro.telemetry.snapshot import NetworkSnapshot

__all__ = ["GnmiError", "GnmiFacade"]


class GnmiError(KeyError):
    """Raised when a path cannot be answered from the snapshot."""


class GnmiFacade:
    """Path-addressed reads over one snapshot.

    Example:
        >>> facade = GnmiFacade(snapshot)  # doctest: +SKIP
        >>> facade.get("/interfaces/interface[name=atla:hstn]/state/counters/out-rate")  # doctest: +SKIP
        4.27
    """

    def __init__(self, snapshot: NetworkSnapshot) -> None:
        self._snapshot = snapshot

    # ------------------------------------------------------------------

    def get(self, path: str) -> object:
        """Fetch one signal's raw value.

        Raises:
            PathError: For syntactically invalid paths.
            GnmiError: For valid paths the snapshot has no data for.
        """
        parsed = SignalPath.parse(path)
        value = self._lookup(parsed)
        if value is _MISSING:
            raise GnmiError(f"no data for {path}")
        return value

    def get_many(self, paths: Iterable[str]) -> Dict[str, object]:
        """Batched :meth:`get`; missing paths are omitted, not errors."""
        out: Dict[str, object] = {}
        for path in paths:
            try:
                out[path] = self.get(path)
            except (GnmiError, PathError):
                continue
        return out

    def walk(self, kinds: Optional[Iterable[SignalKind]] = None) -> List[str]:
        """Every answerable path, optionally filtered by signal kind."""
        wanted = set(kinds) if kinds is not None else set(SignalKind)
        paths: List[str] = []

        if SignalKind.RX_RATE in wanted or SignalKind.TX_RATE in wanted:
            for node, peer in sorted(self._snapshot.counters):
                if SignalKind.RX_RATE in wanted:
                    paths.append(SignalPath(SignalKind.RX_RATE, node, peer).render())
                if SignalKind.TX_RATE in wanted:
                    paths.append(SignalPath(SignalKind.TX_RATE, node, peer).render())
        if SignalKind.OPER_STATUS in wanted or SignalKind.ADMIN_STATUS in wanted:
            for node, peer in sorted(self._snapshot.link_status):
                if SignalKind.OPER_STATUS in wanted:
                    paths.append(SignalPath(SignalKind.OPER_STATUS, node, peer).render())
                if SignalKind.ADMIN_STATUS in wanted:
                    paths.append(SignalPath(SignalKind.ADMIN_STATUS, node, peer).render())
        if SignalKind.DRAIN in wanted:
            for node in sorted(self._snapshot.drains):
                paths.append(SignalPath(SignalKind.DRAIN, node).render())
        if SignalKind.DRAIN_REASON in wanted:
            for node in sorted(self._snapshot.drain_reasons):
                paths.append(SignalPath(SignalKind.DRAIN_REASON, node).render())
        if SignalKind.LINK_DRAIN in wanted:
            for node, peer in sorted(self._snapshot.link_drains):
                paths.append(SignalPath(SignalKind.LINK_DRAIN, node, peer).render())
        if SignalKind.NODE_DROPS in wanted:
            for node in sorted(self._snapshot.drops):
                paths.append(SignalPath(SignalKind.NODE_DROPS, node).render())
        if SignalKind.PROBE in wanted:
            for node, peer in sorted(self._snapshot.probes):
                paths.append(SignalPath(SignalKind.PROBE, node, peer).render())
        return paths

    def subscribe(self, paths: Iterable[str]) -> Iterator[Tuple[str, object]]:
        """Yield (path, raw value) for each answerable subscription path.

        Models a gNMI ONCE subscription: one update per path, missing
        paths silently skipped (real collectors time those out).

        Ordering contract: updates arrive sorted by signal coordinates
        ``(kind, node, peer)`` regardless of how the subscription listed
        them, and duplicate subscription entries collapse to a single
        update.  The streaming feeds (:mod:`repro.stream`) replay
        subscription output into per-router event streams and depend on
        this determinism for reproducible runs.
        """
        answered = self.get_many(paths)

        def coordinates(rendered: str) -> Tuple[str, str, str]:
            parsed = SignalPath.parse(rendered)
            return (parsed.kind.value, parsed.node, parsed.peer or "")

        for path in sorted(answered, key=coordinates):
            yield path, answered[path]

    # ------------------------------------------------------------------

    def _lookup(self, parsed: SignalPath) -> object:
        snapshot = self._snapshot
        if parsed.kind in (SignalKind.RX_RATE, SignalKind.TX_RATE):
            reading = snapshot.counter(parsed.node, parsed.peer or "")
            if reading is None:
                return _MISSING
            return reading.rx_rate if parsed.kind == SignalKind.RX_RATE else reading.tx_rate
        if parsed.kind in (SignalKind.OPER_STATUS, SignalKind.ADMIN_STATUS):
            status = snapshot.status(parsed.node, parsed.peer or "")
            if status is None:
                return _MISSING
            return status.oper_up if parsed.kind == SignalKind.OPER_STATUS else status.admin_up
        if parsed.kind == SignalKind.DRAIN:
            return snapshot.drains.get(parsed.node, _MISSING)
        if parsed.kind == SignalKind.DRAIN_REASON:
            return snapshot.drain_reasons.get(parsed.node, _MISSING)
        if parsed.kind == SignalKind.LINK_DRAIN:
            return snapshot.link_drains.get((parsed.node, parsed.peer or ""), _MISSING)
        if parsed.kind == SignalKind.NODE_DROPS:
            return snapshot.drops.get(parsed.node, _MISSING)
        if parsed.kind == SignalKind.PROBE:
            probe = snapshot.probe(parsed.node, parsed.peer or "")
            return _MISSING if probe is None else probe.ok
        return _MISSING  # pragma: no cover - enum is exhaustive


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover
        return "<missing>"


_MISSING = _Missing()
