"""Counter readings and the rolling-window sampling model.

Routers report traffic *rates* measured over a few-second rolling
window (paper Section 4.1).  Two ends of a link therefore never agree
exactly -- their windows are not aligned -- which is why the paper's
hardening threshold tau_h exists.  We model that by applying an
independent multiplicative jitter to every reading.

Readings are deliberately loosely typed: production telemetry bugs
include values arriving as the wrong type entirely ("changes in
telemetry format (e.g., from string to int)", Section 2.1), so a
reading's raw value may be a float, a string, or missing.  The
:func:`coerce_rate` helper is the single place where raw values are
normalized, and is what Hodor's collection step uses to flag malformed
signals instead of crashing on them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Union

__all__ = ["RawValue", "CounterReading", "Jitter", "coerce_rate", "MalformedValueError"]

#: What a telemetry value can look like on the wire.
RawValue = Union[float, int, str, None]


class MalformedValueError(ValueError):
    """Raised when a raw telemetry value cannot be interpreted as a rate."""


def coerce_rate(value: RawValue) -> Optional[float]:
    """Normalize a raw telemetry value into a rate.

    Returns:
        The value as a float, or ``None`` when the value is missing.

    Raises:
        MalformedValueError: When the value is present but not
            interpretable as a non-negative finite rate (wrong type,
            unparseable string, negative, NaN/inf).
    """
    if value is None:
        return None
    if isinstance(value, bool):
        raise MalformedValueError(f"boolean is not a rate: {value!r}")
    if isinstance(value, str):
        try:
            value = float(value.strip())
        except ValueError:
            raise MalformedValueError(f"unparseable rate string: {value!r}") from None
    if isinstance(value, (int, float)):
        rate = float(value)
        if rate != rate or rate in (float("inf"), float("-inf")):
            raise MalformedValueError(f"non-finite rate: {value!r}")
        if rate < 0:
            raise MalformedValueError(f"negative rate: {value!r}")
        return rate
    raise MalformedValueError(f"unsupported rate type: {type(value).__name__}")


@dataclass
class CounterReading:
    """One interface's counters as reported by its router.

    Attributes:
        rx_rate: Received rate (raw; may be malformed or missing).
        tx_rate: Transmitted rate (raw; may be malformed or missing).
        window_s: Length of the rolling measurement window, seconds.
        timestamp: Epoch time the reading was taken at.
        sequence: Monotonic per-interface message sequence number;
            duplicated-telemetry bugs reuse a sequence number.
    """

    rx_rate: RawValue
    tx_rate: RawValue
    window_s: float = 5.0
    timestamp: float = 0.0
    sequence: int = 0

    def copy(self) -> "CounterReading":
        return CounterReading(
            rx_rate=self.rx_rate,
            tx_rate=self.tx_rate,
            window_s=self.window_s,
            timestamp=self.timestamp,
            sequence=self.sequence,
        )


@dataclass(frozen=True)
class Jitter:
    """Multiplicative measurement noise for rolling-window counters.

    Every sampled rate is multiplied by an independent draw from
    ``U(1 - magnitude, 1 + magnitude)``.  The paper's production logs
    put natural cross-window discrepancy within ~2%; the default 1%
    per-reading magnitude yields pairwise disagreement within that.
    """

    magnitude: float = 0.01
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.magnitude < 1:
            raise ValueError(f"jitter magnitude must be in [0, 1), got {self.magnitude}")

    def rng(self) -> random.Random:
        """A fresh RNG seeded for reproducibility."""
        return random.Random(self.seed)

    def apply(self, rate: float, rng: random.Random) -> float:
        """One noisy sample of a true rate."""
        if self.magnitude == 0:
            return rate
        return rate * rng.uniform(1.0 - self.magnitude, 1.0 + self.magnitude)
