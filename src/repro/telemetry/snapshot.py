"""The full set of router signals at one collection instant.

A :class:`NetworkSnapshot` is "the comprehensive view of the current
network state" that Hodor's step 1 gathers (paper Section 3.2).  It is
exactly what the routers *reported* -- which, after fault injection,
may differ from ground truth.  Both the control infrastructure and
Hodor read from the same snapshot, mirroring production where both pull
from the same router telemetry.

Missing signals are represented by absent keys (a router that never
reported) or ``None`` fields (a reading with a hole in it); wrong-typed
values survive untouched until collection-time coercion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.telemetry.counters import CounterReading, RawValue

__all__ = ["InterfaceKey", "LinkStatusReport", "ProbeResult", "NetworkSnapshot"]

#: ``(reporting_node, facing_peer)`` identifies an interface.
InterfaceKey = Tuple[str, str]


@dataclass
class LinkStatusReport:
    """Link status as reported by one endpoint.

    Attributes:
        oper_up: Operational ("light detected") status.  Raw telemetry:
            faults may replace the bool with junk.
        admin_up: Administrative status.
    """

    oper_up: RawValue
    admin_up: RawValue = True

    def copy(self) -> "LinkStatusReport":
        return LinkStatusReport(oper_up=self.oper_up, admin_up=self.admin_up)


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one active neighbor probe (manufactured signal, R4)."""

    ok: bool
    rtt_ms: Optional[float] = None


@dataclass
class NetworkSnapshot:
    """Everything the routers reported at one instant.

    Attributes:
        timestamp: Collection epoch time.
        counters: Per-interface counter readings.
        link_status: Per-interface link status reports.
        drains: Per-router reported drain bit (raw).
        drain_reasons: Per-router reported drain reason (raw; the
            Section 4.3 proposal -- empty/absent means unspecified).
        link_drains: Per-interface reported link-drain bit (raw).
        drops: Per-router reported aggregate dropped rate (raw).
        probes: Per-directed-adjacency probe results; present only when
            probing is enabled.
    """

    timestamp: float = 0.0
    counters: Dict[InterfaceKey, CounterReading] = field(default_factory=dict)
    link_status: Dict[InterfaceKey, LinkStatusReport] = field(default_factory=dict)
    drains: Dict[str, RawValue] = field(default_factory=dict)
    drain_reasons: Dict[str, RawValue] = field(default_factory=dict)
    link_drains: Dict[InterfaceKey, RawValue] = field(default_factory=dict)
    drops: Dict[str, RawValue] = field(default_factory=dict)
    probes: Dict[InterfaceKey, ProbeResult] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def nodes(self) -> List[str]:
        """Routers that reported anything, sorted."""
        reporting = set(self.drains) | set(self.drops)
        reporting.update(node for node, _peer in self.counters)
        reporting.update(node for node, _peer in self.link_status)
        return sorted(reporting)

    def interface_keys(self) -> List[InterfaceKey]:
        """Interfaces with any reading, sorted."""
        keys = set(self.counters) | set(self.link_status) | set(self.link_drains)
        return sorted(keys)

    def counter(self, node: str, peer: str) -> Optional[CounterReading]:
        return self.counters.get((node, peer))

    def status(self, node: str, peer: str) -> Optional[LinkStatusReport]:
        return self.link_status.get((node, peer))

    def probe(self, node: str, peer: str) -> Optional[ProbeResult]:
        return self.probes.get((node, peer))

    def interfaces_of(self, node: str) -> List[InterfaceKey]:
        """All interface keys owned by one router, sorted by peer."""
        return sorted(key for key in self.counters if key[0] == node)

    # ------------------------------------------------------------------
    # Mutation support (used by fault injection)
    # ------------------------------------------------------------------

    def copy(self) -> "NetworkSnapshot":
        """A deep copy safe to mutate without touching the original."""
        return NetworkSnapshot(
            timestamp=self.timestamp,
            counters={k: v.copy() for k, v in self.counters.items()},
            link_status={k: v.copy() for k, v in self.link_status.items()},
            drains=dict(self.drains),
            drain_reasons=dict(self.drain_reasons),
            link_drains=dict(self.link_drains),
            drops=dict(self.drops),
            probes=dict(self.probes),
        )

    def drop_node(self, node: str) -> None:
        """Erase every signal a router reported (it went silent)."""
        self.drains.pop(node, None)
        self.drain_reasons.pop(node, None)
        self.drops.pop(node, None)
        for mapping in (self.counters, self.link_status, self.link_drains, self.probes):
            for key in [k for k in mapping if k[0] == node]:
                del mapping[key]

    def flatten(self) -> Dict[str, float]:
        """All numeric-coercible signals as one flat bundle.

        Keys are canonical signal-path strings; booleans become 0/1.
        Malformed or missing values are omitted.  This is the "bundling
        all available data for each timestamp" representation the
        paper's Section 3.1 general (unsupervised) approach consumes.
        """
        from repro.telemetry.counters import MalformedValueError, coerce_rate
        from repro.telemetry.paths import SignalKind, SignalPath

        bundle: Dict[str, float] = {}

        def put(kind: SignalKind, node: str, peer: Optional[str], value: Optional[float]) -> None:
            if value is not None:
                bundle[SignalPath(kind, node, peer).render()] = float(value)

        for (node, peer), reading in self.counters.items():
            for kind, raw in (
                (SignalKind.RX_RATE, reading.rx_rate),
                (SignalKind.TX_RATE, reading.tx_rate),
            ):
                try:
                    put(kind, node, peer, coerce_rate(raw))
                except MalformedValueError:
                    continue
        for (node, peer), status in self.link_status.items():
            if isinstance(status.oper_up, bool):
                put(SignalKind.OPER_STATUS, node, peer, 1.0 if status.oper_up else 0.0)
            if isinstance(status.admin_up, bool):
                put(SignalKind.ADMIN_STATUS, node, peer, 1.0 if status.admin_up else 0.0)
        for node, drained in self.drains.items():
            if isinstance(drained, bool):
                put(SignalKind.DRAIN, node, None, 1.0 if drained else 0.0)
        for node, drops in self.drops.items():
            try:
                put(SignalKind.NODE_DROPS, node, None, coerce_rate(drops))
            except MalformedValueError:
                continue
        for (node, peer), probe in self.probes.items():
            put(SignalKind.PROBE, node, peer, 1.0 if probe.ok else 0.0)
        return bundle

    def signal_count(self) -> int:
        """Total number of individual signals present."""
        return (
            2 * len(self.counters)  # rx + tx
            + 2 * len(self.link_status)  # oper + admin
            + len(self.drains)
            + len(self.drain_reasons)
            + len(self.link_drains)
            + len(self.drops)
            + len(self.probes)
        )
