"""Epoch-to-epoch snapshot diffing for incremental validation.

In a production WAN only a small fraction of signals change between
30-second collections: most counters tick along at the same rate, most
links stay up, most drain bits never move.  The incremental engine
(:mod:`repro.engine.incremental`) exploits that by recomputing only the
entities whose inputs changed -- and this module is where "changed" is
defined.

:class:`SnapshotDelta` diffs two :class:`NetworkSnapshot` objects into
per-family changed-key sets: interfaces whose counters or statuses
moved, routers whose drains or drops moved, probes that flipped.  A key
that appears in only one snapshot counts as changed in both directions
(arrival and disappearance each invalidate cached work).

The comparison is *validation-aware*: a field that cannot change any
validation outcome does not dirty its entity.  Two deliberate examples:

- Counter readings compare on ``rx_rate``/``tx_rate`` plus a staleness
  signature, not on ``sequence`` or ``window_s`` -- collection never
  reads the latter, so replaying a snapshot with only a bumped sequence
  number legitimately reuses every cached verdict.
- The staleness signature folds in both snapshots' collection
  timestamps: a reading that did not change but *aged across the
  staleness bound* (or whose rendered age in the ``STALE_READING``
  finding would differ) is changed, because collection's output for it
  is different even though the raw bytes are identical.

Raw telemetry values are untrusted -- fault injection replaces floats
with strings, dicts, NaN, anything -- so every comparison is defensive:
a value whose ``==`` raises, or whose type changed, counts as changed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Mapping, Optional, Set

from repro.telemetry.counters import CounterReading
from repro.telemetry.snapshot import InterfaceKey, NetworkSnapshot

__all__ = ["SnapshotDelta"]


def _raw_equal(a: object, b: object) -> bool:
    """Defensive equality over untrusted raw telemetry values.

    ``NaN != NaN`` makes a NaN-carrying reading permanently "changed",
    which is the safe direction; a raising ``__eq__`` likewise counts
    as changed.  Type changes (``1`` vs ``True`` vs ``"1"``) count as
    changed even where ``==`` would agree, because coercion may not.
    """
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    try:
        return bool(a == b)
    except Exception:
        return False


def _staleness_signature(
    snapshot_timestamp: float, reading: CounterReading, max_staleness_s: float
) -> Optional[str]:
    """What collection's staleness handling will do with this reading.

    ``None`` means fresh; otherwise the rendered age that appears in
    the ``STALE_READING`` finding (so two stale readings with different
    rendered ages compare as different).
    """
    age = snapshot_timestamp - reading.timestamp
    if age > max_staleness_s:
        return f"{age:.0f}"
    return None


def _counters_equal(
    old: NetworkSnapshot,
    new: NetworkSnapshot,
    old_reading: CounterReading,
    new_reading: CounterReading,
    max_staleness_s: Optional[float],
) -> bool:
    if not _raw_equal(old_reading.rx_rate, new_reading.rx_rate):
        return False
    if not _raw_equal(old_reading.tx_rate, new_reading.tx_rate):
        return False
    if max_staleness_s is None:
        return True
    return _staleness_signature(
        old.timestamp, old_reading, max_staleness_s
    ) == _staleness_signature(new.timestamp, new_reading, max_staleness_s)


def _changed_counters(
    old: NetworkSnapshot, new: NetworkSnapshot, max_staleness_s: Optional[float]
) -> FrozenSet[InterfaceKey]:
    """The counters family of :meth:`SnapshotDelta.between`, unrolled.

    Counters are by far the largest family (two per link plus one per
    router) and sit on the incremental engine's per-epoch critical
    path, so the generic ``_changed_keys``/callback pairing is inlined
    here with a fast path for the overwhelmingly common case: both
    rates are floats and fresh.
    """
    old_counters = old.counters
    new_counters = new.counters
    changed: Set[InterfaceKey] = {
        key for key in old_counters if key not in new_counters
    }
    old_ts = old.timestamp
    new_ts = new.timestamp
    for key, reading in new_counters.items():
        prior = old_counters.get(key)
        if prior is None and key not in old_counters:
            changed.add(key)
            continue
        a, b = prior.rx_rate, reading.rx_rate
        if a is not b:
            if type(a) is float and type(b) is float:
                if a != b:
                    changed.add(key)
                    continue
            elif not _raw_equal(a, b):
                changed.add(key)
                continue
        a, b = prior.tx_rate, reading.tx_rate
        if a is not b:
            if type(a) is float and type(b) is float:
                if a != b:
                    changed.add(key)
                    continue
            elif not _raw_equal(a, b):
                changed.add(key)
                continue
        if max_staleness_s is not None:
            fresh_before = old_ts - prior.timestamp <= max_staleness_s
            fresh_now = new_ts - reading.timestamp <= max_staleness_s
            if fresh_before and fresh_now:
                continue
            if _staleness_signature(
                old_ts, prior, max_staleness_s
            ) != _staleness_signature(new_ts, reading, max_staleness_s):
                changed.add(key)
    return frozenset(changed)


def _changed_keys(old: Mapping, new: Mapping, equal) -> FrozenSet:
    """Keys added, removed, or whose values compare unequal."""
    changed: Set = set()
    for key in old:
        if key not in new:
            changed.add(key)
    for key, value in new.items():
        if key not in old or not equal(old[key], value):
            changed.add(key)
    return frozenset(changed)


@dataclass(frozen=True)
class SnapshotDelta:
    """Which signals changed between two consecutive snapshots.

    Attributes:
        counters: Interfaces whose counter reading changed (including
            staleness-visible changes; see module docstring).
        statuses: Interfaces whose link-status report changed.
        drains: Routers whose drain bit changed.
        drain_reasons: Routers whose drain reason changed.
        link_drains: Interfaces whose link-drain bit changed.
        drops: Routers whose drop counter changed.
        probes: Directed adjacencies whose probe result changed.
    """

    counters: FrozenSet[InterfaceKey]
    statuses: FrozenSet[InterfaceKey]
    drains: FrozenSet[str]
    drain_reasons: FrozenSet[str]
    link_drains: FrozenSet[InterfaceKey]
    drops: FrozenSet[str]
    probes: FrozenSet[InterfaceKey]

    @classmethod
    def between(
        cls,
        old: NetworkSnapshot,
        new: NetworkSnapshot,
        max_staleness_s: Optional[float] = None,
    ) -> "SnapshotDelta":
        """Diff two snapshots into per-family changed-key sets.

        Args:
            old: The previous epoch's snapshot.
            new: This epoch's snapshot.
            max_staleness_s: The collection staleness bound in force.
                When given, a counter reading that aged across the
                bound (or whose rendered stale age differs) counts as
                changed even if its raw fields did not move.  Callers
                driving actual validation must pass the same value
                their :class:`~repro.core.config.HodorConfig` uses.
        """
        return cls(
            counters=_changed_counters(old, new, max_staleness_s),
            statuses=_changed_keys(
                old.link_status,
                new.link_status,
                lambda a, b: _raw_equal(a.oper_up, b.oper_up)
                and _raw_equal(a.admin_up, b.admin_up),
            ),
            drains=_changed_keys(old.drains, new.drains, _raw_equal),
            drain_reasons=_changed_keys(
                old.drain_reasons, new.drain_reasons, _raw_equal
            ),
            link_drains=_changed_keys(old.link_drains, new.link_drains, _raw_equal),
            drops=_changed_keys(old.drops, new.drops, _raw_equal),
            probes=_changed_keys(
                old.probes,
                new.probes,
                lambda a, b: a.ok == b.ok and _raw_equal(a.rtt_ms, b.rtt_ms),
            ),
        )

    # ------------------------------------------------------------------

    def total_changed(self) -> int:
        """How many signal keys changed, across every family."""
        return (
            len(self.counters)
            + len(self.statuses)
            + len(self.drains)
            + len(self.drain_reasons)
            + len(self.link_drains)
            + len(self.drops)
            + len(self.probes)
        )

    def is_empty(self) -> bool:
        """True when the snapshots are validation-equivalent."""
        return self.total_changed() == 0

    def touched_routers(self) -> FrozenSet[str]:
        """Every router that owns at least one changed signal."""
        touched: Set[str] = set(self.drains) | set(self.drain_reasons) | set(self.drops)
        for family in (self.counters, self.statuses, self.link_drains, self.probes):
            for node, _peer in family:
                touched.add(node)
        return frozenset(touched)
