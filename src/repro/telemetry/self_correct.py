"""Router-level self-correction: the Section 6 future direction.

"We are also curious if some of the techniques we identified might be
useful to incorporate back into routers and the control infrastructure
to help prevent the occurrence of incorrect inputs in the first place.
For example, a router may exchange interface counters with its
neighboring routers, in order to detect and self-correct anomalies in
its reported data."

:func:`peer_exchange_correct` implements that: before telemetry leaves
the routers, each pair of link neighbors exchanges the counters for
their shared link and applies the R1 symmetry test locally.  A counter
that disagrees with its peer beyond the threshold -- while the peer's
value is corroborated by the router's *other* local evidence -- is
replaced by the peer's measurement, and the correction is logged.

The corrected signal set is what the control infrastructure then
aggregates, so bug classes like zeroed duplicate telemetry never reach
the SDN controller at all -- prevention rather than validation.  Hodor
still runs downstream (self-correction shares R1's blindness to
symmetric corruption), making this an explicit defense-in-depth layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.net.topology import Topology
from repro.telemetry.counters import MalformedValueError, coerce_rate
from repro.telemetry.snapshot import NetworkSnapshot

__all__ = ["SelfCorrection", "peer_exchange_correct"]


@dataclass(frozen=True)
class SelfCorrection:
    """One counter a router corrected from its neighbor's copy.

    Attributes:
        node: The router that corrected its own data.
        peer: The neighbor whose measurement was adopted.
        side: ``"rx"`` or ``"tx"`` of the node's interface to the peer.
        old_value: The anomalous local value (None when missing or
            malformed).
        new_value: The adopted peer measurement.
    """

    node: str
    peer: str
    side: str
    old_value: Optional[float]
    new_value: float


def _rate(raw: object) -> Optional[float]:
    try:
        return coerce_rate(raw)  # type: ignore[arg-type]
    except MalformedValueError:
        return None


def peer_exchange_correct(
    snapshot: NetworkSnapshot,
    topology: Topology,
    tau: float = 0.02,
    floor: float = 1e-6,
) -> Tuple[NetworkSnapshot, List[SelfCorrection]]:
    """Run one round of neighbor counter exchange over a snapshot.

    For each traffic direction ``u -> v`` there are two measurements:
    tx at ``u``'s interface and rx at ``v``'s.  When they disagree
    beyond ``tau``, the router whose value fails its *local* flow
    balance adopts the peer's measurement; when localization is not
    possible (both pass or both fail locally), nothing is corrected --
    self-correction must never guess.

    Returns:
        ``(corrected_snapshot, corrections)``; the input snapshot is
        not mutated.
    """
    corrected = snapshot.copy()
    corrections: List[SelfCorrection] = []

    for link in topology.links():
        for src, dst in link.directions():
            tx_reading = corrected.counter(src, dst)
            rx_reading = corrected.counter(dst, src)
            if tx_reading is None or rx_reading is None:
                continue
            tx = _rate(tx_reading.tx_rate)
            rx = _rate(rx_reading.rx_rate)

            if tx is None and rx is None:
                continue
            if tx is None or rx is None:
                # A hole is repaired from the surviving peer copy.
                if tx is None:
                    tx_reading.tx_rate = rx
                    corrections.append(SelfCorrection(src, dst, "tx", None, rx))
                else:
                    rx_reading.rx_rate = tx
                    corrections.append(SelfCorrection(dst, src, "rx", None, tx))
                continue

            magnitude = max(abs(tx), abs(rx))
            if magnitude <= floor or abs(tx - rx) / magnitude <= tau:
                continue

            tx_ok = _local_balance_holds(corrected, topology, src, tau, floor)
            rx_ok = _local_balance_holds(corrected, topology, dst, tau, floor)
            if tx_ok == rx_ok:
                continue  # cannot localize the liar; leave for Hodor
            if tx_ok:
                rx_reading.rx_rate = tx
                corrections.append(SelfCorrection(dst, src, "rx", rx, tx))
            else:
                tx_reading.tx_rate = rx
                corrections.append(SelfCorrection(src, dst, "tx", tx, rx))

    return corrected, corrections


def _local_balance_holds(
    snapshot: NetworkSnapshot, topology: Topology, node: str, tau: float, floor: float
) -> bool:
    """Does this router's own flow balance hold with its current data?

    Uses only signals the router itself owns: rx/tx on all its
    interfaces (including the host-facing one) and its drop counter --
    exactly the information available on-box.
    """
    inbound = 0.0
    outbound = 0.0
    for (owner, _peer), reading in snapshot.counters.items():
        if owner != node:
            continue
        rx = _rate(reading.rx_rate)
        tx = _rate(reading.tx_rate)
        if rx is None or tx is None:
            return False  # a malformed local counter: balance unknowable
        inbound += rx
        outbound += tx
    drops = _rate(snapshot.drops.get(node)) or 0.0
    magnitude = max(inbound, outbound, 1e-9)
    if magnitude <= floor:
        return True
    return abs(inbound - outbound - drops) / magnitude <= 2 * tau
