"""OpenConfig-style signal paths.

The paper (Section 3.2, step 1) notes that operators rely on
vendor-agnostic telemetry APIs -- gNMI/OpenConfig -- whose documented
paths make it possible to enumerate available router signals once, at
design time.  This module provides that naming layer: every signal the
simulator can produce has a canonical, parseable path string, and the
:data:`SIGNAL_REGISTRY` is the design-time catalog Hodor's collection
step selects from.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional, Tuple

__all__ = ["SignalKind", "SignalPath", "PathError", "SIGNAL_REGISTRY"]


class PathError(ValueError):
    """Raised for malformed signal paths."""


class SignalKind(str, Enum):
    """Every router signal the telemetry layer can report."""

    #: Traffic rate received on an interface (rolling window average).
    RX_RATE = "rx-rate"
    #: Traffic rate transmitted on an interface.
    TX_RATE = "tx-rate"
    #: Physical/operational link status at one interface ("light").
    OPER_STATUS = "oper-status"
    #: Administrative status at one interface.
    ADMIN_STATUS = "admin-status"
    #: Router-level drain intent bit.
    DRAIN = "drain"
    #: Router-level drain reason label (Section 4.3 extension).
    DRAIN_REASON = "drain-reason"
    #: Per-endpoint link drain intent bit (Section 4.3 proposal).
    LINK_DRAIN = "link-drain"
    #: Total traffic rate dropped at the router.
    NODE_DROPS = "node-drops"
    #: Active neighbor probe result (manufactured signal, R4).
    PROBE = "probe"


#: Template and description per signal kind; ``{node}`` / ``{peer}``
#: placeholders follow OpenConfig conventions loosely.
SIGNAL_REGISTRY: Dict[SignalKind, Tuple[str, str]] = {
    SignalKind.RX_RATE: (
        "/interfaces/interface[name={node}:{peer}]/state/counters/in-rate",
        "received rate over the rolling window",
    ),
    SignalKind.TX_RATE: (
        "/interfaces/interface[name={node}:{peer}]/state/counters/out-rate",
        "transmitted rate over the rolling window",
    ),
    SignalKind.OPER_STATUS: (
        "/interfaces/interface[name={node}:{peer}]/state/oper-status",
        "operational (physical) link status",
    ),
    SignalKind.ADMIN_STATUS: (
        "/interfaces/interface[name={node}:{peer}]/state/admin-status",
        "administrative link status",
    ),
    SignalKind.DRAIN: (
        "/system/processes/drain[node={node}]/state/drained",
        "router drain intent",
    ),
    SignalKind.DRAIN_REASON: (
        "/system/processes/drain[node={node}]/state/reason",
        "router drain reason label",
    ),
    SignalKind.LINK_DRAIN: (
        "/interfaces/interface[name={node}:{peer}]/state/drained",
        "per-endpoint link drain intent",
    ),
    SignalKind.NODE_DROPS: (
        "/qos/interfaces/aggregate[node={node}]/state/dropped-rate",
        "aggregate dropped rate at the router",
    ),
    SignalKind.PROBE: (
        "/probes/probe[name={node}:{peer}]/state/reachable",
        "active neighbor probe reachability",
    ),
}

_NODE_ONLY_KINDS = frozenset(
    {SignalKind.DRAIN, SignalKind.DRAIN_REASON, SignalKind.NODE_DROPS}
)

_PATH_PATTERNS = {
    kind: re.compile(
        "^"
        + re.escape(template).replace(r"\{node\}", "(?P<node>[^:\\]/]+)").replace(
            r"\{peer\}", "(?P<peer>[^:\\]/]+)"
        )
        + "$"
    )
    for kind, (template, _description) in SIGNAL_REGISTRY.items()
}


@dataclass(frozen=True)
class SignalPath:
    """A fully qualified signal identifier.

    Attributes:
        kind: The signal family.
        node: Reporting router.
        peer: Facing router for interface-scoped signals (``None`` for
            router-scoped ones like drain and drops).  External
            interfaces use :data:`repro.net.topology.EXTERNAL_PEER`.
    """

    kind: SignalKind
    node: str
    peer: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind in _NODE_ONLY_KINDS:
            if self.peer is not None:
                raise PathError(f"{self.kind.value} is router-scoped; peer must be None")
        elif self.peer is None:
            raise PathError(f"{self.kind.value} is interface-scoped; peer is required")

    def render(self) -> str:
        """The canonical path string."""
        template, _description = SIGNAL_REGISTRY[self.kind]
        return template.format(node=self.node, peer=self.peer or "")

    @classmethod
    def parse(cls, text: str) -> "SignalPath":
        """Parse a rendered path back into a :class:`SignalPath`.

        Raises:
            PathError: If the text matches no registered template.
        """
        for kind, pattern in _PATH_PATTERNS.items():
            match = pattern.match(text)
            if match:
                groups = match.groupdict()
                return cls(kind, groups["node"], groups.get("peer"))
        raise PathError(f"unrecognized signal path: {text!r}")

    def __str__(self) -> str:
        return self.render()
