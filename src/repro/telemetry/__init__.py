"""Router telemetry: signal paths, counters, probes, and snapshots.

This layer produces what routers *report* -- the raw material for both
the SDN control infrastructure and for Hodor's collection step.
"""

from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.delta import SnapshotDelta
from repro.telemetry.gnmi import GnmiError, GnmiFacade
from repro.telemetry.counters import (
    CounterReading,
    Jitter,
    MalformedValueError,
    RawValue,
    coerce_rate,
)
from repro.telemetry.paths import SIGNAL_REGISTRY, PathError, SignalKind, SignalPath
from repro.telemetry.probes import LinkHealth, ProbeEngine
from repro.telemetry.self_correct import SelfCorrection, peer_exchange_correct
from repro.telemetry.snapshot import (
    InterfaceKey,
    LinkStatusReport,
    NetworkSnapshot,
    ProbeResult,
)

__all__ = [
    "CounterReading",
    "GnmiError",
    "GnmiFacade",
    "InterfaceKey",
    "Jitter",
    "LinkHealth",
    "LinkStatusReport",
    "MalformedValueError",
    "NetworkSnapshot",
    "PathError",
    "ProbeEngine",
    "ProbeResult",
    "RawValue",
    "SIGNAL_REGISTRY",
    "SelfCorrection",
    "SignalKind",
    "SignalPath",
    "SnapshotDelta",
    "TelemetryCollector",
    "coerce_rate",
    "peer_exchange_correct",
]
