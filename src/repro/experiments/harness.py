"""Full-report harness: run every study, write one results document.

``run_full_report()`` executes E1-E11 at configurable effort and
renders a single markdown document mirroring EXPERIMENTS.md's
structure with freshly measured numbers.  Exposed on the CLI as
``python -m repro report``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.drain_study import DRAIN_CASES, DrainStudy
from repro.experiments.hardening_study import HardeningStudy
from repro.experiments.outage_study import OutageStudy, taxonomy_census
from repro.experiments.perturbation import PerturbationStudy
from repro.experiments.reporting import format_percent, format_table
from repro.experiments.scale_study import ScaleStudy
from repro.experiments.threshold_study import ThresholdStudy
from repro.experiments.topology_study import FAULT_MODES, TopologyStudy

__all__ = ["ReportConfig", "run_full_report"]


@dataclass(frozen=True)
class ReportConfig:
    """Effort knobs for the full report.

    Attributes:
        perturbation_trials: Trials per zeroed-entry count (E2).
        hardening_trials: Trials per corruption count (E5).
        drain_trials: Trials per drain case (E7).
        threshold_trials: Snapshots per (tau_h, jitter) cell (E4).
        scale_sizes: Node counts for the E9 sweep.
        seed: Base seed for everything.
    """

    perturbation_trials: int = 240
    hardening_trials: int = 10
    drain_trials: int = 6
    threshold_trials: int = 3
    scale_sizes: tuple = (10, 20, 40, 80)
    seed: int = 0

    @classmethod
    def quick(cls) -> "ReportConfig":
        """A fast profile for smoke runs (~15 s)."""
        return cls(
            perturbation_trials=60,
            hardening_trials=4,
            drain_trials=2,
            threshold_trials=1,
            scale_sizes=(10, 20),
        )


def run_full_report(config: Optional[ReportConfig] = None) -> str:
    """Run every study and return the markdown report."""
    config = config or ReportConfig()
    started = time.time()
    sections: List[str] = ["# Hodor reproduction — full measured report", ""]

    def section(title: str, body: str) -> None:
        sections.append(f"## {title}\n")
        sections.append(body)
        sections.append("")

    # E2: perturbation study.
    perturbation = PerturbationStudy(matrices=8, seed=config.seed)
    rows = perturbation.run(zero_counts=(1, 2, 3, 4, 5, 6), trials=config.perturbation_trials)
    section(
        "E2 — demand perturbation detection (Section 4.1)",
        format_table(
            ["zeroed entries", "detection rate"],
            [[r.zeroed, format_percent(r.detection_rate)] for r in rows],
        )
        + f"\n\nfalse positives on clean matrices: "
        f"{format_percent(perturbation.false_positive_rate())}",
    )

    # E3 + E8: outage replay and taxonomy.
    outage = OutageStudy(history_epochs=8, seed=config.seed + 1)
    outcomes = outage.run()
    summary = OutageStudy.summarize(outcomes)
    census = taxonomy_census()
    section(
        "E3 — outage catalog vs three validators (Sections 1/6)",
        format_table(
            ["validator", "detection", "false positives"],
            [
                ["hodor", format_percent(summary["hodor_detection_rate"], 0),
                 format_percent(summary["hodor_false_positive_rate"], 0)],
                ["static checks", format_percent(summary["static_detection_rate"], 0),
                 format_percent(summary["static_false_positive_rate"], 0)],
                ["anomaly detection", format_percent(summary["anomaly_detection_rate"], 0),
                 format_percent(summary["anomaly_false_positive_rate"], 0)],
            ],
        ),
    )
    section(
        "E8 — root-cause taxonomy (Section 2)",
        format_table(
            ["category", "scenarios"], sorted(census.items(), key=lambda kv: -kv[1])
        ),
    )

    # E4: thresholds.
    threshold = ThresholdStudy(seed=config.seed)
    fp_rows = threshold.false_positive_sweep(trials=config.threshold_trials)
    taus = sorted({r.tau_h for r in fp_rows})
    jitters = sorted({r.jitter for r in fp_rows})
    cell = {(r.tau_h, r.jitter): r.false_positive_rate for r in fp_rows}
    section(
        "E4 — hardening threshold sensitivity (footnote 2)",
        format_table(
            ["tau_h \\ jitter"] + [f"{j:g}" for j in jitters],
            [[f"{t:g}"] + [format_percent(cell[(t, j)]) for j in jitters] for t in taus],
        ),
    )

    # E5: hardening efficacy.
    hardening = HardeningStudy(seed=config.seed)
    h_rows = hardening.corruption_sweep(trials=config.hardening_trials)
    correlated = hardening.correlated_vendor_bug()
    section(
        "E5 — hardening efficacy (Section 3.2 open question)",
        format_table(
            ["corrupted", "recall", "repair rate", "left unknown"],
            [
                [r.corrupted, format_percent(r.recall), format_percent(r.repair_rate),
                 format_percent(r.unknown_rate)]
                for r in h_rows
            ],
        )
        + (
            f"\n\ncorrelated vendor bug: {correlated.blind_flagged}/"
            f"{correlated.blind_directions} blind directions flagged, "
            f"{correlated.visible_flagged}/{correlated.visible_directions} visible flagged"
        ),
    )

    # E6: truth table.
    topology_study = TopologyStudy(seed=config.seed)
    t_rows = topology_study.run(modes=FAULT_MODES, profiles=("balanced",))
    section(
        "E6 — link-status truth table, balanced profile (Section 4.2)",
        format_table(
            ["failure mode", "accuracy", "suspect"],
            [[r.mode, format_percent(r.accuracy, 0), r.suspect] for r in t_rows],
        ),
    )

    # E7 (+ reasons extension).
    drains = DrainStudy(seed=config.seed)
    d_rows = drains.run(cases=DRAIN_CASES, trials=config.drain_trials)
    d_rows += drains.run_with_reasons(trials=config.drain_trials)
    section(
        "E7 — drain validation incl. reasons extension (Section 4.3)",
        format_table(
            ["case", "flagged", "should flag"],
            [[r.case, format_percent(r.rate, 0), "yes" if r.should_flag else "no"]
             for r in d_rows],
        ),
    )

    # E9: scale.
    scale = ScaleStudy(seed=config.seed, repetitions=2)
    s_rows = scale.run(sizes=config.scale_sizes)
    section(
        "E9 — always-on validation cost (Section 3.2)",
        format_table(
            ["nodes", "links", "signals", "validate (ms)"],
            [[r.nodes, r.links, r.signals, f"{r.validate_ms:.1f}"] for r in s_rows],
        ),
    )

    sections.append(f"_generated in {time.time() - started:.1f}s_")
    return "\n".join(sections)
