"""E3 + E8: replaying the Section 2 outages against three validators.

The paper's central quantitative claims:

- "a root cause of over one third of these major outages is ...
  incorrect inputs to the SDN controller" (E8: the taxonomy census of
  our scenario corpus mirrors that distribution), and
- "our early analysis suggests that this methodology could have averted
  the majority of the outages that stem from incorrect inputs in our
  dataset" (E3: Hodor detects the corrupted epoch before the controller
  acts on it).

Each catalog scenario runs through three validators:

- **Hodor** (dynamic validation, the paper's proposal),
- **static checks** (today's practice: impossible-value checks plus
  history-based heuristics),
- **anomaly detection** (per-entry statistical outlier detection on the
  demand input).

Static and anomaly baselines are trained on a window of clean epochs
from the same world, exactly as their production counterparts learn
from "historically correct values".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.baselines.anomaly import DemandAnomalyBaseline
from repro.baselines.static_checks import StaticValidator
from repro.control.demand_service import records_from_matrix
from repro.control.infra import ControlPlane
from repro.scenarios.catalog import Category, OutageScenario, all_scenarios

__all__ = ["ScenarioOutcome", "OutageStudy", "taxonomy_census"]


@dataclass(frozen=True)
class ScenarioOutcome:
    """How each validator fared on one scenario.

    Attributes:
        scenario: The scenario replayed.
        hodor_flagged: Hodor raised violations or warning+ findings.
        hodor_channels: Which inputs failed Hodor validation.
        static_flagged: The static-check baseline raised anything.
        anomaly_flagged: The statistical baseline flagged the demand.
        damaged: The network was visibly hurt when inputs were used.
    """

    scenario: OutageScenario
    hodor_flagged: bool
    hodor_channels: Tuple[str, ...]
    static_flagged: bool
    anomaly_flagged: bool
    damaged: bool

    @property
    def hodor_correct(self) -> bool:
        """Flagged when it should, silent when it should not."""
        return self.hodor_flagged == self.scenario.expect_detection

    @property
    def static_correct(self) -> bool:
        return self.static_flagged == self.scenario.expect_detection

    @property
    def anomaly_correct(self) -> bool:
        return self.anomaly_flagged == self.scenario.expect_detection


class OutageStudy:
    """Replays the scenario catalog against all three validators.

    Args:
        history_epochs: Clean epochs used to train the baselines.
        seed: Base seed for scenario builds.
    """

    def __init__(self, history_epochs: int = 8, seed: int = 1) -> None:
        if history_epochs < 1:
            raise ValueError(f"history_epochs must be >= 1, got {history_epochs}")
        self._history_epochs = history_epochs
        self._seed = seed

    # ------------------------------------------------------------------

    def _train_baselines(
        self, scenario: OutageScenario
    ) -> Tuple[StaticValidator, DemandAnomalyBaseline]:
        """Fit both baselines on clean epochs of this scenario's world.

        History comes from a *clean* control plane observing the same
        network with day-to-day demand variation (+-5%), mirroring how
        production heuristics accumulate from healthy operation.
        """
        world = scenario.build(self._seed)
        static = StaticValidator(world.topology)
        anomaly = DemandAnomalyBaseline(min_observations=3)

        clean_plane = ControlPlane(world.topology)
        truth = world.steady_state()
        snapshot = world.collector.collect(truth, health=world.link_health)
        for epoch in range(self._history_epochs):
            wiggle = 1.0 + 0.05 * ((epoch % 5) - 2) / 2.0
            demand = world.actual_demand.scaled(wiggle)
            records = records_from_matrix(demand, seed=self._seed + epoch)
            inputs = clean_plane.compute_inputs(snapshot, records)
            static.observe(inputs)
            anomaly.observe(inputs.demand)
        return static, anomaly

    def run_scenario(self, scenario: OutageScenario) -> ScenarioOutcome:
        """Replay one scenario through all three validators."""
        static, anomaly = self._train_baselines(scenario)
        world = scenario.build(self._seed)
        outcome = world.run_epoch()

        channels = tuple(
            sorted(
                name
                for name, verdict in outcome.report.verdicts.items()
                if not verdict.valid
            )
        )
        return ScenarioOutcome(
            scenario=scenario,
            hodor_flagged=outcome.detected,
            hodor_channels=channels,
            static_flagged=not static.check(outcome.inputs).passed,
            anomaly_flagged=not anomaly.passed(outcome.inputs.demand),
            damaged=outcome.damaged,
        )

    def run(self, scenarios: Sequence[OutageScenario] = ()) -> List[ScenarioOutcome]:
        """Replay the whole catalog (or a subset)."""
        return [self.run_scenario(s) for s in (scenarios or all_scenarios())]

    # ------------------------------------------------------------------

    @staticmethod
    def summarize(outcomes: Sequence[ScenarioOutcome]) -> Dict[str, float]:
        """Aggregate detection statistics over incorrect-input scenarios.

        Returns a dict with, per validator, the fraction of
        incorrect-input scenarios flagged ("averted") and whether the
        legitimate scenarios were wrongly flagged (false positives).
        """
        buggy = [o for o in outcomes if o.scenario.expect_detection]
        legit = [o for o in outcomes if not o.scenario.expect_detection]

        def rate(flags: List[bool]) -> float:
            return sum(flags) / len(flags) if flags else 0.0

        return {
            "hodor_detection_rate": rate([o.hodor_flagged for o in buggy]),
            "static_detection_rate": rate([o.static_flagged for o in buggy]),
            "anomaly_detection_rate": rate([o.anomaly_flagged for o in buggy]),
            "hodor_false_positive_rate": rate([o.hodor_flagged for o in legit]),
            "static_false_positive_rate": rate([o.static_flagged for o in legit]),
            "anomaly_false_positive_rate": rate([o.anomaly_flagged for o in legit]),
        }


def taxonomy_census(scenarios: Sequence[OutageScenario] = ()) -> Dict[str, int]:
    """E8: scenario counts per Section 2 root-cause category."""
    census: Dict[str, int] = {category: 0 for category in Category.ALL}
    for scenario in scenarios or all_scenarios():
        census[scenario.category] += 1
    return census
