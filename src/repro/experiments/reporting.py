"""Plain-text table rendering for experiment outputs.

Every study prints results in the same aligned-column format so bench
logs read like the paper's tables.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_percent", "format_rate"]


def format_percent(value: float, digits: int = 1) -> str:
    """``0.992 -> '99.2%'``."""
    return f"{value * 100:.{digits}f}%"


def format_rate(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}g}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as an aligned monospace table.

    Args:
        headers: Column titles.
        rows: Row cells; every cell is rendered with ``str``.

    Returns:
        The table as one string (no trailing newline).
    """
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = [render_row(headers), render_row(["-" * w for w in widths])]
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)
