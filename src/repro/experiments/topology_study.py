"""E6: topology validation and the link-status truth table (Section 4.2).

Sweeps the link-failure modes the paper's Section 4.2 discusses over
every link of the evaluation topology and scores whether the hardened
verdict matches physical reality, per risk profile and per evidence
ablation (status only / + counters / + probes).

Failure modes:

- ``clean``: link healthy, everything reported truthfully.
- ``one-end-lies-down``: healthy link, one endpoint misreports down.
- ``both-lie-up``: physically dead link, both endpoints report up.
- ``blackhole``: status truthfully up, dataplane does not forward.
- ``down``: honestly dead link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.config import HodorConfig, RiskProfile
from repro.core.pipeline import Hodor
from repro.core.signals import LinkVerdict
from repro.faults.base import FaultInjector
from repro.faults.router_faults import WrongLinkStatus
from repro.net.demand import gravity_demand
from repro.net.simulation import NetworkSimulator
from repro.net.topology import Topology
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import Jitter
from repro.telemetry.probes import LinkHealth, ProbeEngine
from repro.topologies.abilene import abilene

__all__ = ["FAULT_MODES", "TopologyRow", "TopologyStudy"]

FAULT_MODES = ("clean", "one-end-lies-down", "both-lie-up", "blackhole", "down")


@dataclass(frozen=True)
class TopologyRow:
    """Truth-table accuracy for one (mode, profile, evidence) cell.

    Attributes:
        mode: Fault mode exercised.
        risk_profile: Truth-table profile.
        use_counters: Whether R3 counter evidence was enabled.
        use_probes: Whether R4 probe evidence was enabled.
        links: Links tested.
        correct: Links whose hardened usability matched reality.
        suspect: Links left suspect (counted separately; a suspect
            verdict is an alarm, not an error).
    """

    mode: str
    risk_profile: str
    use_counters: bool
    use_probes: bool
    links: int
    correct: int
    suspect: int

    @property
    def accuracy(self) -> float:
        return self.correct / self.links if self.links else 1.0


class TopologyStudy:
    """Link-status hardening accuracy sweep.

    Args:
        topology: Evaluation graph; defaults to Abilene.
        demand_total: Matrix total.
        seed: Base seed.
    """

    def __init__(
        self,
        topology: Optional[Topology] = None,
        demand_total: float = 30.0,
        seed: int = 0,
    ) -> None:
        self._topology = topology or abilene()
        self._demand_total = demand_total
        self._seed = seed

    def _run_mode(
        self, link_name: str, mode: str, config: HodorConfig
    ) -> Optional[bool]:
        """Harden one faulted link; return verdict correctness.

        Returns None when the verdict came out suspect (scored apart).
        """
        topo = self._topology
        link = topo.link(link_name)
        demand = gravity_demand(topo.node_names(), total=self._demand_total, seed=self._seed)

        health: Dict[str, LinkHealth] = {}
        truly_usable = True
        if mode in ("both-lie-up", "down"):
            health[link_name] = LinkHealth(up=False)
            truly_usable = False
        elif mode == "blackhole":
            health[link_name] = LinkHealth(up=True, forwarding=False)
            truly_usable = False

        blackholes = [d for name, h in health.items() if not h.carries_traffic for d in topo.link(name).directions()]
        truth = NetworkSimulator(topo, demand, blackholes=blackholes).run()
        probe_engine = ProbeEngine(seed=self._seed + 5) if config.use_probes else None
        collector = TelemetryCollector(
            Jitter(0.005, seed=self._seed + 7), probe_engine=probe_engine
        )
        snapshot = collector.collect(truth, health=health)

        faults = []
        if mode == "one-end-lies-down":
            faults = [WrongLinkStatus([(link.a, link.b)], report_up=False)]
        elif mode == "both-lie-up":
            faults = [WrongLinkStatus([(link.a, link.b), (link.b, link.a)], report_up=True)]
        if faults:
            snapshot, _records = FaultInjector(faults, seed=self._seed).inject(snapshot)

        hodor = Hodor(topo, config)
        hardened = hodor.harden(snapshot)
        status = hardened.links[link_name]
        if status.verdict == LinkVerdict.SUSPECT:
            return None
        return status.usable == truly_usable

    # ------------------------------------------------------------------

    def run(
        self,
        modes: Sequence[str] = FAULT_MODES,
        profiles: Sequence[str] = RiskProfile.ALL,
        use_counters: bool = True,
        use_probes: bool = True,
        max_links: Optional[int] = None,
    ) -> List[TopologyRow]:
        """Score every (mode, profile) cell over all links."""
        link_names = sorted(link.name for link in self._topology.links())
        if max_links is not None:
            link_names = link_names[:max_links]
        rows = []
        for mode in modes:
            if mode not in FAULT_MODES:
                raise ValueError(f"unknown fault mode {mode!r}")
            for profile in profiles:
                config = HodorConfig(
                    risk_profile=profile,
                    use_counters_for_status=use_counters,
                    use_probes=use_probes,
                )
                correct = suspect = 0
                for link_name in link_names:
                    verdict = self._run_mode(link_name, mode, config)
                    if verdict is None:
                        suspect += 1
                    elif verdict:
                        correct += 1
                rows.append(
                    TopologyRow(
                        mode=mode,
                        risk_profile=profile,
                        use_counters=use_counters,
                        use_probes=use_probes,
                        links=len(link_names),
                        correct=correct,
                        suspect=suspect,
                    )
                )
        return rows

    def evidence_ablation(
        self, mode: str = "both-lie-up", profile: str = RiskProfile.BALANCED
    ) -> List[TopologyRow]:
        """The same mode scored with progressively less redundancy."""
        rows = []
        for use_counters, use_probes in ((False, False), (True, False), (True, True)):
            rows.extend(
                self.run(
                    modes=(mode,),
                    profiles=(profile,),
                    use_counters=use_counters,
                    use_probes=use_probes,
                )
            )
        return rows
