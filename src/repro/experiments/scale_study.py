"""E9/E13: validation cost vs network size and churn.

The paper envisions Hodor "as an always-on system that continuously
validates inputs to the SDN controller as it receives them" (Section
3.2), which only works if a validation pass is cheap at WAN scale.
This study measures wall-clock cost of the full pipeline (collect +
harden + all three checks) over random Waxman topologies of growing
size, plus (E13) the incremental engine's advantage when only a
fraction of signals move between epochs -- the production steady
state.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.control.demand_service import records_from_matrix
from repro.control.infra import ControlPlane
from repro.core.pipeline import Hodor
from repro.engine import ValidationEngine
from repro.net.demand import DemandMatrix, gravity_demand
from repro.net.simulation import NetworkSimulator
from repro.net.topology import EXTERNAL_PEER
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import Jitter
from repro.telemetry.probes import ProbeEngine
from repro.telemetry.snapshot import NetworkSnapshot
from repro.topologies.synthetic import waxman_topology

__all__ = [
    "ScaleRow",
    "EngineScaleRow",
    "IncrementalRow",
    "TraceOverheadRow",
    "VectorRow",
    "ScaleStudy",
    "churn_snapshot",
]


def churn_snapshot(
    snapshot: NetworkSnapshot,
    fraction: float,
    rng: random.Random,
    timestamp: float,
) -> NetworkSnapshot:
    """The next epoch's snapshot with ``fraction`` of links re-measured.

    Models the production steady state between two 30-second
    collections: most counters tick along at the same rate while a
    random subset of links sees its traffic level move.  Each churned
    link scales *all four* of its directed counters (rx and tx, both
    orientations) by one common factor, so R1 symmetry is preserved
    and churn never fabricates corruption.  Churned readings get the
    new collection timestamp; everything else is byte-identical to the
    previous epoch.

    Args:
        snapshot: The previous epoch's snapshot (not mutated).
        fraction: Probability each internal link is churned.
        rng: Random source (pass a seeded instance for reproducibility).
        timestamp: The new epoch's collection timestamp.
    """
    churned = snapshot.copy()
    churned.timestamp = timestamp
    by_link = {}
    for key in churned.counters:
        node, peer = key
        if peer != EXTERNAL_PEER:
            by_link.setdefault(frozenset((node, peer)), []).append(key)
    for edges in by_link.values():
        if rng.random() >= fraction:
            continue
        factor = 0.9 + 0.2 * rng.random()
        for edge in edges:
            reading = churned.counters[edge]
            if isinstance(reading.rx_rate, float):
                reading.rx_rate *= factor
            if isinstance(reading.tx_rate, float):
                reading.tx_rate *= factor
            reading.timestamp = timestamp
    return churned


@dataclass(frozen=True)
class ScaleRow:
    """Pipeline cost at one network size.

    Attributes:
        nodes: Router count.
        links: Link count.
        signals: Individual signals in the snapshot.
        validate_ms: Mean wall-clock per full validation pass.
        harden_ms: Mean wall-clock for collect+harden only.
    """

    nodes: int
    links: int
    signals: int
    validate_ms: float
    harden_ms: float


@dataclass(frozen=True)
class IncrementalRow:
    """Full vs incremental per-epoch engine cost at one network size.

    Attributes:
        nodes: Router count.
        links: Link count.
        epochs: Timed epochs per measurement (after one warm-up epoch
            that primes each engine's caches).
        churn: Fraction of links whose counters moved each epoch.
        full_ms: Best per-epoch wall-clock of ``mode="full"``.
        incremental_ms: Best per-epoch wall-clock of
            ``mode="incremental"`` on the identical epoch stream.
        speedup: ``full_ms / incremental_ms``.
        reuse_rate: Fraction of per-entity units the incremental run
            served from the previous epoch.
    """

    nodes: int
    links: int
    epochs: int
    churn: float
    full_ms: float
    incremental_ms: float
    speedup: float
    reuse_rate: float


@dataclass(frozen=True)
class VectorRow:
    """E17: array-compiled vs per-entity epoch cost at one size.

    Attributes:
        nodes: Router count.
        links: Link count.
        epochs: Timed epochs per vector measurement (after one warm-up
            epoch that compiles the model and primes the delta state).
        python_epochs: Timed epochs for the python reference column
            (capped at large sizes so the sweep stays bounded).
        churn: Fraction of links whose counters moved each epoch.
        python_ms: Best per-epoch wall-clock of the per-entity
            reference units (``backend="python"``, ``mode="full"``).
        vector_ms: Best mean per-epoch wall-clock of
            ``backend="vector"`` on the identical epoch stream.
        p99_ms: Per-epoch p99 latency of the best vector repetition
            (nearest-rank over its timed epochs).
        speedup: ``python_ms / vector_ms``.
        epochs_per_s: Sustained vector throughput, ``1000/vector_ms``.
        reuse_rate: Fraction of per-entity-equivalent units the vector
            run served from its delta state.
    """

    nodes: int
    links: int
    epochs: int
    python_epochs: int
    churn: float
    python_ms: float
    vector_ms: float
    p99_ms: float
    speedup: float
    epochs_per_s: float
    reuse_rate: float


@dataclass(frozen=True)
class TraceOverheadRow:
    """E14: engine cost with tracing off (NullTracer) vs fully on.

    Attributes:
        nodes: Router count.
        links: Link count.
        epochs: Timed epochs per measurement (after one warm-up).
        off_ms: Best per-epoch wall-clock with the default
            :class:`~repro.obs.trace.NullTracer` -- the shipped
            hot path.
        on_ms: Best per-epoch wall-clock with a live
            :class:`~repro.obs.trace.Tracer` recording the complete
            span tree plus per-verdict provenance instants.
        overhead: ``on_ms / off_ms - 1``.
        off_noise: Relative spread of the tracing-off repetitions,
            ``max/min - 1`` -- the measurement noise floor the
            overhead must be read against.
        spans: Spans one traced replay records.
        instants: Instant events one traced replay records.
    """

    nodes: int
    links: int
    epochs: int
    off_ms: float
    on_ms: float
    overhead: float
    off_noise: float
    spans: int
    instants: int


@dataclass(frozen=True)
class EngineScaleRow:
    """Serial vs always-on-engine cost at one network size.

    Attributes:
        nodes: Router count.
        links: Link count.
        epochs: Epochs replayed per measurement.
        serial_ms: Mean per-epoch cost of the stateless deployment
            model -- a fresh :class:`~repro.core.pipeline.Hodor` built
            for every epoch, paying topology setup each time.
        engine_ms: Mean per-epoch engine cost per shard count, as
            ``(shards, ms)`` pairs.
        cache_hits: Topology-cache hits the last engine run took
            (``epochs - 1`` when the topology never changed).
    """

    nodes: int
    links: int
    epochs: int
    serial_ms: float
    engine_ms: Tuple[Tuple[int, float], ...]
    cache_hits: int


class ScaleStudy:
    """Validation-latency scaling over random WAN topologies.

    Args:
        seed: Topology/demand seed.
        repetitions: Timed repetitions per size (mean reported).
    """

    def __init__(self, seed: int = 0, repetitions: int = 3) -> None:
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        self._seed = seed
        self._repetitions = repetitions

    def _epoch_fixture(self, size: int):
        """One size's topology, snapshot, and controller inputs."""
        topology = waxman_topology(size, seed=self._seed)
        demand = gravity_demand(
            topology.node_names(), total=4.0 * size, seed=self._seed
        )
        truth = NetworkSimulator(topology, demand, strategy="single").run()
        collector = TelemetryCollector(
            Jitter(0.005, seed=self._seed), probe_engine=ProbeEngine(seed=self._seed)
        )
        snapshot = collector.collect(truth)
        plane = ControlPlane(topology)
        records = records_from_matrix(demand, seed=self._seed)
        inputs = plane.compute_inputs(snapshot, records)
        return topology, snapshot, inputs

    def _sparse_epoch_fixture(self, size: int):
        """A WAN-shaped fixture that stays buildable at 1000 nodes.

        The dense fixture's gravity demand routes O(N^2) commodities
        through the ground-truth simulator, which dwarfs validation
        itself past ~100 nodes.  Here the Waxman attachment probability
        is scaled inversely with size so mean degree stays at the
        80-node fixture's level (real WANs do not densify
        quadratically), and each router offers demand to its next two
        name-order successors -- O(N) commodities to route, while the
        snapshot keeps the full per-entity surface (every link still
        carries counters, statuses, probes, and drains) that validation
        actually prices.
        """
        alpha = min(0.6, 0.6 * 80.0 / size)
        topology = waxman_topology(size, alpha=alpha, seed=self._seed)
        nodes = topology.node_names()
        demand = DemandMatrix(nodes)
        for i, src in enumerate(nodes):
            for step in (1, 2):
                demand[src, nodes[(i + step) % len(nodes)]] = 2.0 + (i % 5)
        truth = NetworkSimulator(topology, demand, strategy="single").run()
        collector = TelemetryCollector(
            Jitter(0.005, seed=self._seed), probe_engine=ProbeEngine(seed=self._seed)
        )
        snapshot = collector.collect(truth)
        plane = ControlPlane(topology)
        records = records_from_matrix(demand, seed=self._seed)
        inputs = plane.compute_inputs(snapshot, records)
        return topology, snapshot, inputs

    def run(self, sizes: Sequence[int] = (10, 20, 40, 80)) -> List[ScaleRow]:
        """Measure pipeline cost at each node count."""
        rows = []
        for size in sizes:
            topology, snapshot, inputs = self._epoch_fixture(size)
            hodor = Hodor(topology)

            start = time.perf_counter()
            for _ in range(self._repetitions):
                hodor.validate(snapshot, inputs)
            validate_ms = (time.perf_counter() - start) * 1000 / self._repetitions

            start = time.perf_counter()
            for _ in range(self._repetitions):
                hodor.harden(snapshot)
            harden_ms = (time.perf_counter() - start) * 1000 / self._repetitions

            rows.append(
                ScaleRow(
                    nodes=topology.num_nodes,
                    links=topology.num_links,
                    signals=snapshot.signal_count(),
                    validate_ms=validate_ms,
                    harden_ms=harden_ms,
                )
            )
        return rows

    def run_engine(
        self,
        sizes: Sequence[int] = (10, 20, 40, 80),
        epochs: int = 5,
        shard_counts: Sequence[int] = (1, 4),
    ) -> List[EngineScaleRow]:
        """Serial (fresh pipeline per epoch) vs always-on engine.

        The serial column prices the stateless deployment model the
        engine replaces: every epoch constructs a fresh
        :class:`~repro.core.pipeline.Hodor`, so every epoch pays
        topology setup.  The engine columns replay the same epoch
        stream through one long-lived
        :class:`~repro.engine.ValidationEngine`, which pays setup once
        and takes topology-cache hits on the remaining epochs.

        Args:
            sizes: Node counts to measure.
            epochs: Epochs replayed per measurement.
            shard_counts: Engine shard counts to measure.
        """
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        rows = []
        for size in sizes:
            topology, snapshot, inputs = self._epoch_fixture(size)

            def time_serial() -> float:
                start = time.perf_counter()
                for _ in range(epochs):
                    Hodor(topology).validate(snapshot, inputs)
                return (time.perf_counter() - start) * 1000 / epochs

            # Min over repetitions: wall-clock noise only ever adds.
            serial_ms = min(time_serial() for _ in range(self._repetitions))

            engine_ms = []
            cache_hits = 0
            for shards in shard_counts:
                best = float("inf")
                for _ in range(self._repetitions):
                    with ValidationEngine(topology, shards=shards) as engine:
                        start = time.perf_counter()
                        for _ in range(epochs):
                            engine.validate(snapshot, inputs)
                        best = min(
                            best, (time.perf_counter() - start) * 1000 / epochs
                        )
                        cache_hits = engine.stats.cache_hits
                engine_ms.append((shards, best))

            rows.append(
                EngineScaleRow(
                    nodes=topology.num_nodes,
                    links=topology.num_links,
                    epochs=epochs,
                    serial_ms=serial_ms,
                    engine_ms=tuple(engine_ms),
                    cache_hits=cache_hits,
                )
            )
        return rows

    def run_trace_overhead(
        self,
        sizes: Sequence[int] = (80,),
        epochs: int = 10,
        churn: float = 0.10,
        export_dir: Optional[str] = None,
    ) -> List[TraceOverheadRow]:
        """E14: what does observability cost the validation hot path?

        Replays the identical churned epoch stream through two engines:
        one with the default :class:`~repro.obs.trace.NullTracer`
        (tracing off -- the shipped configuration) and one with a live
        :class:`~repro.obs.trace.Tracer` plus a shared
        :class:`~repro.obs.metrics.MetricsRegistry` recording the full
        span tree, verdict provenance instants, and latency histograms.
        Best-of-repetitions per-epoch cost for each, with the
        tracing-off repetition spread reported as the noise floor.

        Args:
            sizes: Node counts to measure.
            epochs: Timed epochs per measurement.
            churn: Per-link probability of moving each epoch.
            export_dir: When given, the last traced run's Chrome trace
                (``E14_trace.json``) and Prometheus exposition
                (``E14_metrics.prom``) are written there, so CI can
                archive real artifacts produced under measurement.
        """
        from repro.control.metrics import engine_registry
        from repro.obs import MetricsRegistry, Tracer

        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        rows = []
        for size in sizes:
            topology, snapshot, inputs = self._epoch_fixture(size)
            rng = random.Random(self._seed)
            snapshots = [snapshot]
            for epoch in range(1, epochs + 1):
                snapshots.append(
                    churn_snapshot(snapshots[-1], churn, rng, float(epoch))
                )

            def replay(tracer=None, metrics=None) -> float:
                with ValidationEngine(
                    topology, tracer=tracer, metrics=metrics
                ) as engine:
                    engine.validate(snapshots[0], inputs)  # warm-up
                    start = time.perf_counter()
                    for snap in snapshots[1:]:
                        engine.validate(snap, inputs)
                    elapsed = (time.perf_counter() - start) * 1000 / epochs
                    if metrics is not None:
                        engine_registry(engine.stats, registry=metrics)
                    return elapsed

            off_runs = [replay() for _ in range(self._repetitions)]
            off_ms = min(off_runs)
            off_noise = max(off_runs) / off_ms - 1.0 if off_ms else 0.0

            on_ms = float("inf")
            tracer = None
            registry = None
            for _ in range(self._repetitions):
                tracer = Tracer()
                registry = MetricsRegistry()
                on_ms = min(on_ms, replay(tracer=tracer, metrics=registry))
            if export_dir is not None:
                tracer.write_chrome_trace(f"{export_dir}/E14_trace.json")
                registry.write(f"{export_dir}/E14_metrics.prom")

            events = tracer.events()
            rows.append(
                TraceOverheadRow(
                    nodes=topology.num_nodes,
                    links=topology.num_links,
                    epochs=epochs,
                    off_ms=off_ms,
                    on_ms=on_ms,
                    overhead=on_ms / off_ms - 1.0 if off_ms else 0.0,
                    off_noise=off_noise,
                    spans=sum(1 for e in events if e["type"] == "span"),
                    instants=sum(1 for e in events if e["type"] == "instant"),
                )
            )
        return rows

    def run_stream(
        self,
        sizes: Sequence[int] = (20, 80),
        epochs: int = 50,
        churn: float = 0.10,
        reorder: float = 0.10,
        drop: float = 0.01,
        duplicate: float = 0.02,
        mode: str = "full",
        export_dir: Optional[str] = None,
    ):
        """E15: sustained streamed ingestion under churn and delivery
        perturbations.

        For each size, streams ``epochs`` churned epochs through the
        full stack -- perturbed per-router feeds, bounded-queue ingest,
        watermark assembly, live engine -- and reports sustained
        throughput plus assembly-latency percentiles (see
        :func:`repro.stream.soak.run_soak`).  One pass per size: a soak
        is its own repetition.

        Args:
            sizes: Node counts to measure.
            epochs: Epochs streamed per size.
            churn: Per-link probability of moving each epoch.
            reorder: Per-delivery in-window reorder probability.
            drop: Per-delivery source-drop probability.
            duplicate: Per-delivery duplication probability.
            mode: Engine mode for the streamed validation.
            export_dir: When given, the largest size's Prometheus
                exposition is written there as ``E15_metrics.prom`` so
                CI archives a real artifact.

        Returns:
            One :class:`repro.stream.soak.SoakResult` per size.
        """
        from repro.stream import Perturbations, SoakConfig, run_soak

        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        rows = []
        for size in sizes:
            rows.append(
                run_soak(
                    SoakConfig(
                        nodes=size,
                        epochs=epochs,
                        seed=self._seed,
                        churn=churn,
                        perturb=Perturbations(
                            reorder=reorder, drop=drop, duplicate=duplicate
                        ),
                        mode=mode,
                    )
                )
            )
        if export_dir is not None:
            rows[-1].metrics.write(f"{export_dir}/E15_metrics.prom")
        return rows

    def run_vector(
        self,
        sizes: Sequence[int] = (20, 40, 80),
        epochs: int = 10,
        churn: float = 0.10,
        python_epochs: Optional[int] = None,
        fixture: str = "dense",
    ) -> List[VectorRow]:
        """E17: the array-compiled backend vs the per-entity units.

        Both backends replay the identical churned epoch stream (one
        warm-up epoch that, for the vector engine, also compiles the
        topology model; then the timed epochs).  The differential
        harness in ``tests/engine/test_vector.py`` separately proves
        the reports identical, so this measures pure cost.  The python
        column can be capped to fewer epochs at large sizes -- its
        per-epoch cost is what is being priced, not its endurance.

        Args:
            sizes: Node counts to measure.
            epochs: Timed epochs per vector measurement.
            churn: Per-link probability of moving each epoch.  Zero
                means the E9 workload -- the identical snapshot object
                replayed every epoch -- where the vector backend's
                wholesale short-circuit does the least work and the
                python full path still recomputes everything.
            python_epochs: Timed epochs for the python reference run
                (defaults to ``epochs``).
            fixture: ``"dense"`` (the E9/E13 gravity fixture) or
                ``"sparse"`` (the bounded-degree, O(N)-commodity
                fixture for the 200/500/1000 sweep -- see
                :meth:`_sparse_epoch_fixture`).
        """
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        ref_epochs = epochs if python_epochs is None else python_epochs
        if ref_epochs < 1:
            raise ValueError(f"python_epochs must be >= 1, got {ref_epochs}")
        if fixture not in ("dense", "sparse"):
            raise ValueError(f"fixture must be 'dense' or 'sparse', got {fixture!r}")
        build = (
            self._epoch_fixture if fixture == "dense" else self._sparse_epoch_fixture
        )
        rows = []
        for size in sizes:
            topology, snapshot, inputs = build(size)
            rng = random.Random(self._seed)
            snapshots = [snapshot]
            for epoch in range(1, epochs + 1):
                snapshots.append(
                    snapshot
                    if churn <= 0.0
                    else churn_snapshot(snapshots[-1], churn, rng, float(epoch))
                )

            python_ms = float("inf")
            for _ in range(self._repetitions):
                with ValidationEngine(topology) as engine:
                    engine.validate(snapshots[0], inputs)  # warm-up
                    start = time.perf_counter()
                    for snap in snapshots[1 : ref_epochs + 1]:
                        engine.validate(snap, inputs)
                    python_ms = min(
                        python_ms,
                        (time.perf_counter() - start) * 1000 / ref_epochs,
                    )

            vector_ms = float("inf")
            best_latencies: List[float] = []
            reuse_rate = 0.0
            for _ in range(self._repetitions):
                with ValidationEngine(topology, backend="vector") as engine:
                    engine.validate(snapshots[0], inputs)  # warm-up + compile
                    latencies = []
                    for snap in snapshots[1:]:
                        start = time.perf_counter()
                        engine.validate(snap, inputs)
                        latencies.append((time.perf_counter() - start) * 1000)
                    mean = sum(latencies) / epochs
                    if mean < vector_ms:
                        vector_ms = mean
                        best_latencies = sorted(latencies)
                        reuse_rate = engine.stats.reuse_rate()
            p99_index = max(1, -(-99 * len(best_latencies) // 100)) - 1
            rows.append(
                VectorRow(
                    nodes=topology.num_nodes,
                    links=topology.num_links,
                    epochs=epochs,
                    python_epochs=ref_epochs,
                    churn=churn,
                    python_ms=python_ms,
                    vector_ms=vector_ms,
                    p99_ms=best_latencies[p99_index],
                    speedup=python_ms / vector_ms if vector_ms else 0.0,
                    epochs_per_s=1000.0 / vector_ms if vector_ms else 0.0,
                    reuse_rate=reuse_rate,
                )
            )
        return rows

    def run_incremental(
        self,
        sizes: Sequence[int] = (20, 40, 80),
        epochs: int = 10,
        churn: float = 0.10,
    ) -> List[IncrementalRow]:
        """E13: full-recompute vs incremental engine under churn.

        Both engines replay the identical churned epoch stream (one
        warm-up epoch, then ``epochs`` timed ones); the differential
        harness in ``tests/engine`` separately proves the two modes'
        reports identical, so this measures pure cost.

        Args:
            sizes: Node counts to measure.
            epochs: Timed epochs per measurement.
            churn: Per-link probability of moving each epoch.
        """
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        rows = []
        for size in sizes:
            topology, snapshot, inputs = self._epoch_fixture(size)
            rng = random.Random(self._seed)
            snapshots = [snapshot]
            for epoch in range(1, epochs + 1):
                snapshots.append(
                    churn_snapshot(snapshots[-1], churn, rng, float(epoch))
                )

            def time_mode(mode: str) -> Tuple[float, float]:
                best = float("inf")
                reuse = 0.0
                for _ in range(self._repetitions):
                    with ValidationEngine(topology, mode=mode) as engine:
                        engine.validate(snapshots[0], inputs)  # warm-up
                        start = time.perf_counter()
                        for snap in snapshots[1:]:
                            engine.validate(snap, inputs)
                        best = min(
                            best, (time.perf_counter() - start) * 1000 / epochs
                        )
                        reuse = engine.stats.reuse_rate()
                return best, reuse

            full_ms, _ = time_mode("full")
            incremental_ms, reuse_rate = time_mode("incremental")
            rows.append(
                IncrementalRow(
                    nodes=topology.num_nodes,
                    links=topology.num_links,
                    epochs=epochs,
                    churn=churn,
                    full_ms=full_ms,
                    incremental_ms=incremental_ms,
                    speedup=full_ms / incremental_ms if incremental_ms else 0.0,
                    reuse_rate=reuse_rate,
                )
            )
        return rows
