"""E9: validation cost vs network size.

The paper envisions Hodor "as an always-on system that continuously
validates inputs to the SDN controller as it receives them" (Section
3.2), which only works if a validation pass is cheap at WAN scale.
This study measures wall-clock cost of the full pipeline (collect +
harden + all three checks) over random Waxman topologies of growing
size.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

from repro.control.demand_service import records_from_matrix
from repro.control.infra import ControlPlane
from repro.core.pipeline import Hodor
from repro.net.demand import gravity_demand
from repro.net.simulation import NetworkSimulator
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import Jitter
from repro.telemetry.probes import ProbeEngine
from repro.topologies.synthetic import waxman_topology

__all__ = ["ScaleRow", "ScaleStudy"]


@dataclass(frozen=True)
class ScaleRow:
    """Pipeline cost at one network size.

    Attributes:
        nodes: Router count.
        links: Link count.
        signals: Individual signals in the snapshot.
        validate_ms: Mean wall-clock per full validation pass.
        harden_ms: Mean wall-clock for collect+harden only.
    """

    nodes: int
    links: int
    signals: int
    validate_ms: float
    harden_ms: float


class ScaleStudy:
    """Validation-latency scaling over random WAN topologies.

    Args:
        seed: Topology/demand seed.
        repetitions: Timed repetitions per size (mean reported).
    """

    def __init__(self, seed: int = 0, repetitions: int = 3) -> None:
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        self._seed = seed
        self._repetitions = repetitions

    def run(self, sizes: Sequence[int] = (10, 20, 40, 80)) -> List[ScaleRow]:
        """Measure pipeline cost at each node count."""
        rows = []
        for size in sizes:
            topology = waxman_topology(size, seed=self._seed)
            demand = gravity_demand(
                topology.node_names(), total=4.0 * size, seed=self._seed
            )
            truth = NetworkSimulator(topology, demand, strategy="single").run()
            collector = TelemetryCollector(
                Jitter(0.005, seed=self._seed), probe_engine=ProbeEngine(seed=self._seed)
            )
            snapshot = collector.collect(truth)

            plane = ControlPlane(topology)
            records = records_from_matrix(demand, seed=self._seed)
            inputs = plane.compute_inputs(snapshot, records)
            hodor = Hodor(topology)

            start = time.perf_counter()
            for _ in range(self._repetitions):
                hodor.validate(snapshot, inputs)
            validate_ms = (time.perf_counter() - start) * 1000 / self._repetitions

            start = time.perf_counter()
            for _ in range(self._repetitions):
                hodor.harden(snapshot)
            harden_ms = (time.perf_counter() - start) * 1000 / self._repetitions

            rows.append(
                ScaleRow(
                    nodes=topology.num_nodes,
                    links=topology.num_links,
                    signals=snapshot.signal_count(),
                    validate_ms=validate_ms,
                    harden_ms=harden_ms,
                )
            )
        return rows
