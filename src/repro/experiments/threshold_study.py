"""E4: the hardening-threshold sensitivity study (paper footnote 2).

"This threshold depends on the network sampling frequency and traffic
patterns.  Based on production logs, we find 2% to be an appropriate
threshold."

Two sides of the trade-off:

- **False positives**: with tau_h too tight relative to the rolling-
  window jitter, healthy counter pairs get flagged as spurious.  We
  sweep tau_h against jitter magnitudes and report the fraction of
  clean directed edges flagged.
- **Misses**: with tau_h too loose, small corruptions pass as noise.
  We sweep the corruption magnitude and report the minimum detectable
  relative error per tau_h.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import HodorConfig
from repro.core.pipeline import Hodor
from repro.net.demand import gravity_demand
from repro.net.simulation import NetworkSimulator
from repro.net.topology import Topology
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import Jitter, coerce_rate
from repro.topologies.abilene import abilene

__all__ = ["ThresholdRow", "DetectabilityRow", "ThresholdStudy"]


@dataclass(frozen=True)
class ThresholdRow:
    """False-positive rate for one (tau_h, jitter) point.

    Attributes:
        tau_h: Hardening threshold.
        jitter: Per-reading noise magnitude.
        edges: Directed edges examined.
        flagged: Edges spuriously flagged on a clean snapshot.
    """

    tau_h: float
    jitter: float
    edges: int
    flagged: int

    @property
    def false_positive_rate(self) -> float:
        return self.flagged / self.edges if self.edges else 0.0


@dataclass(frozen=True)
class DetectabilityRow:
    """Detection of one corruption magnitude under one tau_h."""

    tau_h: float
    corruption: float  # relative error injected into one counter
    trials: int
    detected: int

    @property
    def detection_rate(self) -> float:
        return self.detected / self.trials if self.trials else 0.0


class ThresholdStudy:
    """tau_h sensitivity on Abilene.

    Args:
        topology: Evaluation graph; defaults to Abilene.
        demand_total: Matrix total (unsaturated regime).
        seed: Base seed.
    """

    def __init__(
        self,
        topology: Optional[Topology] = None,
        demand_total: float = 30.0,
        seed: int = 0,
    ) -> None:
        self._topology = topology or abilene()
        self._demand_total = demand_total
        self._seed = seed

    def _snapshot(self, jitter: float, seed: int):
        demand = gravity_demand(
            self._topology.node_names(), total=self._demand_total, seed=seed
        )
        truth = NetworkSimulator(self._topology, demand).run()
        return TelemetryCollector(Jitter(jitter, seed=seed + 999)).collect(truth)

    # ------------------------------------------------------------------

    def false_positive_sweep(
        self,
        tau_values: Sequence[float] = (0.005, 0.01, 0.02, 0.05),
        jitters: Sequence[float] = (0.005, 0.01, 0.02, 0.04),
        trials: int = 5,
    ) -> List[ThresholdRow]:
        """Fraction of healthy counter pairs flagged, per (tau_h, jitter)."""
        rows = []
        for tau_h in tau_values:
            for jitter in jitters:
                edges = flagged = 0
                for trial in range(trials):
                    snapshot = self._snapshot(jitter, self._seed + trial)
                    hodor = Hodor(self._topology, HodorConfig(tau_h=tau_h))
                    hardened = hodor.harden(snapshot)
                    for _edge, value in hardened.edge_flows.items():
                        edges += 1
                        if not value.known:
                            flagged += 1
                rows.append(ThresholdRow(tau_h, jitter, edges, flagged))
        return rows

    def detectability_sweep(
        self,
        tau_values: Sequence[float] = (0.01, 0.02, 0.05),
        corruptions: Sequence[float] = (0.01, 0.03, 0.05, 0.1, 0.25, 0.5, 1.0),
        trials: int = 20,
        jitter: float = 0.005,
    ) -> List[DetectabilityRow]:
        """Detection rate of a single corrupted counter vs its size.

        Each trial corrupts one random directed edge's receive-side
        counter by ``(1 + corruption)`` and asks whether R1 flags that
        edge.
        """
        import random as _random

        rows = []
        base_snapshot = self._snapshot(jitter, self._seed)
        edges = list(self._topology.directed_edges())
        for tau_h in tau_values:
            hodor = Hodor(self._topology, HodorConfig(tau_h=tau_h))
            for corruption in corruptions:
                detected = 0
                rng = _random.Random(self._seed + int(corruption * 1e6))
                for _trial in range(trials):
                    src, dst = rng.choice(edges)
                    snapshot = base_snapshot.copy()
                    reading = snapshot.counters[(dst, src)]
                    rate = coerce_rate(reading.rx_rate)
                    if rate is None or rate <= 0:
                        continue
                    reading.rx_rate = rate * (1.0 + corruption)
                    hardened = hodor.harden(snapshot)
                    if not hardened.edge_flows[(src, dst)].known or hardened.edge_flows[
                        (src, dst)
                    ].confidence.value == "repaired":
                        detected += 1
                rows.append(DetectabilityRow(tau_h, corruption, trials, detected))
        return rows
