"""E5: hardening efficacy -- the paper's Section 3.2 open question.

"A detailed evaluation of hardening efficacy remains an open question
that we are actively exploring."  This study provides that evaluation
on the simulator:

- **Detection**: precision/recall of R1 flagging as the number of
  independently corrupted counters grows.
- **Repair**: fraction of corrupted traffic directions whose hardened
  value lands within tolerance of ground truth, with the R1-only
  ablation (repair disabled) as contrast.  The paper's bound -- flow
  conservation recovers "up to |V| - 1 unknowns" -- shows up as repair
  rate collapsing once corruptions cluster.
- **Correlated failures**: the vendor-OS bug thought experiment, where
  whole routers mis-scale all their counters; when both endpoints of a
  link are affected equally, R1 is structurally blind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.config import HodorConfig
from repro.core.pipeline import Hodor
from repro.faults.base import FaultInjector
from repro.faults.router_faults import CorrelatedCounterFault, RandomCounterCorruption
from repro.net.demand import gravity_demand
from repro.net.simulation import GroundTruth, NetworkSimulator
from repro.net.topology import Topology
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import Jitter
from repro.topologies.abilene import abilene

__all__ = ["HardeningRow", "CorrelatedRow", "HardeningStudy"]


@dataclass(frozen=True)
class HardeningRow:
    """Detection and repair quality for one corruption count.

    Attributes:
        corrupted: Counters corrupted per trial.
        trials: Number of trials.
        recall: Corrupted directions flagged or repaired / corrupted.
        precision: Flagged directions actually corrupted / flagged.
        repair_rate: Corrupted directions whose hardened value is
            within ``repair_tol`` of ground truth.
        unknown_rate: Corrupted directions left unknown after repair.
        repair_enabled: Whether R2 repair ran (ablation axis).
    """

    corrupted: int
    trials: int
    recall: float
    precision: float
    repair_rate: float
    unknown_rate: float
    repair_enabled: bool


@dataclass(frozen=True)
class CorrelatedRow:
    """Outcome of the correlated vendor-bug experiment.

    Attributes:
        affected_nodes: Routers hit by the correlated fault.
        blind_directions: Traffic directions where both measurements
            scaled identically (R1 structurally cannot flag these).
        blind_flagged: Of those, how many hardening still flagged.
        visible_directions: Directions where only one side scaled.
        visible_flagged: Of those, how many hardening flagged.
    """

    affected_nodes: int
    blind_directions: int
    blind_flagged: int
    visible_directions: int
    visible_flagged: int


class HardeningStudy:
    """Hardening detection/repair efficacy on Abilene.

    Args:
        topology: Evaluation graph; defaults to Abilene.
        demand_total: Matrix total (unsaturated).
        jitter_magnitude: Telemetry noise.
        repair_tol: Relative error under which a repair counts correct.
        seed: Base seed.
    """

    def __init__(
        self,
        topology: Optional[Topology] = None,
        demand_total: float = 30.0,
        jitter_magnitude: float = 0.005,
        repair_tol: float = 0.02,
        seed: int = 0,
    ) -> None:
        self._topology = topology or abilene()
        self._demand_total = demand_total
        self._jitter = jitter_magnitude
        self._repair_tol = repair_tol
        self._seed = seed

    # ------------------------------------------------------------------

    def _simulate(self, seed: int) -> Tuple[GroundTruth, object]:
        demand = gravity_demand(
            self._topology.node_names(), total=self._demand_total, seed=seed
        )
        truth = NetworkSimulator(self._topology, demand).run()
        snapshot = TelemetryCollector(Jitter(self._jitter, seed=seed + 31)).collect(truth)
        return truth, snapshot

    @staticmethod
    def _affected_directions(records) -> Set[Tuple[str, str]]:
        """Map injection records to the traffic directions they distort.

        The rx counter of interface ``(node, peer)`` measures traffic
        ``peer -> node``; its tx counter measures ``node -> peer``.
        """
        directions: Set[Tuple[str, str]] = set()
        for record in records:
            if record.peer is None:
                continue
            if record.signal == "rx":
                directions.add((record.peer, record.node))
            elif record.signal == "tx":
                directions.add((record.node, record.peer))
            elif record.signal == "reading":
                directions.add((record.peer, record.node))
                directions.add((record.node, record.peer))
        return directions

    # ------------------------------------------------------------------

    def corruption_sweep(
        self,
        counts: Sequence[int] = (1, 2, 4, 8, 12),
        trials: int = 20,
        mode: str = "scale",
        enable_repair: bool = True,
    ) -> List[HardeningRow]:
        """Detection/repair vs number of independently corrupted counters."""
        config = HodorConfig(enable_repair=enable_repair)
        hodor = Hodor(self._topology, config)
        rows = []
        for count in counts:
            recall_hits = recall_total = 0
            precision_hits = precision_total = 0
            repaired_ok = unknown = 0
            for trial in range(trials):
                truth, snapshot = self._simulate(self._seed + trial)
                injector = FaultInjector(
                    [RandomCounterCorruption(count, mode=mode, side="rx", factor=3.0)],
                    seed=self._seed + 677 * trial + count,
                )
                corrupted_snapshot, records = injector.inject(snapshot)
                affected = self._affected_directions(records)
                hardened = hodor.harden(corrupted_snapshot)

                flagged = {
                    edge
                    for edge, value in hardened.edge_flows.items()
                    if not value.known or value.confidence.value == "repaired"
                }
                recall_total += len(affected)
                recall_hits += len(affected & flagged)
                precision_total += len(flagged)
                precision_hits += len(flagged & affected)

                for edge in affected:
                    value = hardened.edge_flows.get(edge)
                    if value is None or not value.known:
                        unknown += 1
                        continue
                    true_rate = truth.edge_flows.get(edge, 0.0)
                    scale = max(abs(true_rate), 1e-9)
                    if abs(value.value - true_rate) / scale <= self._repair_tol + self._jitter:
                        repaired_ok += 1

            rows.append(
                HardeningRow(
                    corrupted=count,
                    trials=trials,
                    recall=recall_hits / recall_total if recall_total else 1.0,
                    precision=precision_hits / precision_total if precision_total else 1.0,
                    repair_rate=repaired_ok / recall_total if recall_total else 1.0,
                    unknown_rate=unknown / recall_total if recall_total else 0.0,
                    repair_enabled=enable_repair,
                )
            )
        return rows

    def correlated_vendor_bug(
        self, nodes: Sequence[str] = ("kscy", "ipls", "atla"), factor: float = 0.5
    ) -> CorrelatedRow:
        """The correlated-failure thought experiment from Section 3.2."""
        truth, snapshot = self._simulate(self._seed)
        injector = FaultInjector(
            [CorrelatedCounterFault(nodes, factor=factor)], seed=self._seed
        )
        corrupted_snapshot, records = injector.inject(snapshot)
        hodor = Hodor(self._topology)
        hardened = hodor.harden(corrupted_snapshot)

        node_set = set(nodes)
        blind = visible = blind_flagged = visible_flagged = 0
        for src, dst in self._topology.directed_edges():
            if src not in node_set and dst not in node_set:
                continue
            # tx measured at src, rx measured at dst: both scale only
            # when both endpoints are affected.
            both = src in node_set and dst in node_set
            value = hardened.edge_flows[(src, dst)]
            flagged = not value.known or value.confidence.value == "repaired"
            if both:
                blind += 1
                blind_flagged += int(flagged)
            else:
                visible += 1
                visible_flagged += int(flagged)

        return CorrelatedRow(
            affected_nodes=len(node_set),
            blind_directions=blind,
            blind_flagged=blind_flagged,
            visible_directions=visible,
            visible_flagged=visible_flagged,
        )
