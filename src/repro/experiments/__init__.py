"""Experiment harness: one study per paper table/figure/claim.

See DESIGN.md's experiment index: E1 lives in the Figure 3 bench and
tests (the worked example needs no sweep); E2-E9 are the studies here.
"""

from repro.experiments.drain_study import DRAIN_CASES, DrainRow, DrainStudy
from repro.experiments.fuzz_study import (
    FuzzCensusRow,
    FuzzCoverageStudy,
    MutationRow,
    flip_one_verdict,
)
from repro.experiments.hardening_study import CorrelatedRow, HardeningRow, HardeningStudy
from repro.experiments.harness import ReportConfig, run_full_report
from repro.experiments.outage_study import OutageStudy, ScenarioOutcome, taxonomy_census
from repro.experiments.perturbation import PerturbationRow, PerturbationStudy
from repro.experiments.reporting import format_percent, format_rate, format_table
from repro.experiments.scale_study import (
    IncrementalRow,
    ScaleRow,
    ScaleStudy,
    TraceOverheadRow,
    VectorRow,
    churn_snapshot,
)
from repro.experiments.threshold_study import DetectabilityRow, ThresholdRow, ThresholdStudy
from repro.experiments.topology_study import FAULT_MODES, TopologyRow, TopologyStudy

__all__ = [
    "CorrelatedRow",
    "DRAIN_CASES",
    "DetectabilityRow",
    "DrainRow",
    "DrainStudy",
    "FAULT_MODES",
    "FuzzCensusRow",
    "FuzzCoverageStudy",
    "MutationRow",
    "flip_one_verdict",
    "HardeningRow",
    "HardeningStudy",
    "OutageStudy",
    "PerturbationRow",
    "PerturbationStudy",
    "ReportConfig",
    "IncrementalRow",
    "ScaleRow",
    "ScaleStudy",
    "TraceOverheadRow",
    "VectorRow",
    "churn_snapshot",
    "ScenarioOutcome",
    "ThresholdRow",
    "ThresholdStudy",
    "TopologyRow",
    "TopologyStudy",
    "format_percent",
    "format_rate",
    "format_table",
    "run_full_report",
    "taxonomy_census",
]
