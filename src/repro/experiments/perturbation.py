"""E2: the Section 4.1 preliminary evaluation.

Paper: "as a sensitivity analysis, we tested the accuracy of our
validation using demand matrices from the Abilene network that we
artificially 'perturbed' to mimic buggy demand matrices.  ...  with
tau_e = 0.02, our approach detects 99.2% of perturbed matrices with two
zeroed-out (missing) values out of 144, and 100% of perturbed matrices
with three or more zeroed-out values."

This study reproduces that: heavy-tailed demand matrices over the
Abilene graph (the SNDlib traces are not redistributable; see
DESIGN.md), k entries zeroed at random, detection = at least one of the
2v demand invariants violated.  It also provides the tau_e sweep the
paper's ongoing work gestures at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.config import HodorConfig
from repro.core.demand_check import DemandChecker
from repro.core.pipeline import Hodor
from repro.core.signals import HardenedState
from repro.net.demand import DemandMatrix, lognormal_demand, scale_entries, zero_entries
from repro.net.simulation import NetworkSimulator
from repro.net.topology import Topology
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import Jitter
from repro.topologies.abilene import abilene

__all__ = ["PerturbationRow", "PerturbationStudy"]


@dataclass(frozen=True)
class PerturbationRow:
    """Detection rate for one perturbation setting.

    Attributes:
        zeroed: Number of demand entries zeroed per trial.
        tau_e: Equality threshold used.
        trials: Trials run.
        detected: Trials in which validation flagged the matrix.
    """

    zeroed: int
    tau_e: float
    trials: int
    detected: int

    @property
    def detection_rate(self) -> float:
        return self.detected / self.trials if self.trials else 0.0

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Wilson score interval for the detection rate.

        Detection rates near 100% from a few hundred trials need error
        bars before being compared against the paper's 99.2%; the
        Wilson interval stays inside [0, 1] and behaves at the
        boundary.

        Args:
            z: Normal quantile (1.96 = 95% confidence).
        """
        if self.trials == 0:
            return (0.0, 1.0)
        n = self.trials
        p = self.detection_rate
        denominator = 1 + z * z / n
        center = (p + z * z / (2 * n)) / denominator
        margin = (z / denominator) * ((p * (1 - p) / n + z * z / (4 * n * n)) ** 0.5)
        return (max(0.0, center - margin), min(1.0, center + margin))


class PerturbationStudy:
    """Perturbed-demand detection accuracy on Abilene.

    Args:
        topology: Evaluation graph; defaults to Abilene.
        demand_total: Total demand per generated matrix (kept well
            below saturation so drops do not confound the invariants).
        jitter_magnitude: Telemetry noise.
        sigma: Log-scale spread of the heavy-tailed demand generator
            (see :func:`repro.net.demand.lognormal_demand`); the tail
            is what makes small perturbations occasionally escape
            detection, as in the paper's 99.2%-at-two-entries result.
        matrices: Number of distinct demand matrices; perturbation
            trials are spread evenly across them.
        seed: Base RNG seed.
    """

    def __init__(
        self,
        topology: Optional[Topology] = None,
        demand_total: float = 12.0,
        jitter_magnitude: float = 0.005,
        sigma: float = 1.0,
        matrices: int = 10,
        seed: int = 0,
    ) -> None:
        if matrices < 1:
            raise ValueError(f"matrices must be >= 1, got {matrices}")
        self._topology = topology or abilene()
        self._demand_total = demand_total
        self._jitter = jitter_magnitude
        self._sigma = sigma
        self._matrices = matrices
        self._seed = seed
        self._cache: List[Tuple[DemandMatrix, HardenedState]] = []

    # ------------------------------------------------------------------

    def _materialize(self) -> List[Tuple[DemandMatrix, HardenedState]]:
        """Simulate and harden each base matrix once (they are reused
        across every perturbation trial)."""
        if self._cache:
            return self._cache
        hodor = Hodor(self._topology)
        for index in range(self._matrices):
            demand = lognormal_demand(
                self._topology.node_names(),
                total=self._demand_total,
                sigma=self._sigma,
                seed=self._seed + index,
            )
            truth = NetworkSimulator(self._topology, demand).run()
            snapshot = TelemetryCollector(
                Jitter(self._jitter, seed=self._seed + 1000 + index)
            ).collect(truth)
            hardened = hodor.harden(snapshot)
            self._cache.append((demand, hardened))
        return self._cache

    def _detects(
        self, checker: DemandChecker, demand: DemandMatrix, hardened: HardenedState
    ) -> bool:
        return not checker.check(demand, hardened).passed

    # ------------------------------------------------------------------

    def run(
        self,
        zero_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
        trials: int = 240,
        tau_e: float = 0.02,
    ) -> List[PerturbationRow]:
        """Detection rate vs number of zeroed entries (the paper's
        headline table)."""
        bases = self._materialize()
        checker = DemandChecker(HodorConfig(tau_e=tau_e))
        rows = []
        for zeroed in zero_counts:
            detected = 0
            for trial in range(trials):
                demand, hardened = bases[trial % len(bases)]
                perturbed = zero_entries(demand, zeroed, seed=self._seed + 7919 * trial + zeroed)
                if self._detects(checker, perturbed, hardened):
                    detected += 1
            rows.append(PerturbationRow(zeroed, tau_e, trials, detected))
        return rows

    def false_positive_rate(self, tau_e: float = 0.02) -> float:
        """Fraction of *unperturbed* matrices flagged (must be ~0)."""
        bases = self._materialize()
        checker = DemandChecker(HodorConfig(tau_e=tau_e))
        flagged = sum(
            1 for demand, hardened in bases if self._detects(checker, demand, hardened)
        )
        return flagged / len(bases)

    def tau_sweep(
        self,
        taus: Sequence[float] = (0.005, 0.01, 0.02, 0.05, 0.1),
        zeroed: int = 2,
        trials: int = 120,
    ) -> List[PerturbationRow]:
        """Detection rate vs tau_e at a fixed perturbation size."""
        bases = self._materialize()
        rows = []
        for tau_e in taus:
            checker = DemandChecker(HodorConfig(tau_e=tau_e))
            detected = 0
            for trial in range(trials):
                demand, hardened = bases[trial % len(bases)]
                perturbed = zero_entries(demand, zeroed, seed=self._seed + 104729 * trial)
                if self._detects(checker, perturbed, hardened):
                    detected += 1
            rows.append(PerturbationRow(zeroed, tau_e, trials, detected))
        return rows

    def scaling_perturbations(
        self,
        factors: Sequence[float] = (0.5, 0.8, 0.9, 1.1, 1.25, 2.0),
        count: int = 2,
        trials: int = 120,
        tau_e: float = 0.02,
    ) -> List[Tuple[float, PerturbationRow]]:
        """Detection of scaled (not zeroed) entries -- the
        double-count / half-report bug shapes."""
        bases = self._materialize()
        checker = DemandChecker(HodorConfig(tau_e=tau_e))
        out = []
        for factor in factors:
            detected = 0
            for trial in range(trials):
                demand, hardened = bases[trial % len(bases)]
                perturbed = scale_entries(
                    demand, count, factor, seed=self._seed + 15485863 * trial
                )
                if self._detects(checker, perturbed, hardened):
                    detected += 1
            out.append((factor, PerturbationRow(count, tau_e, trials, detected)))
        return out
