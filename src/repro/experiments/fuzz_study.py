"""E16: what the scenario fuzzer actually covers, and what it kills.

Two measurements back the fuzz harness's value claim:

* **Coverage**: a bounded campaign over generated worlds -- how many
  distinct fault/bug kinds the generator exercised, how often, and
  that the tri-modal oracle agreed on every case (the current tree is
  green under fuzzing).
* **Mutation kill**: plant the canonical mode-divergence bug (a
  verdict flip in one execution path, via the oracle's hooks seam) and
  measure how many generated cases the campaign needs to find it and
  how small the shrinker makes the reproducer.  This is the harness
  testing itself: a fuzzer that cannot find a planted bug finds no
  real ones either.

Everything is seed-pinned; the campaign uses case caps rather than
wall-clock budgets so the measured numbers are machine-independent.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.fuzz import FuzzReport, TriModalOracle

__all__ = ["FuzzCensusRow", "MutationRow", "FuzzCoverageStudy", "flip_one_verdict"]


@dataclass(frozen=True)
class FuzzCensusRow:
    """One fault/bug kind's appearance count across a campaign."""

    fault: str
    cases: int


@dataclass(frozen=True)
class MutationRow:
    """One planted mode-divergence bug and how the harness killed it."""

    mode: str
    cases_to_find: int
    shrunk_epochs: int
    shrunk_faults: int
    checks: int
    reductions: int


def flip_one_verdict(index: int, report):
    """The canonical planted bug: flip one verdict whenever hardening
    produced findings.  Keyed to findings so benign epochs still agree
    across modes -- the shrinker must keep the triggering fault."""
    if not report.hardened.findings or not report.verdicts:
        return report
    name = sorted(report.verdicts)[0]
    verdicts = dict(report.verdicts)
    verdicts[name] = dataclasses.replace(
        verdicts[name], valid=not verdicts[name].valid
    )
    return dataclasses.replace(report, verdicts=verdicts)


class FuzzCoverageStudy:
    """Seed-pinned fuzz-campaign measurements for E16."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    # ------------------------------------------------------------------

    def run_coverage(self, cases: int = 40) -> Tuple["FuzzReport", List[FuzzCensusRow]]:
        """A bounded campaign on the clean tree: every case must pass,
        and the census shows which injector kinds were exercised."""
        # Imported lazily: repro.fuzz itself imports repro.scenarios,
        # whose package init pulls this module back in via
        # repro.experiments -- a module-level import here would cycle.
        from repro.fuzz import FuzzRunner

        runner = FuzzRunner(
            seed=self.seed, budget_s=None, max_cases=cases, shrink=False
        )
        report = runner.run()
        rows = [
            FuzzCensusRow(fault=name, cases=report.fault_census[name])
            for name in sorted(report.fault_census)
        ]
        return report, rows

    # ------------------------------------------------------------------

    def run_mutation(
        self,
        modes: Sequence[str] = ("full", "incremental", "streamed"),
        max_cases: int = 60,
    ) -> List[MutationRow]:
        """Plant the verdict-flip bug in each mode in turn; report the
        cases needed to find it and the shrunk reproducer's size."""
        from repro.fuzz import Shrinker, TriModalOracle

        rows: List[MutationRow] = []
        for mode in modes:
            oracle = TriModalOracle(hooks={mode: flip_one_verdict})
            found = self._first_failure(oracle, max_cases)
            if found is None:
                rows.append(
                    MutationRow(
                        mode=mode,
                        cases_to_find=-1,
                        shrunk_epochs=0,
                        shrunk_faults=0,
                        checks=0,
                        reductions=0,
                    )
                )
                continue
            case_index, spec = found
            shrunk = Shrinker(oracle).shrink(spec)
            rows.append(
                MutationRow(
                    mode=mode,
                    cases_to_find=case_index + 1,
                    shrunk_epochs=shrunk.spec.num_epochs,
                    shrunk_faults=shrunk.total_faults,
                    checks=shrunk.checks,
                    reductions=shrunk.reductions,
                )
            )
        return rows

    def _first_failure(self, oracle: "TriModalOracle", max_cases: int):
        """Walk the same seed-derived case stream a campaign would and
        return the first failing (index, spec), or None."""
        import random

        from repro.fuzz import CaseGenerator

        generator = CaseGenerator()
        master = random.Random(self.seed)
        for case_index in range(max_cases):
            spec = generator.generate(master.randrange(2**32))
            if oracle.run(spec).failed:
                return case_index, spec
        return None
