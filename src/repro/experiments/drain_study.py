"""E7: drain validation (Section 4.3).

Scores Hodor's drain checking on the three drain situations the paper
dissects, plus the legitimate cases that must *not* fire:

- ``inconsistent-link-drain``: the restart-race bug; detection comes
  from the proposed both-ends-must-agree symmetry.
- ``spurious-drain``: healthy, traffic-carrying routers erroneously
  report drained (the paper's hard "case 2"; flagged as warning-grade
  evidence, with acknowledged false-positive risk on fresh drains).
- ``missed-drain``: a broken router fails to report drained while its
  links cannot carry traffic ("case 1").
- ``legit-drain``: a clean, correctly reported drain -- must pass.
- ``fresh-drain``: a correct drain that still carries residual traffic
  -- the acknowledged false-positive of case 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.faults.intent_faults import InconsistentLinkDrain, MissedDrain, SpuriousDrain
from repro.net.demand import gravity_demand
from repro.net.topology import Node, Topology
from repro.scenarios.world import World
from repro.telemetry.probes import LinkHealth
from repro.topologies.abilene import abilene

__all__ = ["DRAIN_CASES", "DrainRow", "DrainStudy"]

DRAIN_CASES = (
    "inconsistent-link-drain",
    "spurious-drain",
    "missed-drain",
    "legit-drain",
    "fresh-drain",
)


@dataclass(frozen=True)
class DrainRow:
    """Detection outcome for one drain case.

    Attributes:
        case: Which drain situation was exercised.
        trials: Trials run (different routers/links per trial).
        flagged: Trials where Hodor raised a drain violation or a
            warning-grade drain finding.
        should_flag: Whether flagging is the correct behaviour.
    """

    case: str
    trials: int
    flagged: int
    should_flag: bool

    @property
    def rate(self) -> float:
        return self.flagged / self.trials if self.trials else 0.0

    @property
    def correct_rate(self) -> float:
        return self.rate if self.should_flag else 1.0 - self.rate


class DrainStudy:
    """Drain-validation accuracy sweep on Abilene.

    Args:
        demand_total: Matrix total.
        seed: Base seed.
    """

    def __init__(self, demand_total: float = 30.0, seed: int = 0) -> None:
        self._demand_total = demand_total
        self._seed = seed

    # ------------------------------------------------------------------

    def _world_for_case(self, case: str, trial: int) -> World:
        topo = abilene()
        nodes = topo.node_names()
        target = nodes[trial % len(nodes)]
        demand = gravity_demand(nodes, total=self._demand_total, seed=self._seed + trial)
        seed = self._seed + 100 * trial

        if case == "inconsistent-link-drain":
            peer = sorted(topo.neighbors(target))[0]
            return World(
                topo,
                demand,
                signal_faults=[InconsistentLinkDrain([(target, peer)])],
                seed=seed,
            )
        if case == "spurious-drain":
            return World(topo, demand, signal_faults=[SpuriousDrain([target])], seed=seed)
        if case == "missed-drain":
            drained = self._drained(topo, target)
            health = {
                drained.link_between(target, peer).name: LinkHealth(up=True, forwarding=False)
                for peer in drained.neighbors(target)
            }
            return World(
                drained,
                self._zeroed(demand, target),
                link_health=health,
                signal_faults=[MissedDrain([target])],
                seed=seed,
            )
        if case == "legit-drain":
            return World(
                self._drained(topo, target), self._zeroed(demand, target), seed=seed
            )
        if case == "fresh-drain":
            # Operator just drained the router: the drain report is
            # genuine but traffic has not moved off yet.  From the
            # signals alone this is indistinguishable from an erroneous
            # drain -- reported drained, demonstrably carrying traffic
            # -- which is exactly why the paper calls case 2 hard and
            # proposes attaching drain *reasons*.  Hodor flags it as
            # warning-grade evidence either way.
            return World(topo, demand, signal_faults=[SpuriousDrain([target])], seed=seed)
        raise ValueError(f"unknown drain case {case!r}")

    @staticmethod
    def _drained(topo: Topology, target: str) -> Topology:
        drained = topo.copy()
        node = drained.node(target)
        drained.replace_node(
            Node(target, site=node.site, drained=True, vendor=node.vendor)
        )
        return drained

    @staticmethod
    def _zeroed(demand, target):
        reduced = demand.copy()
        for other in demand.nodes:
            if other != target:
                reduced[target, other] = 0.0
                reduced[other, target] = 0.0
        return reduced

    @staticmethod
    def _drain_flagged(outcome) -> bool:
        drain_check = outcome.report.checks.get("drain")
        if drain_check is not None and not drain_check.passed:
            return True
        return any(
            finding.code in ("R1_DRAIN_MISMATCH", "DRAINED_BUT_CARRYING")
            and finding.severity.value in ("warning", "critical")
            for finding in outcome.report.hardened.findings
        )

    # ------------------------------------------------------------------

    def run_with_reasons(self, trials: int = 6) -> List[DrainRow]:
        """The Section 4.3 reasons extension, scored.

        With standardized drain reasons attached:

        - a *fresh maintenance drain* carrying residual traffic is no
          longer flagged (the acknowledged case-2 false positive goes
          away), and
        - an *erroneous automation drain* that claims ``faulty-link``
          is actively disproven against hardened link evidence (a
          violation, not just warning-grade suspicion).
        """
        rows = []

        flagged = 0
        for trial in range(trials):
            world = self._reason_world(trial, reason="maintenance")
            outcome = world.run_epoch()
            if self._drain_flagged(outcome):
                flagged += 1
        rows.append(
            DrainRow(
                case="fresh-drain-with-reason",
                trials=trials,
                flagged=flagged,
                should_flag=False,
            )
        )

        flagged = 0
        for trial in range(trials):
            world = self._reason_world(trial, reason="faulty-link")
            outcome = world.run_epoch()
            drain_check = outcome.report.checks.get("drain")
            if drain_check is not None and any(
                "reason-supported" in v.invariant.name for v in drain_check.violations
            ):
                flagged += 1
        rows.append(
            DrainRow(
                case="false-faulty-link-claim",
                trials=trials,
                flagged=flagged,
                should_flag=True,
            )
        )
        return rows

    def _reason_world(self, trial: int, reason: str) -> World:
        topo = abilene()
        nodes = topo.node_names()
        target = nodes[trial % len(nodes)]
        demand = gravity_demand(nodes, total=self._demand_total, seed=self._seed + trial)
        return World(
            topo,
            demand,
            signal_faults=[SpuriousDrain([target], claimed_reason=reason)],
            seed=self._seed + 100 * trial,
        )

    def run(
        self, cases: Sequence[str] = DRAIN_CASES, trials: int = 6
    ) -> List[DrainRow]:
        """Score each drain case over several target routers."""
        rows = []
        for case in cases:
            if case not in DRAIN_CASES:
                raise ValueError(f"unknown drain case {case!r}")
            should_flag = case in (
                "inconsistent-link-drain",
                "spurious-drain",
                "missed-drain",
                "fresh-drain",  # acknowledged false positive of case 2
            )
            flagged = 0
            for trial in range(trials):
                world = self._world_for_case(case, trial)
                outcome = world.run_epoch()
                if self._drain_flagged(outcome):
                    flagged += 1
            rows.append(
                DrainRow(case=case, trials=trials, flagged=flagged, should_flag=should_flag)
            )
        return rows
