"""Worker process: N tenants' pipelines on one event loop.

Each worker is a separate OS process (the GIL sidestep): inside it,
one asyncio loop runs every assigned tenant's
:class:`~repro.stream.ingest.StreamPipeline` as a concurrent task --
tenants interleave at the bounded-queue awaits, so a slow tenant
costs latency, not liveness.

Channel discipline:

* The **control channel** (supervisor -> worker) is read by a plain
  daemon thread that forwards each message into the loop via
  ``call_soon_threadsafe`` -- the loop itself never blocks on the
  multiprocessing queue, keeping the async side A1-clean.
* The **results channel** (worker -> supervisor) carries small tuples:
  one ``digest`` per validated epoch (so a crash loses at most the
  in-flight epoch), one ``tenant_done`` summary per finished tenant
  (with the tenant's metrics exposition for fleet rollup), and a
  final ``worker_done``.

Control messages::

    ("run", spec)            dispatch one TenantSpec
    ("quarantine", tenant)   cancel that tenant's task now
    ("degrade", bool)        toggle shed-partial-epochs mode
    ("drain",)               finish assigned work, then exit
    ("kill",)                exit now, abandoning running tenants
    ("crash",)               test hook: die like a segfault (_exit)

A quarantined tenant's task is cancelled at its next await; its
``tenant_done`` summary reports ``status="quarantined"`` with whatever
digests already shipped left standing (the supervisor keeps them --
the epochs were validated before the quarantine landed).
"""

from __future__ import annotations

import asyncio
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.fleet.scenario import run_tenant_async
from repro.fleet.spec import TenantSpec, tenant_store_path

__all__ = ["worker_main"]


@dataclass
class _WorkerState:
    """One worker run's mutable state, owned by the event loop."""

    worker_id: int
    results: object
    store_dir: Optional[str]
    deterministic_history: bool
    tasks: Dict[str, asyncio.Task] = field(default_factory=dict)
    degraded: bool = False
    draining: bool = False


def _gate_for(state: _WorkerState):
    """Shed partial epochs while the fleet is degraded.

    Complete epochs always validate; the degradation lever only drops
    epochs that are *already* damaged (missing routers), trading their
    partial verdicts for headroom -- the "shed partial-epoch sealing
    before healthy tenants starve" rule.
    """

    def gate(epoch) -> bool:
        return epoch.complete or not state.degraded

    return gate


async def _run_one(state: _WorkerState, spec: TenantSpec) -> None:
    results = state.results
    store_path = None
    if state.store_dir is not None and spec.history:
        store_path = tenant_store_path(state.store_dir, spec.tenant)
    status = "done"
    summary = None
    try:
        run = await run_tenant_async(
            spec,
            store_path=store_path,
            deterministic_history=state.deterministic_history,
            gate=_gate_for(state),
            on_digest=lambda digest: results.put(
                ("digest", state.worker_id, spec.tenant, digest)
            ),
        )
        summary = run.to_summary()
    except asyncio.CancelledError:
        status = "quarantined"
    except Exception as exc:  # noqa: BLE001 - one tenant must not kill its siblings
        status = "error"
        results.put(("error", state.worker_id, spec.tenant, repr(exc)))
    finally:
        state.tasks.pop(spec.tenant, None)
        if summary is None:
            summary = {"tenant": spec.tenant}
        summary["status"] = status
        results.put(("tenant_done", state.worker_id, spec.tenant, summary))


async def _worker(
    worker_id: int,
    control,
    results,
    store_dir: Optional[str],
    deterministic_history: bool,
) -> None:
    loop = asyncio.get_running_loop()
    inbox: asyncio.Queue = asyncio.Queue()

    def read_control() -> None:
        while True:
            message = control.get()
            if message[0] == "crash":
                # Simulated hard death: no cleanup, no goodbye -- the
                # supervisor must notice via liveness, not protocol.
                os._exit(17)
            loop.call_soon_threadsafe(inbox.put_nowait, message)
            if message[0] in ("drain", "kill"):
                return

    reader = threading.Thread(
        target=read_control, name=f"fleet-control-{worker_id}", daemon=True
    )
    reader.start()

    state = _WorkerState(
        worker_id=worker_id,
        results=results,
        store_dir=store_dir,
        deterministic_history=deterministic_history,
    )
    while True:
        message = await inbox.get()
        kind = message[0]
        if kind == "run":
            spec = message[1]
            state.tasks[spec.tenant] = asyncio.ensure_future(_run_one(state, spec))
        elif kind == "quarantine":
            task = state.tasks.get(message[1])
            if task is not None:
                task.cancel()
        elif kind == "degrade":
            state.degraded = bool(message[1])
        elif kind == "drain":
            state.draining = True
            break
        elif kind == "kill":
            for task in state.tasks.values():
                task.cancel()
            break
    if state.draining:
        # Deterministic drain: every assigned tenant runs to
        # completion (or its cancellation unwinds) before the goodbye.
        while state.tasks:
            await asyncio.gather(*state.tasks.values(), return_exceptions=True)
    else:
        await asyncio.gather(*state.tasks.values(), return_exceptions=True)
    results.put(("worker_done", worker_id))


def worker_main(
    worker_id: int,
    control,
    results,
    store_dir: Optional[str] = None,
    deterministic_history: bool = True,
) -> None:
    """Process entry point: run this worker's loop until told to stop."""
    asyncio.run(
        _worker(worker_id, control, results, store_dir, deterministic_history)
    )
