"""Tenant workload construction and the single-tenant run loop.

Workers never receive topologies or feeds over the wire: a
:class:`~repro.fleet.spec.TenantSpec` is a seed-complete recipe, and
:func:`build_workload` rebuilds the identical workload -- topology,
demand, churned epoch timeline, controller inputs -- wherever it runs.
:func:`run_tenant` then drives that workload through the real
streaming stack (:class:`~repro.stream.ingest.StreamPipeline`, scatter
seal path by default) exactly as a standalone deployment would.

That sharing is the differential's backbone: the in-fleet worker and
the standalone comparator call the *same* function, so any divergence
between fleet and standalone digests is a supervisor/worker bug by
construction, not a fixture mismatch.

Heavy dependencies import lazily inside :func:`build_workload` so
``import repro.fleet`` stays cheap (the CLI lists subcommands without
paying for the simulator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.fleet.digest import EpochDigest, digest_report
from repro.fleet.spec import TenantSpec
from repro.obs.metrics import MetricsRegistry

__all__ = ["TenantRun", "TenantWorkload", "build_workload", "run_tenant"]


@dataclass
class TenantWorkload:
    """Everything one tenant's pipeline run consumes, rebuilt from seed."""

    topology: object
    hodor_config: object
    epochs: List[Tuple[float, object]]
    inputs_for: Callable[[float], object]


@dataclass
class TenantRun:
    """One completed tenant run's outcome (worker- or standalone-side).

    Attributes:
        tenant: Tenant id.
        digests: Per-epoch digests in seal order.
        epochs_streamed: Epochs the workload carried.
        epochs_sealed: Epochs sealed and validated.
        shed_epochs: Epochs the degradation gate declined.
        updates / late_dropped / duplicates: Assembler counters.
        latencies_s: Seal-to-verdict seconds per validated epoch.
        exposition: The tenant registry's Prometheus text exposition
            (``stream_*`` + engine families), ready for fleet rollup.
        store_path: This tenant's history store file, when written.
    """

    tenant: str
    digests: Tuple[EpochDigest, ...]
    epochs_streamed: int
    epochs_sealed: int
    shed_epochs: int
    updates: int
    late_dropped: int
    duplicates: int
    latencies_s: Tuple[float, ...]
    exposition: str
    store_path: Optional[str] = None

    def to_summary(self) -> Dict[str, object]:
        """The picklable ``tenant_done`` payload (digests travel
        separately, one message per epoch, so a crash loses at most
        the in-flight epoch)."""
        return {
            "tenant": self.tenant,
            "epochs_streamed": self.epochs_streamed,
            "epochs_sealed": self.epochs_sealed,
            "shed_epochs": self.shed_epochs,
            "updates": self.updates,
            "late_dropped": self.late_dropped,
            "duplicates": self.duplicates,
            "latencies_s": list(self.latencies_s),
            "exposition": self.exposition,
            "store_path": self.store_path,
        }


def build_workload(spec: TenantSpec) -> TenantWorkload:
    """Rebuild a tenant's full workload deterministically from its spec."""
    if spec.scenario is not None:
        from repro.scenarios.catalog import scenario_by_id

        world = scenario_by_id(spec.scenario).build(seed=spec.seed)
        epochs: List[Tuple[float, object]] = []
        inputs_by_ts: Dict[float, object] = {}
        for index in range(spec.epochs):
            outcome = world.run_epoch(timestamp=float(index) * spec.epoch_spacing_s)
            epochs.append((outcome.snapshot.timestamp, outcome.snapshot))
            inputs_by_ts[outcome.snapshot.timestamp] = outcome.inputs
        return TenantWorkload(
            topology=world.topology,
            hodor_config=world.hodor_config,
            epochs=epochs,
            inputs_for=inputs_by_ts.__getitem__,
        )

    import random

    from repro.control.demand_service import records_from_matrix
    from repro.control.infra import ControlPlane
    from repro.experiments.scale_study import churn_snapshot
    from repro.net.demand import gravity_demand
    from repro.net.simulation import NetworkSimulator
    from repro.telemetry.collector import TelemetryCollector
    from repro.telemetry.counters import Jitter
    from repro.telemetry.probes import ProbeEngine
    from repro.topologies.synthetic import waxman_topology

    topology = waxman_topology(spec.nodes, seed=spec.seed)
    demand = gravity_demand(
        topology.node_names(), total=4.0 * spec.nodes, seed=spec.seed
    )
    truth = NetworkSimulator(topology, demand, strategy="single").run()
    collector = TelemetryCollector(
        Jitter(0.005, seed=spec.seed), probe_engine=ProbeEngine(seed=spec.seed)
    )
    base = collector.collect(truth)
    plane = ControlPlane(topology)
    records = records_from_matrix(demand, seed=spec.seed)
    inputs = plane.compute_inputs(base, records)

    rng = random.Random(spec.seed)
    epochs = []
    snapshot = base.copy()
    snapshot.timestamp = 0.0
    epochs.append((0.0, snapshot))
    for index in range(1, spec.epochs):
        timestamp = index * spec.epoch_spacing_s
        snapshot = churn_snapshot(snapshot, spec.churn, rng, timestamp)
        epochs.append((timestamp, snapshot))
    return TenantWorkload(
        topology=topology,
        hodor_config=None,
        epochs=epochs,
        inputs_for=lambda _ts: inputs,
    )


async def run_tenant_async(
    spec: TenantSpec,
    store_path: Optional[str] = None,
    deterministic_history: bool = True,
    gate=None,
    on_digest=None,
) -> TenantRun:
    """Run one tenant's workload end to end inside a running loop.

    Args:
        spec: The tenant recipe.
        store_path: Per-tenant history store file (written only when
            both this and ``spec.history`` are set).
        deterministic_history: Byte-reproducible store writes.
        gate: Optional admission gate forwarded to the pipeline
            (``gate(epoch) -> bool``; ``False`` sheds the epoch).
        on_digest: Optional callback invoked with each
            :class:`EpochDigest` as its epoch validates -- the worker
            streams these to the supervisor.
    """
    from repro.control.metrics import engine_registry
    from repro.engine import ValidationEngine
    from repro.stream.assembler import EpochAssembler
    from repro.stream.feed import Perturbations, make_feeds
    from repro.stream.ingest import IngestConfig, StreamPipeline

    workload = build_workload(spec)
    registry = MetricsRegistry()
    perturb = None
    if spec.reorder or spec.drop or spec.duplicate:
        perturb = Perturbations(
            reorder=spec.reorder, drop=spec.drop, duplicate=spec.duplicate
        )
    feeds = make_feeds(workload.epochs, perturb=perturb, seed=spec.seed)

    sink = None
    if store_path is not None and spec.history:
        from repro.history.sink import HistoryConfig, HistorySink

        sink = HistorySink(
            HistoryConfig(path=store_path, deterministic=deterministic_history),
            metrics=registry,
        )

    digests: List[EpochDigest] = []

    def observe(epoch, report, latency_s: float) -> None:
        digest = digest_report(spec.tenant, epoch, report, latency_s)
        digests.append(digest)
        if on_digest is not None:
            on_digest(digest)

    assembler = EpochAssembler(
        routers=list(feeds),
        lateness_s=spec.lateness_s,
        metrics=registry,
        build_snapshots=not spec.scatter,
    )
    try:
        with ValidationEngine(
            workload.topology,
            config=workload.hodor_config,
            mode=spec.mode,
            backend=spec.backend,
            metrics=registry,
        ) as engine:
            pipeline = StreamPipeline(
                list(feeds.values()),
                assembler,
                engine,
                inputs_for=workload.inputs_for,
                config=IngestConfig(
                    queue_size=spec.queue_size, deterministic=True
                ),
                metrics=registry,
                history=sink,
                gate=gate,
                on_epoch=observe,
            )
            result = await pipeline.run_async()
            engine_registry(engine.stats, registry=registry)
    finally:
        if sink is not None:
            sink.close()

    return TenantRun(
        tenant=spec.tenant,
        digests=tuple(digests),
        epochs_streamed=len(workload.epochs),
        epochs_sealed=len(result.epochs),
        shed_epochs=result.shed_epochs,
        updates=result.updates,
        late_dropped=result.late_dropped,
        duplicates=result.duplicates,
        latencies_s=tuple(result.epoch_latency_s),
        exposition=registry.render(),
        store_path=store_path if sink is not None else None,
    )


def run_tenant(
    spec: TenantSpec,
    store_path: Optional[str] = None,
    deterministic_history: bool = True,
    gate=None,
    on_digest=None,
) -> TenantRun:
    """Standalone entry: run one tenant on a fresh event loop.

    This is the comparator half of the in-fleet vs standalone
    differential -- the worker runs the identical coroutine.
    """
    import asyncio

    return asyncio.run(
        run_tenant_async(
            spec,
            store_path=store_path,
            deterministic_history=deterministic_history,
            gate=gate,
            on_digest=on_digest,
        )
    )
