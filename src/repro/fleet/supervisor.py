"""The fleet supervisor: dispatch, admission, recovery, rollup.

:class:`FleetSupervisor` owns the worker pool and, per worker, a
control channel down and a results channel back (isolated queues, so
one crashed worker cannot wedge another's channel).  It is a single
synchronous control loop -- all concurrency lives in the worker
processes -- which keeps every decision (quarantine, readmission,
crash recovery, drain) a deterministic function of the message
sequence it consumes:

* **Dispatch** is round-robin over tenant ids sorted ascending, so
  the same fleet spec always lands on the same workers.
* **Admission**: every digest is scored by the
  :class:`~repro.fleet.admission.AdmissionController`; a quarantine
  decision cancels the tenant on its worker immediately.  Cooled-down
  tenants are readmitted as a *fresh dispatch* -- their partial
  digests and store file are discarded first, so a readmitted
  tenant's final output is byte-identical to an untroubled run.
* **Crash recovery**: when a worker dies (liveness poll, no goodbye),
  a replacement process takes over its slot and every unfinished
  tenant is re-dispatched.  Digests the dead worker already shipped
  are kept; the re-run's duplicates are deduplicated by
  ``(tenant, timestamp)`` and their fingerprints *asserted* equal --
  rescheduling can neither lose nor double-count a verdict, and a
  fingerprint mismatch (nondeterminism) fails loudly.
* **Drain**: once every tenant is terminal the supervisor drains all
  workers -- each finishes its assigned work, says goodbye, and
  exits; the supervisor joins every process before returning.

The per-tenant metrics expositions shipped in ``tenant_done``
summaries are merged into one fleet-level registry via
:mod:`repro.fleet.rollup`.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fleet.admission import EVICTED, QUARANTINED, AdmissionController
from repro.fleet.digest import EpochDigest
from repro.fleet.rollup import merge_expositions
from repro.fleet.spec import FleetConfig, TenantSpec, tenant_store_path
from repro.fleet.worker import worker_main
from repro.obs.metrics import MetricsRegistry

__all__ = ["FleetResult", "FleetSupervisor", "TenantSummary"]


class FleetProtocolError(RuntimeError):
    """A worker message violated the fleet's determinism contract."""


@dataclass
class TenantSummary:
    """One tenant's final standing after a fleet run.

    Attributes:
        tenant: Tenant id.
        status: ``"done"``, ``"quarantined"``, ``"evicted"``, or
            ``"error"``.
        epochs_streamed / epochs_sealed / shed_epochs: Run counters
            (zero for tenants cancelled before completion).
        updates / late_dropped / duplicates: Assembler counters.
        latencies_s: Seal-to-verdict seconds per validated epoch.
        digests: Per-epoch digests in timestamp order (deduplicated
            across reschedules).
        store_path: The tenant's history store file, when written.
        reschedules: Times this tenant was re-dispatched after a
            worker crash.
    """

    tenant: str
    status: str = "running"
    epochs_streamed: int = 0
    epochs_sealed: int = 0
    shed_epochs: int = 0
    updates: int = 0
    late_dropped: int = 0
    duplicates: int = 0
    latencies_s: Tuple[float, ...] = ()
    digests: Tuple[EpochDigest, ...] = ()
    store_path: Optional[str] = None
    reschedules: int = 0

    def p99_latency_s(self) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        rank = max(1, int(0.99 * len(ordered) + 0.999999))
        return ordered[min(rank, len(ordered)) - 1]

    def to_dict(self) -> Dict[str, object]:
        return {
            "tenant": self.tenant,
            "status": self.status,
            "epochs_streamed": self.epochs_streamed,
            "epochs_sealed": self.epochs_sealed,
            "shed_epochs": self.shed_epochs,
            "updates": self.updates,
            "late_dropped": self.late_dropped,
            "duplicates": self.duplicates,
            "p99_latency_s": self.p99_latency_s(),
            "digest_count": len(self.digests),
            "store_path": self.store_path,
            "reschedules": self.reschedules,
        }


@dataclass
class FleetResult:
    """Everything one fleet run produced.

    Attributes:
        tenants: Final per-tenant summaries, keyed by tenant id.
        metrics: The fleet-level rollup registry (every finished
            tenant's families merged).
        admission: The admission controller's final per-tenant
            standing.
        workers: Worker processes the run used (pool size).
        crashes: Worker deaths detected and recovered from.
        errors: ``(tenant, detail)`` tuples for tenants that raised.
    """

    tenants: Dict[str, TenantSummary]
    metrics: MetricsRegistry = field(repr=False, default_factory=MetricsRegistry)
    admission: Dict[str, Dict[str, object]] = field(default_factory=dict)
    workers: int = 0
    crashes: int = 0
    errors: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def total_updates(self) -> int:
        return sum(s.updates for s in self.tenants.values())

    @property
    def total_epochs_sealed(self) -> int:
        return sum(s.epochs_sealed for s in self.tenants.values())

    def statuses(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for summary in self.tenants.values():
            counts[summary.status] = counts.get(summary.status, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        return {
            "tenants": {
                tenant: summary.to_dict()
                for tenant, summary in sorted(self.tenants.items())
            },
            "statuses": self.statuses(),
            "admission": self.admission,
            "workers": self.workers,
            "crashes": self.crashes,
            "errors": [list(pair) for pair in self.errors],
            "total_updates": self.total_updates,
            "total_epochs_sealed": self.total_epochs_sealed,
        }

    def write_manifest(self, out_dir: str) -> str:
        """Write ``fleet.json`` + ``fleet.prom`` under ``out_dir``."""
        os.makedirs(out_dir, exist_ok=True)
        manifest = os.path.join(out_dir, "fleet.json")
        with open(manifest, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        self.metrics.write(os.path.join(out_dir, "fleet.prom"))
        return manifest


@dataclass
class _Worker:
    """Supervisor-side handle for one worker slot.

    Each worker gets its *own* results queue: a worker that dies
    mid-``put`` (hard crash) can wedge a queue's shared write lock
    forever, and with a fleet-wide queue that would deadlock every
    healthy worker.  Isolated queues confine the damage to the dead
    worker, whose replacement gets a fresh queue.
    """

    worker_id: int
    proc: object
    control: object
    results: object
    active: set = field(default_factory=set)
    done: bool = False
    degraded: bool = False


class FleetSupervisor:
    """Runs a tenant fleet across a worker-process pool to completion.

    Args:
        specs: The tenant fleet (ids must be unique).
        config: Pool size, store layout, admission policy.

    The supervisor is single-use: construct, :meth:`run`, inspect the
    :class:`FleetResult`.
    """

    def __init__(self, specs, config: Optional[FleetConfig] = None) -> None:
        self.config = config or FleetConfig()
        self.specs: Dict[str, TenantSpec] = {}
        for spec in specs:
            if spec.tenant in self.specs:
                raise ValueError(f"duplicate tenant id {spec.tenant!r}")
            self.specs[spec.tenant] = spec
        self.admission = AdmissionController(self.config.admission)
        # Fork keeps tenant dispatch cheap: specs pickle over the
        # control queue, but the interpreter and imports are shared.
        self._ctx = multiprocessing.get_context("fork")
        self._workers: Dict[int, _Worker] = {}
        self._summaries: Dict[str, TenantSummary] = {
            tenant: TenantSummary(tenant=tenant) for tenant in self.specs
        }
        self._digests: Dict[str, Dict[float, EpochDigest]] = {
            tenant: {} for tenant in self.specs
        }
        self._expositions: Dict[str, str] = {}
        self._errors: List[Tuple[str, str]] = []
        self._crashes = 0
        self._degraded = False
        self._chaos_fired = False

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------

    def _spawn_worker(self, worker_id: int) -> _Worker:
        control = self._ctx.Queue()
        results = self._ctx.Queue()
        proc = self._ctx.Process(
            target=worker_main,
            args=(worker_id, control, results),
            kwargs={
                "store_dir": self.config.store_dir,
                "deterministic_history": self.config.deterministic_history,
            },
            daemon=True,
        )
        proc.start()
        worker = _Worker(
            worker_id=worker_id, proc=proc, control=control, results=results
        )
        if self._degraded:
            control.put(("degrade", True))
            worker.degraded = True
        return worker

    def _least_loaded_worker(self) -> _Worker:
        """Live worker with the fewest active tenants (ties: lowest id)."""
        candidates = [
            w for w in self._workers.values() if not w.done and w.proc.is_alive()
        ]
        if not candidates:
            raise FleetProtocolError("no live workers to dispatch to")
        return min(candidates, key=lambda w: (len(w.active), w.worker_id))

    def _dispatch(self, tenant: str, worker: Optional[_Worker] = None) -> None:
        if worker is None:
            worker = self._least_loaded_worker()
        spec = self.specs[tenant]
        if self.config.store_dir is not None and spec.history:
            # A fresh dispatch owns its store file end to end: stale
            # bytes from a crashed or quarantined predecessor would
            # break the deterministic-bytes contract.
            self._remove_store(tenant)
        worker.control.put(("run", spec))
        worker.active.add(tenant)

    def _remove_store(self, tenant: str) -> None:
        if self.config.store_dir is None:
            return
        base = tenant_store_path(self.config.store_dir, tenant)
        for suffix in ("", "-wal", "-shm", ".lock"):
            try:
                os.remove(base + suffix)
            except FileNotFoundError:
                pass

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def _on_digest(self, worker_id: int, tenant: str, digest: EpochDigest) -> None:
        if tenant not in self.specs:
            raise FleetProtocolError(f"digest for unknown tenant {tenant!r}")
        known = self._digests[tenant].get(digest.timestamp)
        if known is not None:
            # A rescheduled tenant re-produces already-shipped epochs;
            # dedup, but hold the re-run to byte-identical verdicts.
            if known.fingerprint != digest.fingerprint:
                raise FleetProtocolError(
                    f"tenant {tenant!r} epoch {digest.timestamp} fingerprint "
                    f"mismatch after reschedule: {known.fingerprint[:12]} != "
                    f"{digest.fingerprint[:12]}"
                )
            return
        self._digests[tenant][digest.timestamp] = digest
        decision = self.admission.observe(digest)
        if decision == "quarantine":
            worker = self._workers.get(worker_id)
            if worker is not None and not worker.done:
                worker.control.put(("quarantine", tenant))
            status = self.admission.status(tenant)
            self._summaries[tenant].status = (
                "evicted" if status == EVICTED else "quarantined"
            )
        self._maybe_degrade()
        self._maybe_chaos()

    def _maybe_chaos(self) -> None:
        chaos = self.config.chaos_crash
        if chaos is None or self._chaos_fired:
            return
        if self.admission.observed < chaos[1]:
            return
        self._chaos_fired = True
        victim = self._workers.get(chaos[0])
        if victim is not None and not victim.done and victim.proc.is_alive():
            victim.control.put(("crash",))

    def _maybe_degrade(self) -> None:
        if self._degraded or not self.admission.should_degrade():
            return
        self._degraded = True
        for worker in self._workers.values():
            if not worker.done and worker.proc.is_alive() and not worker.degraded:
                worker.control.put(("degrade", True))
                worker.degraded = True

    def _on_tenant_done(
        self, worker_id: int, tenant: str, payload: Dict[str, object]
    ) -> None:
        worker = self._workers.get(worker_id)
        if worker is not None:
            worker.active.discard(tenant)
        summary = self._summaries[tenant]
        status = str(payload.get("status", "done"))
        admission_status = self.admission.status(tenant)
        if admission_status == EVICTED:
            status = "evicted"
        elif admission_status == QUARANTINED and status == "done":
            # The cancel raced the tenant's natural completion; the
            # admission verdict stands.
            status = "quarantined"
        summary.status = status
        if status == "done":
            summary.epochs_streamed = int(payload.get("epochs_streamed", 0))
            summary.epochs_sealed = int(payload.get("epochs_sealed", 0))
            summary.shed_epochs = int(payload.get("shed_epochs", 0))
            summary.updates = int(payload.get("updates", 0))
            summary.late_dropped = int(payload.get("late_dropped", 0))
            summary.duplicates = int(payload.get("duplicates", 0))
            summary.latencies_s = tuple(payload.get("latencies_s", ()))  # type: ignore[arg-type]
            summary.store_path = payload.get("store_path")  # type: ignore[assignment]
            exposition = payload.get("exposition")
            if exposition:
                self._expositions[tenant] = str(exposition)

    def _on_error(self, tenant: str, detail: str) -> None:
        self._errors.append((tenant, detail))
        self._summaries[tenant].status = "error"

    # ------------------------------------------------------------------
    # Recovery and readmission
    # ------------------------------------------------------------------

    def _check_liveness(self) -> None:
        for worker_id, worker in list(self._workers.items()):
            if worker.done or worker.proc.is_alive():
                continue
            # Dead without a goodbye: a crash.  Salvage whatever it
            # shipped before dying, then replace the slot and
            # re-dispatch everything it had not finished.
            self._pump_worker(worker)
            self._crashes += 1
            orphans = sorted(worker.active)
            worker.done = True
            worker.active = set()
            replacement = self._spawn_worker(worker_id)
            self._workers[worker_id] = replacement
            for tenant in orphans:
                if self._summaries[tenant].status not in ("running",):
                    continue
                self._summaries[tenant].reschedules += 1
                self._dispatch(tenant, replacement)

    def _check_readmissions(self) -> None:
        for tenant in self.admission.readmittable():
            if any(
                tenant in worker.active
                for worker in self._workers.values()
                if not worker.done
            ):
                # The quarantined run's cancellation is still
                # unwinding; readmit only once its tenant_done lands.
                continue
            self.admission.readmit(tenant)
            # Fresh start: discard the quarantined run's partial
            # output so the readmitted run is indistinguishable from
            # an untroubled one.
            self._digests[tenant] = {}
            self._expositions.pop(tenant, None)
            summary = self._summaries[tenant]
            summary.status = "running"
            summary.latencies_s = ()
            self._dispatch(tenant)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _terminal(self, tenant: str) -> bool:
        return self._summaries[tenant].status in (
            "done",
            "error",
            "quarantined",
            "evicted",
        )

    def _work_remaining(self) -> bool:
        if any(not self._terminal(tenant) for tenant in self.specs):
            return True
        # Quarantined tenants with cooldown already elapsed still owe
        # a readmission run.
        return bool(self.admission.readmittable())

    def _handle(self, message: Tuple) -> None:
        kind = message[0]
        if kind == "digest":
            self._on_digest(message[1], message[2], message[3])
        elif kind == "tenant_done":
            self._on_tenant_done(message[1], message[2], message[3])
        elif kind == "error":
            self._on_error(message[2], message[3])
        elif kind == "worker_done":
            worker = self._workers.get(message[1])
            if worker is not None:
                worker.done = True

    def _pump(self) -> bool:
        """Drain every worker's results queue; ``True`` if anything
        arrived.  Queues are visited in worker-id order and drained
        fully, so message handling order is a deterministic function
        of what each worker had shipped."""
        handled = False
        for worker_id in sorted(self._workers):
            handled |= self._pump_worker(self._workers[worker_id])
        return handled

    def _pump_worker(self, worker: _Worker) -> bool:
        handled = False
        while True:
            try:
                message = worker.results.get_nowait()
            except queue_mod.Empty:
                return handled
            handled = True
            self._handle(message)

    def run(self) -> FleetResult:
        """Run the whole fleet to completion and roll results up."""
        if self.config.store_dir is not None:
            os.makedirs(self.config.store_dir, exist_ok=True)
        for worker_id in range(self.config.workers):
            self._workers[worker_id] = self._spawn_worker(worker_id)
        for tenant in sorted(self.specs):
            self._dispatch(tenant)

        while self._work_remaining():
            self._check_readmissions()
            if not self._pump():
                self._check_liveness()
                time.sleep(self.config.poll_s)

        self._drain()
        return self._finalize()

    def _drain(self) -> None:
        """Deterministic shutdown: every live worker finishes its
        assigned work, says goodbye, and is joined."""
        awaiting = set()
        for worker in self._workers.values():
            if worker.done or not worker.proc.is_alive():
                continue
            worker.control.put(("drain",))
            awaiting.add(worker.worker_id)
        while awaiting:
            handled = False
            for worker_id in sorted(awaiting):
                worker = self._workers[worker_id]
                handled |= self._pump_worker(worker)
                if worker.done:
                    awaiting.discard(worker_id)
                elif not worker.proc.is_alive():
                    # Died during drain: whatever it shipped is already
                    # pumped; nothing further is coming.
                    worker.done = True
                    awaiting.discard(worker_id)
            if not handled and awaiting:
                time.sleep(self.config.poll_s)
        for worker in self._workers.values():
            worker.proc.join(timeout=10.0)

    def _finalize(self) -> FleetResult:
        for tenant, summary in self._summaries.items():
            ordered = tuple(
                self._digests[tenant][ts] for ts in sorted(self._digests[tenant])
            )
            summary.digests = ordered
        rollup = merge_expositions(
            text for _tenant, text in sorted(self._expositions.items())
        )
        return FleetResult(
            tenants=dict(sorted(self._summaries.items())),
            metrics=rollup,
            admission=self.admission.snapshot(),
            workers=self.config.workers,
            crashes=self._crashes,
            errors=list(self._errors),
        )
