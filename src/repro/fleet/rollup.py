"""Fleet metrics rollup: per-tenant expositions -> one registry.

Workers ship each finished tenant's metrics as Prometheus text
exposition -- a versionless, process-boundary-safe wire format the
observability layer can already render *and* parse.  This module
closes the loop: :func:`registry_from_exposition` reconstructs a live
:class:`~repro.obs.metrics.MetricsRegistry` from exposition text
(``# HELP``/``# TYPE`` metadata plus
:func:`~repro.obs.metrics.parse_exposition` samples), and
:func:`merge_expositions` folds any number of tenant expositions into
one fleet-level registry through the registry's own ``merge`` --
counters add, gauges take the newest reading, histograms add
bucket-wise.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, parse_exposition

__all__ = ["merge_expositions", "registry_from_exposition"]


def _family_meta(text: str) -> Dict[str, Tuple[str, str]]:
    """``{family_name: (kind, help)}`` from the comment lines."""
    kinds: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    for line in text.split("\n"):
        line = line.strip()
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            kinds[name] = kind.strip()
        elif line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            helps[name] = help_text
    return {name: (kind, helps.get(name, "")) for name, kind in kinds.items()}


def _histogram_family(sample_name: str, meta: Dict[str, Tuple[str, str]]) -> Optional[str]:
    """Map a ``_bucket``/``_sum``/``_count`` sample back to its family."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            family = sample_name[: -len(suffix)]
            if meta.get(family, ("",))[0] == "histogram":
                return family
    return None


def registry_from_exposition(text: str) -> MetricsRegistry:
    """Reconstruct a registry from its text exposition.

    Counter and gauge samples restore exactly.  Histograms restore
    their per-bucket counts, sum, and count from the cumulative
    ``_bucket`` series (bucket bounds are recovered from the ``le``
    labels), so merged histograms keep real percentile resolution
    rather than collapsing to sums.

    Raises:
        ValueError: On malformed exposition or a sample whose family
            has no ``# TYPE`` metadata.
    """
    meta = _family_meta(text)
    registry = MetricsRegistry()
    # (family, label_key) -> {"le_counts": {bound: cum}, "sum": x, "count": n,
    #                         "pairs": non-le label pairs}
    histograms: Dict[Tuple[str, Tuple[str, ...]], Dict[str, object]] = {}

    for name, pairs, value in parse_exposition(text):
        family = _histogram_family(name, meta)
        if family is not None:
            non_le = [(k, v) for k, v in pairs if k != "le"]
            key = (family, tuple(v for _k, v in non_le))
            bucket = histograms.setdefault(
                key, {"le_counts": {}, "sum": 0.0, "count": 0, "pairs": non_le}
            )
            if name.endswith("_bucket"):
                # Key by numeric bound, not label text: render() emits
                # the shortest round-trip spelling, which need not match
                # any one format string.
                bucket["le_counts"][float(dict(pairs)["le"])] = value  # type: ignore[index]
            elif name.endswith("_sum"):
                bucket["sum"] = value
            else:
                bucket["count"] = value
            continue
        if name not in meta:
            raise ValueError(f"sample {name!r} has no # TYPE metadata")
        kind, help_text = meta[name]
        label_names = tuple(k for k, _v in pairs)
        if kind == "counter":
            child = registry.counter(name, help_text, label_names)
        elif kind == "gauge":
            child = registry.gauge(name, help_text, label_names)
        else:
            raise ValueError(f"unsupported family kind {kind!r} for {name!r}")
        child.labels(**dict(pairs)).set_to(value)

    for (family, _key), bucket in sorted(histograms.items()):
        kind, help_text = meta[family]
        pairs: List[Tuple[str, str]] = bucket["pairs"]  # type: ignore[assignment]
        label_names = tuple(k for k, _v in pairs)
        le_counts: Dict[float, float] = bucket["le_counts"]  # type: ignore[assignment]
        # Exact identity is the contract: the ``+Inf`` bucket label
        # parses to exactly ``float("inf")``, never a near value, so a
        # tolerance here could only misclassify a real finite bound.
        bounds = tuple(
            sorted(le for le in le_counts if le != float("inf"))  # lint: ignore[F1]
        )
        hist = registry.histogram(family, help_text, label_names, bounds)
        child = hist.labels(**dict(pairs)) if label_names else hist.labels()
        cumulative = [le_counts[b] for b in bounds]
        cumulative.append(le_counts.get(float("inf"), bucket["count"]))  # type: ignore[arg-type]
        running = 0.0
        for index, cum in enumerate(cumulative):
            child.bucket_counts[index] = int(cum - running)
            running = cum
        child.sum = float(bucket["sum"])  # type: ignore[arg-type]
        child.count = int(bucket["count"])  # type: ignore[arg-type]
    return registry


def merge_expositions(
    texts: Iterable[str], into: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Fold tenant expositions into one fleet-level registry."""
    rollup = into if into is not None else MetricsRegistry()
    for text in texts:
        rollup.merge(registry_from_exposition(text))
    return rollup
