"""Per-epoch verdict digests: what workers stream back to the supervisor.

A digest is the supervisor-side unit of truth about one tenant epoch:
every verdict, the full provenance (canonical JSON), assembly-quality
counters the admission controller scores, and a SHA-256 fingerprint
over all determinism-relevant fields.  The fingerprint is what makes
crash recovery safe: a rescheduled tenant re-produces digests for
epochs the dead worker already shipped, and the supervisor *asserts*
fingerprint equality instead of guessing which copy to trust.

Measured latency is carried for percentile rollups but excluded from
the fingerprint -- wall time differs run to run by construction.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["EpochDigest", "digest_report"]


@dataclass(frozen=True)
class EpochDigest:
    """One tenant epoch's validation outcome, compressed for the wire.

    Attributes:
        tenant: Tenant id.
        timestamp: Epoch virtual timestamp.
        sealed_by: ``"watermark"`` or ``"drain"``.
        complete: Every expected router contributed.
        updates: Distinct updates the epoch sealed with.
        duplicates: Duplicate deliveries suppressed for the epoch.
        missing: Expected routers that contributed nothing.
        detected: The engine flagged anything this epoch.
        violations: Total violated invariants across verdicts.
        verdicts: ``(name, valid, num_violations, num_evaluated)``
            per input, sorted by name.
        provenance_json: Canonical (sorted-keys) JSON of every
            verdict's provenance record, keyed by input name.
        latency_s: Seal-to-verdict seconds (excluded from the
            fingerprint).
        fingerprint: SHA-256 over the determinism-relevant fields.
    """

    tenant: str
    timestamp: float
    sealed_by: str
    complete: bool
    updates: int
    duplicates: int
    missing: int
    detected: bool
    violations: int
    verdicts: Tuple[Tuple[str, bool, int, int], ...]
    provenance_json: str
    latency_s: float
    fingerprint: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "tenant": self.tenant,
            "timestamp": self.timestamp,
            "sealed_by": self.sealed_by,
            "complete": self.complete,
            "updates": self.updates,
            "duplicates": self.duplicates,
            "missing": self.missing,
            "detected": self.detected,
            "violations": self.violations,
            "verdicts": [list(v) for v in self.verdicts],
            "latency_s": self.latency_s,
            "fingerprint": self.fingerprint,
        }


def _fingerprint(payload: Dict[str, object]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def digest_report(
    tenant: str, epoch, report, latency_s: float = 0.0
) -> EpochDigest:
    """Digest one sealed epoch + its validation report.

    Args:
        tenant: Owning tenant id.
        epoch: The :class:`~repro.stream.assembler.AssembledEpoch`.
        report: The engine's :class:`~repro.core.ValidationReport`.
        latency_s: Seal-to-verdict latency (informational only).
    """
    verdicts = tuple(
        (name, v.valid, v.num_violations, v.num_evaluated)
        for name, v in sorted(report.verdicts.items())
    )
    provenance_json = json.dumps(
        {name: record.to_dict() for name, record in report.provenance.items()},
        sort_keys=True,
        separators=(",", ":"),
    )
    violations = sum(v[2] for v in verdicts)
    fingerprint = _fingerprint(
        {
            "tenant": tenant,
            "timestamp": epoch.timestamp,
            "sealed_by": epoch.sealed_by,
            "complete": epoch.complete,
            "updates": epoch.updates,
            "duplicates": epoch.duplicates,
            "missing": len(epoch.missing),
            "verdicts": [list(v) for v in verdicts],
            "provenance": provenance_json,
        }
    )
    return EpochDigest(
        tenant=tenant,
        timestamp=epoch.timestamp,
        sealed_by=epoch.sealed_by,
        complete=epoch.complete,
        updates=epoch.updates,
        duplicates=epoch.duplicates,
        missing=len(epoch.missing),
        detected=report.detected_anything(),
        violations=violations,
        verdicts=verdicts,
        provenance_json=provenance_json,
        latency_s=latency_s,
        fingerprint=fingerprint,
    )
